"""Events and the event loop.

OdeView is event driven: "wait for interrupt for next action: X loop"
(paper §4.2's code fragment ends in ``XtMainLoop()``).  The reproduction
uses a synchronous queue: user actions (mouse clicks on buttons, menu
selections, drags) are posted as events, and :class:`EventLoop` dispatches
each to the handlers the application registered.  The scripted session
driver posts events exactly as a real backend would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import WindowError


@dataclass(frozen=True)
class Event:
    """Base event: every event targets a window by name."""

    window: str


@dataclass(frozen=True)
class Click(Event):
    """A mouse click on a window (usually a button or icon)."""


@dataclass(frozen=True)
class MenuSelect(Event):
    """A selection from a pop-up menu."""

    item: str = ""


@dataclass(frozen=True)
class Drag(Event):
    """A window dragged to a new absolute position."""

    to_x: int = 0
    to_y: int = 0


@dataclass(frozen=True)
class KeyInput(Event):
    """Text typed into a window (the condition box, §5.2)."""

    text: str = ""


@dataclass(frozen=True)
class DataChanged(Event):
    """Committed changes reached the displayed network via server push.

    Posted by :class:`~repro.core.sync.ReactiveBrowse` from the network
    thread; the handler (UI thread) calls ``apply_pending()`` to refresh
    the affected subtrees.  ``resync=True`` means delta detail was lost
    (overflow or reconnect) and the whole network should refresh.
    """

    epoch: int = 0
    clusters: tuple = ()
    resync: bool = False


Handler = Callable[[Event], None]


class EventLoop:
    """A deterministic event queue with per-window and catch-all handlers."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._window_handlers: Dict[str, List[Handler]] = {}
        self._any_handlers: List[Handler] = []
        self.dispatched = 0

    # -- registration ---------------------------------------------------------

    def on(self, window_name: str, handler: Handler) -> None:
        """Register a handler for events targeting one window."""
        self._window_handlers.setdefault(window_name, []).append(handler)

    def on_any(self, handler: Handler) -> None:
        """Register a handler that sees every event."""
        self._any_handlers.append(handler)

    def remove_window_handlers(self, window_name: str) -> None:
        self._window_handlers.pop(window_name, None)

    # -- posting / dispatch --------------------------------------------------------

    def post(self, event: Event) -> None:
        self._queue.append(event)

    def pending(self) -> int:
        return len(self._queue)

    def dispatch_one(self) -> Optional[Event]:
        """Deliver the oldest event; returns it, or None if the queue is empty."""
        if not self._queue:
            return None
        event = self._queue.pop(0)
        handlers = list(self._window_handlers.get(event.window, ()))
        for handler in handlers + self._any_handlers:
            handler(event)
        self.dispatched += 1
        return event

    def run(self, max_events: int = 10_000) -> int:
        """Dispatch until the queue drains (handlers may post more events)."""
        count = 0
        while self._queue:
            if count >= max_events:
                raise WindowError(
                    f"event loop did not quiesce after {max_events} events"
                )
            self.dispatch_one()
            count += 1
        return count
