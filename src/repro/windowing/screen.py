"""The screen: window creation, geometry solving, event routing, rendering.

The screen is OdeView's side of the display protocol.  It takes the pure
:class:`WindowSpec` data a display function produced, instantiates live
windows, solves the parameterised relative placements into absolute
character-cell geometry, routes click events, and asks the active backend
to render.  Display functions never see any of this — the "principle of
separation" (paper §4.2).

Geometry model: every window has a content area of ``width x height``
character cells.  Sizes default to the content's natural size.  Top-level
(ROOT) windows flow left-to-right, wrapping at the screen width, in
creation order; the user (or session driver) may drag any top-level window
to an explicit position afterwards, reproducing the paper's observation
that the user, not OdeView, picks window placement (§4.6).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import LayoutError, WindowError
from repro.windowing.events import Click, Drag, Event, EventLoop, MenuSelect
from repro.windowing.raster import RasterImage
from repro.windowing.window import Window, WindowTree
from repro.windowing.wintypes import Relation, WindowKind, WindowSpec

#: Horizontal/vertical gap between flowed top-level windows.
_GAP = 1
#: Border cells a backend draws around a window (one on each side).
_BORDER = 2


class Screen:
    """One display surface backed by a rendering backend."""

    def __init__(self, backend, width: int = 120):
        if width < 20:
            raise WindowError(f"screen width {width} too small")
        self.backend = backend
        self.width = width
        self.tree = WindowTree()
        self.events = EventLoop()
        self._dragged: Dict[str, tuple] = {}
        self.events.on_any(self._handle_builtin)

    # -- window lifecycle ------------------------------------------------------

    def create(self, spec: WindowSpec, parent: Optional[str] = None) -> Window:
        parent_window = self.tree.get(parent) if parent else None
        return self.tree.add(spec, parent_window)

    def destroy(self, name: str) -> None:
        window = self.tree.get(name)
        for descendant in window.walk():
            self.events.remove_window_handlers(descendant.name)
            self._dragged.pop(descendant.name, None)
        self.tree.remove(name)

    def open(self, name: str) -> None:
        self.tree.open(name)

    def close(self, name: str) -> None:
        self.tree.close(name)

    def get(self, name: str) -> Window:
        return self.tree.get(name)

    def has(self, name: str) -> bool:
        return self.tree.has(name)

    def set_content(self, name: str, content: Any) -> None:
        self.tree.get(name).set_content(content)

    # -- events -----------------------------------------------------------------

    def on_click(self, name: str, handler: Callable[[Event], None]) -> None:
        self.events.on(name, handler)

    def click(self, name: str) -> None:
        """Post and dispatch a click (what the session driver calls)."""
        self.tree.get(name)  # validate the target exists
        self.events.post(Click(window=name))
        self.events.run()

    def select_menu_item(self, name: str, item: str) -> None:
        window = self.tree.get(name)
        if window.kind is not WindowKind.MENU:
            raise WindowError(f"window {name!r} is not a menu")
        items = window.content or ()
        if item not in items:
            raise WindowError(f"menu {name!r} has no item {item!r}")
        self.events.post(MenuSelect(window=name, item=item))
        self.events.run()

    def raise_window(self, name: str) -> None:
        """Bring a top-level window to the front (drawn last, i.e. on top)."""
        self.tree.raise_to_front(name)

    def scroll(self, name: str, delta: int) -> int:
        """Scroll a scrollable window by *delta* lines; returns the offset."""
        window = self.tree.get(name)
        window.scroll_to(window.scroll_offset + delta)
        return window.scroll_offset

    def type_text(self, name: str, text: str) -> None:
        """Type into a window (the condition box of paper §5.2)."""
        self.tree.get(name)
        from repro.windowing.events import KeyInput

        self.events.post(KeyInput(window=name, text=text))
        self.events.run()

    def drag(self, name: str, to_x: int, to_y: int) -> None:
        window = self.tree.get(name)
        if window.parent is not None:
            raise WindowError("only top-level windows can be dragged")
        self.events.post(Drag(window=name, to_x=to_x, to_y=to_y))
        self.events.run()

    def _handle_builtin(self, event: Event) -> None:
        if isinstance(event, Drag):
            self._dragged[event.window] = (event.to_x, event.to_y)

    # -- geometry -------------------------------------------------------------------

    def natural_size(self, window: Window) -> tuple:
        """Content size in cells when the spec leaves width/height at 0."""
        spec = window.spec
        width, height = spec.width, spec.height
        if width and height:
            return width, height
        kind = window.kind
        if kind in (WindowKind.STATIC_TEXT, WindowKind.SCROLL_TEXT):
            lines = window.text_lines()
            natural_w = max((len(line) for line in lines), default=1)
            natural_h = max(len(lines), 1)
        elif kind in (WindowKind.BUTTON, WindowKind.OID):
            label = str(window.content or window.name)
            natural_w, natural_h = len(label) + 2, 1
        elif kind is WindowKind.MENU:
            items = window.content or ()
            natural_w = max((len(str(item)) for item in items), default=1) + 2
            natural_h = max(len(items), 1)
        elif kind is WindowKind.RASTER_IMAGE:
            image = window.content
            if isinstance(image, RasterImage):
                natural_w, natural_h = image.width, image.height
            else:
                natural_w, natural_h = 1, 1
        elif kind is WindowKind.PANEL:
            natural_w, natural_h = self._panel_extent(window)
        else:  # pragma: no cover - enum is closed
            natural_w, natural_h = 1, 1
        if not width and spec.title:
            # leave room for "+- title -" in the top border
            natural_w = max(natural_w, len(spec.title) + 3)
        return (width or natural_w, height or natural_h)

    def _panel_extent(self, panel: Window) -> tuple:
        """Bounding box of the panel's laid-out (open) children."""
        self._layout_children(panel)
        right = bottom = 0
        for child in panel.children:
            if not child.is_open:
                continue
            geo = child.geometry
            right = max(right, geo.x + geo.width + _BORDER)
            bottom = max(bottom, geo.y + geo.height + _BORDER)
        return max(right, 1), max(bottom, 1)

    def _layout_children(self, parent: Optional[Window]) -> None:
        """Solve placements of one sibling group into *relative* coordinates.

        Children coordinates are relative to the parent's content origin;
        top-level windows are relative to the screen.
        """
        siblings = parent.children if parent else self.tree.roots()
        placed: Dict[str, Window] = {}
        flow_x, flow_y, row_height = 0, 0, 0
        for window in siblings:
            if not window.is_open:
                placed[window.name] = window
                continue
            width, height = self.natural_size(window)
            outer_w, outer_h = width + _BORDER, height + _BORDER
            placement = window.spec.placement
            if window.name in self._dragged:
                window.geometry.x, window.geometry.y = self._dragged[window.name]
            elif placement.relation is Relation.AT:
                window.geometry.x = placement.dx
                window.geometry.y = placement.dy
            elif placement.relation in (Relation.BELOW, Relation.RIGHT_OF):
                anchor = placed.get(placement.anchor)
                if anchor is None or not anchor.is_open:
                    raise LayoutError(
                        f"window {window.name!r} anchored to missing or closed "
                        f"sibling {placement.anchor!r}"
                    )
                anchor_w, anchor_h = self.natural_size(anchor)
                if placement.relation is Relation.BELOW:
                    window.geometry.x = anchor.geometry.x + placement.dx
                    window.geometry.y = (anchor.geometry.y + anchor_h + _BORDER
                                         + placement.dy)
                else:
                    window.geometry.x = (anchor.geometry.x + anchor_w + _BORDER
                                         + _GAP + placement.dx)
                    window.geometry.y = anchor.geometry.y + placement.dy
            else:  # ROOT flow
                if flow_x and flow_x + outer_w > self.width:
                    flow_x = 0
                    flow_y += row_height + _GAP
                    row_height = 0
                window.geometry.x = flow_x
                window.geometry.y = flow_y
                flow_x += outer_w + _GAP
                row_height = max(row_height, outer_h)
            window.geometry.width = width
            window.geometry.height = height
            placed[window.name] = window
            self._layout_children(window)

    def layout(self) -> None:
        """Solve geometry for the whole tree (relative coordinates)."""
        self._layout_children(None)

    # -- rendering ------------------------------------------------------------------

    def render(self) -> str:
        """Lay out and render the tree with the active backend."""
        self.layout()
        return self.backend.render(self.tree)
