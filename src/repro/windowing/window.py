"""Runtime windows and the window tree.

A :class:`~repro.windowing.wintypes.WindowSpec` is pure data produced by a
display function; a :class:`Window` is the live object the screen manages:
it has identity, open/closed state, mutable content, a parent and children,
and geometry once the screen has laid it out.

"This tree maintains the state of each window (open or closed)" (paper
§4.4) — closed windows stay in the tree and keep receiving content updates,
because synchronized browsing refreshes windows "irrespective of whether
window is open or closed, as the user may open a window after performing
the sequencing operation".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import WindowError
from repro.windowing.wintypes import WindowKind, WindowSpec


@dataclass
class Geometry:
    """Absolute position and content size in character cells."""

    x: int = 0
    y: int = 0
    width: int = 0
    height: int = 0

    @property
    def right(self) -> int:
        return self.x + self.width

    @property
    def bottom(self) -> int:
        return self.y + self.height


class Window:
    """One live window."""

    _ids = itertools.count(1)

    def __init__(self, spec: WindowSpec, parent: Optional["Window"] = None):
        self.id = next(Window._ids)
        self.spec = spec
        self.parent = parent
        self.children: List["Window"] = []
        self.is_open = True
        self.content: Any = spec.content
        self.scroll_offset = 0
        self.z = 0
        self.geometry = Geometry()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> WindowKind:
        return self.spec.kind

    def set_content(self, content: Any) -> None:
        """Refresh content — allowed while closed (paper §4.4)."""
        self.content = content

    def scroll_to(self, line: int) -> None:
        if self.kind is not WindowKind.SCROLL_TEXT:
            raise WindowError(f"window {self.name!r} is not scrollable")
        self.scroll_offset = max(0, line)

    def text_lines(self) -> List[str]:
        if not isinstance(self.content, str):
            return []
        return self.content.split("\n")

    def walk(self) -> Iterator["Window"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return f"Window({self.name!r}, {self.kind.value}, {state})"


class WindowTree:
    """All live windows, addressable by unique name."""

    def __init__(self) -> None:
        self._roots: List[Window] = []
        self._by_name: Dict[str, Window] = {}
        self._z_counter = 0

    # -- structure ------------------------------------------------------------

    def add(self, spec: WindowSpec, parent: Optional[Window] = None) -> Window:
        """Create a window (and, for panels, its children) from a spec."""
        if spec.name in self._by_name:
            raise WindowError(f"window name {spec.name!r} already in use")
        window = Window(spec, parent)
        self._by_name[spec.name] = window
        if parent is None:
            self._roots.append(window)
        else:
            parent.children.append(window)
        for child_spec in spec.children:
            self.add(child_spec, parent=window)
        return window

    def remove(self, name: str) -> None:
        """Destroy a window and its whole subtree."""
        window = self.get(name)
        for descendant in list(window.walk()):
            self._by_name.pop(descendant.name, None)
        if window.parent is None:
            self._roots.remove(window)
        else:
            window.parent.children.remove(window)

    def raise_to_front(self, name: str) -> None:
        """Put a top-level window on top of the draw order.

        Only the z order changes; layout (flow) order stays the creation
        order, so raising never moves windows around.
        """
        window = self.get(name)
        if window.parent is not None:
            raise WindowError("only top-level windows can be raised")
        self._z_counter += 1
        window.z = self._z_counter

    def draw_order(self) -> List[Window]:
        """Open top-level windows, lowest z first (back to front)."""
        indexed = list(enumerate(self._roots))
        indexed.sort(key=lambda pair: (pair[1].z, pair[0]))
        return [window for _index, window in indexed]

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Window:
        try:
            return self._by_name[name]
        except KeyError:
            raise WindowError(f"no window named {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def roots(self) -> List[Window]:
        return list(self._roots)

    def all_windows(self) -> Iterator[Window]:
        for root in self._roots:
            yield from root.walk()

    def names(self) -> List[str]:
        return [window.name for window in self.all_windows()]

    def __len__(self) -> int:
        return len(self._by_name)

    # -- state --------------------------------------------------------------------

    def open(self, name: str) -> None:
        self.get(name).is_open = True

    def close(self, name: str) -> None:
        self.get(name).is_open = False

    def open_windows(self) -> List[Window]:
        return [window for window in self.all_windows() if window.is_open]

    def closed_roots(self) -> List[Window]:
        return [root for root in self._roots if not root.is_open]
