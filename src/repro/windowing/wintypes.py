"""Generic window types — the display protocol's vocabulary.

"We have defined a set of generic window types corresponding to the kind of
windows that are supported by most windowing systems.  Some examples of
window types are: static text window, static text window with horizontal
and vertical scroll bars, and raster image window.  These window types may
be parameterized to allow the display function to choose the window sizes
and to specify the relative placement between the windows." (paper §4.2)

A display function builds :class:`WindowSpec` values — pure data — and
returns them wrapped in :class:`DisplayResources`.  It never touches the
backend; OdeView interprets the specs against whatever backend is active.
The ``OID`` kind carries an object id and the name of the display format to
invoke when clicked (paper §4.3), which is how complex-object navigation
buttons are described without the display function knowing how navigation
is implemented.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

from repro.errors import WindowError


class WindowKind(enum.Enum):
    """The generic window types of the protocol."""

    STATIC_TEXT = "static_text"
    SCROLL_TEXT = "scroll_text"      # static text + scroll bars
    RASTER_IMAGE = "raster_image"
    BUTTON = "button"
    OID = "oid"                      # a button bound to an object reference
    PANEL = "panel"                  # a container grouping other windows
    MENU = "menu"                    # a pop-up list of selectable items


class Relation(enum.Enum):
    """How a window is positioned relative to its context."""

    ROOT = "root"            # top-level; the screen tiles it
    AT = "at"                # absolute offset within the parent (or screen)
    BELOW = "below"          # directly below a named sibling
    RIGHT_OF = "right_of"    # directly right of a named sibling


@dataclass(frozen=True)
class Placement:
    """Parameterised relative placement (paper §4.2)."""

    relation: Relation = Relation.ROOT
    anchor: Optional[str] = None     # sibling name for BELOW / RIGHT_OF
    dx: int = 0
    dy: int = 0

    def __post_init__(self) -> None:
        needs_anchor = self.relation in (Relation.BELOW, Relation.RIGHT_OF)
        if needs_anchor and not self.anchor:
            raise WindowError(f"placement {self.relation.value} needs an anchor")
        if not needs_anchor and self.anchor:
            raise WindowError(f"placement {self.relation.value} takes no anchor")


ROOT = Placement(Relation.ROOT)


def at(dx: int, dy: int) -> Placement:
    return Placement(Relation.AT, dx=dx, dy=dy)


def below(anchor: str, dx: int = 0, dy: int = 0) -> Placement:
    return Placement(Relation.BELOW, anchor=anchor, dx=dx, dy=dy)


def right_of(anchor: str, dx: int = 0, dy: int = 0) -> Placement:
    return Placement(Relation.RIGHT_OF, anchor=anchor, dx=dx, dy=dy)


@dataclass(frozen=True)
class WindowSpec:
    """One parameterised generic window.

    ``content`` depends on the kind: text windows carry a string, raster
    windows a :class:`~repro.windowing.raster.RasterImage`, buttons their
    label, menus a tuple of item labels, panels nothing.  ``command`` is an
    abstract action tag OdeView interprets on click (e.g. ``"next"``); for
    ``OID`` windows, ``oid`` and ``display_format`` say which object to
    fetch and which of its display formats to invoke (paper §4.3).
    """

    name: str
    kind: WindowKind
    width: int = 0                   # 0 = size to content
    height: int = 0
    placement: Placement = ROOT
    title: str = ""
    content: Any = None
    command: str = ""
    oid: str = ""
    display_format: str = ""
    children: Tuple["WindowSpec", ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise WindowError("window spec needs a name")
        if self.width < 0 or self.height < 0:
            raise WindowError(f"window {self.name!r} has negative size")
        if self.kind is WindowKind.OID and not self.oid:
            raise WindowError(f"OID window {self.name!r} needs an object id")
        if self.children and self.kind is not WindowKind.PANEL:
            raise WindowError(
                f"only PANEL windows may have children, not {self.kind.value}"
            )


@dataclass(frozen=True)
class DisplayResources:
    """What a display function returns to OdeView (paper §4.2).

    ``format_name`` identifies which display format these windows realise
    (e.g. ``"text"`` or ``"picture"``) so the object panel can offer one
    button per format and remember the display state per cluster.
    """

    format_name: str
    windows: Tuple[WindowSpec, ...]

    def __post_init__(self) -> None:
        if not self.format_name:
            raise WindowError("display resources need a format name")
        names = [spec.name for spec in self.windows]
        if len(set(names)) != len(names):
            raise WindowError("display resources contain duplicate window names")


def text_window(name: str, text: str, title: str = "",
                placement: Placement = ROOT,
                width: int = 0, height: int = 0,
                scrollable: bool = False) -> WindowSpec:
    """Convenience constructor for (scrollable) text windows."""
    return WindowSpec(
        name=name,
        kind=WindowKind.SCROLL_TEXT if scrollable else WindowKind.STATIC_TEXT,
        width=width,
        height=height,
        placement=placement,
        title=title,
        content=text,
    )


def button(name: str, label: str, command: str,
           placement: Placement = ROOT) -> WindowSpec:
    return WindowSpec(
        name=name,
        kind=WindowKind.BUTTON,
        placement=placement,
        content=label,
        command=command,
    )


def oid_button(name: str, label: str, oid: str, display_format: str = "",
               placement: Placement = ROOT) -> WindowSpec:
    """A navigation button bound to a referenced object (paper §4.3)."""
    return WindowSpec(
        name=name,
        kind=WindowKind.OID,
        placement=placement,
        content=label,
        oid=oid,
        display_format=display_format,
    )


def raster_window(name: str, image, title: str = "",
                  placement: Placement = ROOT) -> WindowSpec:
    return WindowSpec(
        name=name,
        kind=WindowKind.RASTER_IMAGE,
        width=getattr(image, "width", 0),
        height=getattr(image, "height", 0),
        placement=placement,
        title=title,
        content=image,
    )


def panel(name: str, children: Tuple[WindowSpec, ...], title: str = "",
          placement: Placement = ROOT, width: int = 0,
          height: int = 0) -> WindowSpec:
    return WindowSpec(
        name=name,
        kind=WindowKind.PANEL,
        width=width,
        height=height,
        placement=placement,
        title=title,
        children=tuple(children),
    )


def menu(name: str, items: Tuple[str, ...], title: str = "",
         placement: Placement = ROOT) -> WindowSpec:
    return WindowSpec(
        name=name,
        kind=WindowKind.MENU,
        placement=placement,
        title=title,
        content=tuple(items),
    )
