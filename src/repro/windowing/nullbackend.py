"""The null backend: structure without pixels.

The paper's central claim is that display functions are written against
generic window types, so "objects can be displayed by different versions of
OdeView which may be implemented quite differently" (§1).  This backend is
the proof: it implements the same backend interface as
:class:`~repro.windowing.textbackend.TextBackend` but produces a structural
summary (one line per window) instead of a drawing.  Any session that runs
under the text backend runs unchanged under this one — tests assert it.
"""

from __future__ import annotations

from typing import List

from repro.windowing.window import Window, WindowTree


class NullBackend:
    """Backend that reports structure, never drawing anything."""

    name = "null"

    def render(self, tree: WindowTree) -> str:
        lines: List[str] = []
        for root in tree.roots():
            self._describe(root, 0, lines)
        return "\n".join(lines)

    def _describe(self, window: Window, depth: int, lines: List[str]) -> None:
        state = "open" if window.is_open else "closed"
        geo = window.geometry
        lines.append(
            f"{'  ' * depth}{window.name} kind={window.kind.value} "
            f"state={state} at=({geo.x},{geo.y}) size=({geo.width}x{geo.height})"
        )
        for child in window.children:
            self._describe(child, depth + 1, lines)
