"""Raster images for the RASTER_IMAGE window type.

The paper's employee objects have a pictorial display (Figure 6), and the
acknowledgments credit a "bitmap filter" and "bitmap scaling routines" —
so the windowing layer gets a small grayscale raster type with scaling
(nearest-neighbour and box filter), a smoothing filter, and an ASCII
rendering the text backend uses.

Pixels are one byte each, 0 (black) .. 255 (white), row-major.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import RasterError

_ASCII_RAMP = "#%*+=-:. "  # dark .. light


@dataclass(frozen=True)
class RasterImage:
    """An immutable grayscale bitmap."""

    width: int
    height: int
    pixels: bytes

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise RasterError(f"bad raster dimensions {self.width}x{self.height}")
        if len(self.pixels) != self.width * self.height:
            raise RasterError(
                f"raster {self.width}x{self.height} needs "
                f"{self.width * self.height} bytes, got {len(self.pixels)}"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def blank(cls, width: int, height: int, value: int = 255) -> "RasterImage":
        if not 0 <= value <= 255:
            raise RasterError(f"pixel value {value} out of range")
        return cls(width, height, bytes([value]) * (width * height))

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "RasterImage":
        if not rows or not rows[0]:
            raise RasterError("from_rows needs a non-empty grid")
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise RasterError("ragged raster rows")
        flat = bytes(
            _clamp(value) for row in rows for value in row
        )
        return cls(width, len(rows), flat)

    # -- pixel access -------------------------------------------------------------

    def pixel(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise RasterError(f"pixel ({x},{y}) outside {self.width}x{self.height}")
        return self.pixels[y * self.width + x]

    def with_pixel(self, x: int, y: int, value: int) -> "RasterImage":
        self.pixel(x, y)  # bounds check
        data = bytearray(self.pixels)
        data[y * self.width + x] = _clamp(value)
        return RasterImage(self.width, self.height, bytes(data))

    # -- transforms -----------------------------------------------------------------

    def scale(self, new_width: int, new_height: int) -> "RasterImage":
        """Box-filter downscale / nearest-neighbour upscale."""
        if new_width <= 0 or new_height <= 0:
            raise RasterError("scale target must be positive")
        out = bytearray(new_width * new_height)
        for oy in range(new_height):
            y0 = oy * self.height // new_height
            y1 = max(y0 + 1, (oy + 1) * self.height // new_height)
            for ox in range(new_width):
                x0 = ox * self.width // new_width
                x1 = max(x0 + 1, (ox + 1) * self.width // new_width)
                total = 0
                for y in range(y0, y1):
                    row = y * self.width
                    for x in range(x0, x1):
                        total += self.pixels[row + x]
                out[oy * new_width + ox] = total // ((y1 - y0) * (x1 - x0))
        return RasterImage(new_width, new_height, bytes(out))

    def smooth(self) -> "RasterImage":
        """3x3 mean filter (the 'bitmap filter')."""
        out = bytearray(self.width * self.height)
        for y in range(self.height):
            for x in range(self.width):
                total = 0
                count = 0
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        nx, ny = x + dx, y + dy
                        if 0 <= nx < self.width and 0 <= ny < self.height:
                            total += self.pixels[ny * self.width + nx]
                            count += 1
                out[y * self.width + x] = total // count
        return RasterImage(self.width, self.height, bytes(out))

    def invert(self) -> "RasterImage":
        return RasterImage(
            self.width, self.height, bytes(255 - value for value in self.pixels)
        )

    # -- rendering -------------------------------------------------------------------

    def to_ascii(self, ramp: str = _ASCII_RAMP) -> str:
        """Character rendering, darkest pixels -> first ramp character."""
        if not ramp:
            raise RasterError("ascii ramp must be non-empty")
        steps = len(ramp)
        lines: List[str] = []
        for y in range(self.height):
            row = self.pixels[y * self.width:(y + 1) * self.width]
            lines.append("".join(ramp[min(value * steps // 256, steps - 1)]
                                 for value in row))
        return "\n".join(lines)


def _clamp(value: int) -> int:
    return max(0, min(255, int(value)))


def procedural_portrait(seed: int, size: int = 16) -> RasterImage:
    """A deterministic 'photo' for an employee object's picture display.

    The lab database has no real bitmaps, so each employee gets a
    procedurally drawn face varying with *seed*: head outline, eyes, and a
    mouth whose shape depends on the seed bits.  Deterministic, so figure
    renderings are stable.
    """
    if size < 8:
        raise RasterError("portrait size must be at least 8")
    grid = [[255] * size for _ in range(size)]
    center = (size - 1) / 2
    radius = size * 0.42 + (seed % 3) * 0.03 * size
    for y in range(size):
        for x in range(size):
            distance = math.hypot(x - center, y - center)
            if distance <= radius:
                grid[y][x] = 210
            if abs(distance - radius) < 0.6:
                grid[y][x] = 40
    eye_y = int(size * 0.38)
    eye_dx = max(2, size // 5) + (seed % 2)
    for ex in (int(center) - eye_dx, int(center) + eye_dx):
        if 0 <= ex < size:
            grid[eye_y][ex] = 0
            if seed % 5 == 0 and eye_y > 0:
                grid[eye_y - 1][ex] = 90  # raised eyebrows
    mouth_y = int(size * 0.68)
    mouth_half = max(1, size // 6)
    curve = 1 if seed % 4 in (0, 1) else -1  # smile or frown
    for dx in range(-mouth_half, mouth_half + 1):
        my = mouth_y + (curve if abs(dx) == mouth_half else 0)
        mx = int(center) + dx
        if 0 <= mx < size and 0 <= my < size:
            grid[my][mx] = 20
    return RasterImage.from_rows(grid)
