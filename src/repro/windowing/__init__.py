"""Generic windowing: the display protocol's window types plus backends."""

from repro.windowing.events import (
    Click, DataChanged, Drag, Event, EventLoop, KeyInput, MenuSelect,
)
from repro.windowing.nullbackend import NullBackend
from repro.windowing.raster import RasterImage, procedural_portrait
from repro.windowing.screen import Screen
from repro.windowing.svgbackend import SvgBackend
from repro.windowing.textbackend import TextBackend
from repro.windowing.window import Window, WindowTree
from repro.windowing.widgets import (
    button_column,
    button_row,
    control_panel,
    labelled_fields,
)
from repro.windowing.wintypes import (
    DisplayResources,
    Placement,
    Relation,
    ROOT,
    WindowKind,
    WindowSpec,
    at,
    below,
    button,
    menu,
    oid_button,
    panel,
    raster_window,
    right_of,
    text_window,
)

__all__ = [
    "Click",
    "DataChanged",
    "DisplayResources",
    "Drag",
    "Event",
    "EventLoop",
    "KeyInput",
    "MenuSelect",
    "NullBackend",
    "Placement",
    "ROOT",
    "RasterImage",
    "Relation",
    "Screen",
    "SvgBackend",
    "TextBackend",
    "Window",
    "WindowKind",
    "WindowSpec",
    "WindowTree",
    "at",
    "below",
    "button",
    "button_column",
    "button_row",
    "control_panel",
    "labelled_fields",
    "menu",
    "oid_button",
    "panel",
    "procedural_portrait",
    "raster_window",
    "right_of",
    "text_window",
]
