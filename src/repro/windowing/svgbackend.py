"""The SVG backend: a genuinely graphical third backend.

The paper's separation claim (§1) is that "objects can be displayed by
different versions of OdeView which may be implemented quite differently,
for example, these versions may be based on different windowing systems."
The text backend draws ASCII, the null backend reports structure — this
one emits standalone SVG: boxes with title bars, text runs, buttons,
menus, and raster images as pixel rectangles.  Sessions run against it
unchanged.

Geometry stays in character cells; the backend maps a cell to
``CELL_W x CELL_H`` pixels.
"""

from __future__ import annotations

import html
from typing import List

from repro.windowing.raster import RasterImage
from repro.windowing.window import Window, WindowTree
from repro.windowing.wintypes import WindowKind

CELL_W = 8
CELL_H = 16
_FONT = "monospace"


class SvgBackend:
    """Renders a window tree to a standalone SVG document."""

    name = "svg"

    def render(self, tree: WindowTree) -> str:
        body: List[str] = []
        max_right = 0
        max_bottom = 0
        for root in tree.draw_order():
            if not root.is_open:
                continue
            self._draw(root, 0, 0, body)
            right = (root.geometry.x + root.geometry.width + 2) * CELL_W
            bottom = (root.geometry.y + root.geometry.height + 2) * CELL_H
            max_right = max(max_right, right)
            max_bottom = max(max_bottom, bottom)
        closed = tree.closed_roots()
        if closed:
            labels = " ".join(f"({window.name})" for window in closed)
            body.append(self._text(4, max_bottom + CELL_H,
                                   f"icons: {labels}", italic=True))
            max_bottom += 2 * CELL_H
            max_right = max(max_right, (len(labels) + 8) * CELL_W)
        width = max(max_right, CELL_W)
        height = max(max_bottom, CELL_H)
        return "\n".join(
            [f'<svg xmlns="http://www.w3.org/2000/svg" '
             f'width="{width}" height="{height}" '
             f'font-family="{_FONT}" font-size="{CELL_H - 4}">',
             f'<rect width="{width}" height="{height}" fill="#f4f4f0"/>']
            + body + ["</svg>"]
        )

    # -- drawing -----------------------------------------------------------------

    def _draw(self, window: Window, origin_x: int, origin_y: int,
              body: List[str]) -> None:
        x = (origin_x + window.geometry.x) * CELL_W
        y = (origin_y + window.geometry.y) * CELL_H
        width = (window.geometry.width + 2) * CELL_W
        height = (window.geometry.height + 2) * CELL_H
        kind = window.kind
        fill = {"button": "#dce6f2", "oid": "#dcf2dc",
                "menu": "#f2eedc"}.get(kind.value, "#ffffff")
        body.append(
            f'<rect x="{x}" y="{y}" width="{width}" height="{height}" '
            f'fill="{fill}" stroke="#333333"/>')
        if window.spec.title:
            body.append(
                f'<rect x="{x}" y="{y}" width="{width}" height="{CELL_H}" '
                f'fill="#333366"/>')
            body.append(self._text(x + 4, y + CELL_H - 4,
                                   window.spec.title, colour="#ffffff"))
        inner_x = x + CELL_W
        inner_y = y + CELL_H
        if kind in (WindowKind.STATIC_TEXT, WindowKind.SCROLL_TEXT):
            lines = window.text_lines()
            start = window.scroll_offset if kind is WindowKind.SCROLL_TEXT \
                else 0
            visible = lines[start:start + max(window.geometry.height, 1)]
            for row, line in enumerate(visible):
                body.append(self._text(inner_x, inner_y + (row + 1) * CELL_H
                                       - 4, line))
            if kind is WindowKind.SCROLL_TEXT:
                body.append(self._text(x + width - CELL_W,
                                       y + 2 * CELL_H - 4, "^"))
                body.append(self._text(x + width - CELL_W,
                                       y + height - 4, "v"))
        elif kind in (WindowKind.BUTTON, WindowKind.OID):
            label = str(window.content or window.name)
            body.append(self._text(inner_x, inner_y + CELL_H - 4,
                                   f"[{label}]"))
        elif kind is WindowKind.MENU:
            for row, item in enumerate(window.content or ()):
                body.append(self._text(inner_x,
                                       inner_y + (row + 1) * CELL_H - 4,
                                       str(item)))
        elif kind is WindowKind.RASTER_IMAGE:
            image = window.content
            if isinstance(image, RasterImage):
                self._draw_raster(image, inner_x, inner_y,
                                  window.geometry.width,
                                  window.geometry.height, body)
        elif kind is WindowKind.PANEL:
            for child in window.children:
                if child.is_open:
                    self._draw(child,
                               origin_x + window.geometry.x + 1,
                               origin_y + window.geometry.y + 1, body)

    def _draw_raster(self, image: RasterImage, x: int, y: int,
                     cell_width: int, cell_height: int,
                     body: List[str]) -> None:
        if image.width != cell_width or image.height != cell_height:
            image = image.scale(max(cell_width, 1), max(cell_height, 1))
        pixel_w = CELL_W
        pixel_h = CELL_H
        for row in range(image.height):
            for col in range(image.width):
                value = image.pixel(col, row)
                if value >= 250:
                    continue  # near-white: let the window background show
                colour = f"#{value:02x}{value:02x}{value:02x}"
                body.append(
                    f'<rect x="{x + col * pixel_w}" y="{y + row * pixel_h}" '
                    f'width="{pixel_w}" height="{pixel_h}" fill="{colour}"/>')

    @staticmethod
    def _text(x: int, y: int, content: str, colour: str = "#111111",
              italic: bool = False) -> str:
        style = ' font-style="italic"' if italic else ""
        return (f'<text x="{x}" y="{y}" fill="{colour}"{style} '
                f'xml:space="preserve">{html.escape(content)}</text>')
