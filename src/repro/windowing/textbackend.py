"""The headless text backend.

Renders a window tree to deterministic ASCII — the reproduction's
equivalent of the paper's X11/HP-Xwidgets screenshots.  Every figure in
EXPERIMENTS.md is produced by this backend.

Each window is drawn as a box::

    +- title ------+
    | content      |
    +--------------+

Scrollable windows mark their right border with ``^``/``v``; buttons render
as ``[label]``; raster images render through the ASCII ramp, scaled to the
window's content area; closed top-level windows appear in an icon bar at
the bottom, since they still exist (and keep refreshing) while closed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.windowing.raster import RasterImage
from repro.windowing.window import Window, WindowTree
from repro.windowing.wintypes import WindowKind

_BORDER = 1


class TextBackend:
    """Deterministic ASCII renderer."""

    name = "text"

    def render(self, tree: WindowTree) -> str:
        boxes: List[Tuple[int, int, List[str]]] = []
        max_right = 0
        max_bottom = 0
        for root in tree.draw_order():
            if not root.is_open:
                continue
            lines = self._draw_window(root)
            x, y = root.geometry.x, root.geometry.y
            boxes.append((x, y, lines))
            max_right = max(max_right, x + max(len(line) for line in lines))
            max_bottom = max(max_bottom, y + len(lines))

        canvas = [[" "] * max_right for _ in range(max_bottom)]
        for x, y, lines in boxes:
            for row, line in enumerate(lines):
                for col, char in enumerate(line):
                    if 0 <= y + row < max_bottom and 0 <= x + col < max_right:
                        canvas[y + row][x + col] = char
        rendered = [("".join(row)).rstrip() for row in canvas]

        closed = tree.closed_roots()
        if closed:
            rendered.append("")
            rendered.append(
                "icons: " + " ".join(f"({window.name})" for window in closed)
            )
        return "\n".join(rendered).rstrip("\n")

    # -- drawing ---------------------------------------------------------------

    def _draw_window(self, window: Window) -> List[str]:
        width = max(window.geometry.width, 1)
        height = max(window.geometry.height, 1)
        interior = self._interior(window, width, height)
        # frame
        title = window.spec.title
        top = "+-"
        if title:
            top += f" {title} "
        top += "-" * max(0, width - len(top) + 1)
        top = top[: width + 1] + "+"
        scroll = window.kind is WindowKind.SCROLL_TEXT
        lines = [top]
        for row in range(height):
            body = interior[row] if row < len(interior) else ""
            body = body[:width].ljust(width)
            right = "|"
            if scroll and row == 0:
                right = "^"
            elif scroll and row == height - 1:
                right = "v"
            lines.append(f"|{body}{right}")
        lines.append("+" + "-" * width + "+")
        return lines

    def _interior(self, window: Window, width: int, height: int) -> List[str]:
        kind = window.kind
        if kind is WindowKind.STATIC_TEXT:
            return window.text_lines()
        if kind is WindowKind.SCROLL_TEXT:
            lines = window.text_lines()
            start = min(window.scroll_offset, max(0, len(lines) - 1))
            return lines[start:start + height]
        if kind in (WindowKind.BUTTON, WindowKind.OID):
            label = str(window.content or window.name)
            return [f"[{label}]"[:width]]
        if kind is WindowKind.MENU:
            items = window.content or ()
            return [str(item) for item in items]
        if kind is WindowKind.RASTER_IMAGE:
            image = window.content
            if not isinstance(image, RasterImage):
                return ["<no image>"]
            if image.width != width or image.height != height:
                image = image.scale(width, height)
            return image.to_ascii().split("\n")
        if kind is WindowKind.PANEL:
            return self._draw_panel(window, width, height)
        return []

    def _draw_panel(self, panel: Window, width: int, height: int) -> List[str]:
        grid = [[" "] * width for _ in range(height)]
        for child in panel.children:
            if not child.is_open:
                continue
            lines = self._draw_window(child)
            x, y = child.geometry.x, child.geometry.y
            for row, line in enumerate(lines):
                for col, char in enumerate(line):
                    if 0 <= y + row < height and 0 <= x + col < width:
                        grid[y + row][x + col] = char
        return ["".join(row).rstrip() for row in grid]
