"""Widget factories: common window assemblies OdeView uses.

These are convenience builders over the generic window types — the control
panel with its ``reset``/``next``/``previous`` buttons (paper §3.2), button
rows, and labelled field lists.  They return :class:`WindowSpec` data only;
nothing here touches a backend.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.windowing.wintypes import (
    Placement,
    ROOT,
    WindowSpec,
    button,
    panel,
    right_of,
    below,
    text_window,
)


def button_row(prefix: str, labels_and_commands: Sequence[Tuple[str, str]],
               placement: Placement = ROOT) -> List[WindowSpec]:
    """A horizontal row of buttons: first at *placement*, rest chained."""
    specs: List[WindowSpec] = []
    previous_name = None
    for index, (label, command) in enumerate(labels_and_commands):
        name = f"{prefix}.{command or label}.{index}"
        place = placement if previous_name is None else right_of(previous_name)
        specs.append(button(name, label, command, placement=place))
        previous_name = name
    return specs


def control_panel(prefix: str, placement: Placement = ROOT) -> WindowSpec:
    """The object-set window's control panel (paper §3.2):
    reset / next / previous sequencing buttons."""
    buttons = button_row(
        f"{prefix}.control",
        [("reset", "reset"), ("next", "next"), ("previous", "previous")],
        placement=Placement(),
    )
    return panel(
        f"{prefix}.control",
        children=tuple(buttons),
        title="control",
        placement=placement,
    )


def labelled_fields(name: str, pairs: Iterable[Tuple[str, str]],
                    title: str = "", placement: Placement = ROOT,
                    scrollable: bool = False,
                    height: int = 0) -> WindowSpec:
    """A text window showing aligned ``label: value`` lines."""
    pairs = list(pairs)
    label_width = max((len(label) for label, _ in pairs), default=0)
    lines = [f"{label.ljust(label_width)} : {value}" for label, value in pairs]
    return text_window(
        name,
        "\n".join(lines) if lines else "(empty)",
        title=title,
        placement=placement,
        scrollable=scrollable,
        height=height,
    )


def button_column(prefix: str, labels_and_commands: Sequence[Tuple[str, str]],
                  placement: Placement = ROOT) -> List[WindowSpec]:
    """A vertical column of buttons."""
    specs: List[WindowSpec] = []
    previous_name = None
    for index, (label, command) in enumerate(labels_and_commands):
        name = f"{prefix}.{command or label}.{index}"
        place = placement if previous_name is None else below(previous_name)
        specs.append(button(name, label, command, placement=place))
        previous_name = name
    return specs
