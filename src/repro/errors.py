"""Exception hierarchy for the OdeView reproduction.

Every error raised by this package derives from :class:`OdeError`, so callers
can catch one base class at the library boundary.  Subsystems get their own
intermediate bases (storage, schema, language, windowing, ...), mirroring the
module layout described in DESIGN.md.
"""

from __future__ import annotations


class OdeError(Exception):
    """Base class for every error raised by the repro package."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(OdeError):
    """Base class for errors in the page/buffer/WAL/store layer."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, corrupt header, ...)."""


class PageFullError(PageError):
    """The record does not fit in the page's free space."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse: unpinning an unpinned page, pool exhausted, ..."""


class WalError(StorageError):
    """The write-ahead log is corrupt or was misused."""


class CodecError(StorageError):
    """A value could not be serialised or deserialised."""


class ObjectNotFoundError(StorageError):
    """No object with the requested OID exists (or it was deleted)."""


class TransactionError(StorageError):
    """Transaction misuse: commit without begin, nested begin, ..."""


class GroupCommitError(StorageError):
    """The group-commit leader died mid-flush; the batch outcome is unknown.

    Raised to *followers* parked on the commit barrier when the thread
    elected to flush their batch crashed (a simulated process death).
    The dying leader re-raises its own crash; everyone else gets this.
    Unlike a transient flush failure, no recovery is attempted — a dead
    process does not tidy up — so the store must be reopened to learn
    which commits in the batch actually reached stable storage.
    """


class FaultInjectedError(StorageError):
    """An I/O failure injected by :mod:`repro.faultsim`.

    Raised from a storage ``fault_gate`` to stand in for a real device
    error (EIO, ENOSPC, ...).  It subclasses :class:`StorageError` so
    the store's error handling treats it exactly like the failures it
    simulates; production code never raises it.
    """


# ---------------------------------------------------------------------------
# Data model / schema
# ---------------------------------------------------------------------------

class SchemaError(OdeError):
    """Schema-level failure: unknown class, duplicate class, bad inheritance."""


class TypeError_(SchemaError):
    """A value does not conform to its declared O++ type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class AccessError(SchemaError):
    """Encapsulation violation: private member accessed without privilege."""


class ConstraintViolationError(OdeError):
    """An object constraint failed during commit/update."""

    def __init__(self, class_name: str, constraint_name: str, message: str = ""):
        self.class_name = class_name
        self.constraint_name = constraint_name
        detail = message or f"constraint {constraint_name!r} violated on class {class_name!r}"
        super().__init__(detail)


class TriggerError(OdeError):
    """A trigger body raised or a trigger was misdeclared."""


# ---------------------------------------------------------------------------
# O++ language front end
# ---------------------------------------------------------------------------

class OppError(OdeError):
    """Base class for O++ lexing/parsing/checking errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")


class LexError(OppError):
    """The tokeniser met an invalid character or unterminated literal."""


class ParseError(OppError):
    """The parser met an unexpected token."""


class TypeCheckError(OppError):
    """Static checking of a class definition or predicate failed."""


class PredicateError(OdeError):
    """A selection predicate failed to evaluate against an object."""


# ---------------------------------------------------------------------------
# Windowing
# ---------------------------------------------------------------------------

class WindowError(OdeError):
    """Window-tree misuse: unknown window, duplicate name, closed parent."""


class LayoutError(WindowError):
    """Window geometry could not be solved (cycle, unknown anchor, ...)."""


class RasterError(WindowError):
    """A raster image operation failed (bad dimensions, bad data length)."""


# ---------------------------------------------------------------------------
# Dynamic linking of display functions
# ---------------------------------------------------------------------------

class DynlinkError(OdeError):
    """A display module could not be located, loaded, or executed."""


class DisplayProtocolError(DynlinkError):
    """A display function returned something that is not DisplayResources."""


# ---------------------------------------------------------------------------
# Process model
# ---------------------------------------------------------------------------

class ProcessError(OdeError):
    """Actor/process-manager misuse."""


class ProcessCrashedError(ProcessError):
    """A message was sent to an interactor that has already crashed."""


# ---------------------------------------------------------------------------
# Page/object server and remote-database client
# ---------------------------------------------------------------------------

class NetworkError(OdeError):
    """The client could not reach the server (connect, timeout, framing)."""


class ProtocolError(NetworkError):
    """A wire frame was malformed (bad magic, CRC mismatch, bad payload)."""


class SessionLostError(NetworkError):
    """The connection dropped while session-affine state was live.

    A server session holds state that does not survive a reconnect: an
    open transaction (aborted server-side when the connection dies) and
    sequencing cursors.  Requests that depend on that state fail with
    this error instead of silently running against a fresh session.
    """


class RemoteError(OdeError):
    """The server rejected a request; carries the remote exception kind."""

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        super().__init__(message or kind)


# ---------------------------------------------------------------------------
# Replication
# ---------------------------------------------------------------------------

class ReplicationError(OdeError):
    """Base class for WAL-shipping replication failures."""


class ReadOnlyReplicaError(ReplicationError):
    """A write reached a read replica; writes must go to the primary.

    The message names the primary's address when the replica knows it,
    so a misconfigured client can be redirected by hand.
    """


class ReplicaDivergedError(ReplicationError):
    """A replica holds state the primary's stream cannot extend.

    Applied epochs must form a contiguous prefix of the primary's
    committed epochs; seeing an apply that would regress or leapfrog
    the replica's epoch means the topology is wrong (two primaries, a
    restored backup, a snapshot older than the replica) and blind
    application would corrupt the replica silently.
    """


class StalePrimaryError(ReplicationError):
    """A node claiming to be primary carries a superseded term.

    Primary terms are durably minted at promotion and only ever rise;
    a unit, snapshot, or hello stamped with a term below one this node
    has already observed comes from a primary that was failed over
    away from — accepting its writes (or writing through it) would
    split-brain the cluster.  The stale node must be fenced: demoted
    to a replica of the current-term primary and resynced.
    """


# ---------------------------------------------------------------------------
# OdeView application layer
# ---------------------------------------------------------------------------

class OdeViewError(OdeError):
    """Application-level misuse of the OdeView front end."""


class SessionError(OdeViewError):
    """The scripted session driver was asked to do something impossible."""


class ProjectionError(OdeViewError):
    """Bad projection request (unknown attribute, bad bit vector)."""


class SelectionError(OdeViewError):
    """Bad selection request (attribute not in selectlist, bad predicate)."""
