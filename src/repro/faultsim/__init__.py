"""repro.faultsim — deterministic fault injection and crash simulation.

The store's durability story ("a crash never loses a committed object,
never resurrects an uncommitted one") and the wire protocol's failure
story ("the client returns correct data or raises a typed error, never
garbage or a hang") are claims about *schedules* — which byte of which
write was the last to land, which frame was torn in flight.  Hand-built
crash tests each pin one schedule; this package explores the space
systematically and, crucially, **deterministically**: every run is a
pure function of a seed, so any failing schedule replays from the seed
printed with the failure.

Three layers:

* :mod:`~repro.faultsim.plan` — :class:`FaultPlan` (seeded RNG + step
  counter) and the gate callables (:class:`CrashSchedule`,
  :class:`SiteCrash`, :class:`CountingGate`, :class:`RandomFaultGate`)
  that the storage layer's ``fault_gate`` hooks accept.
* :mod:`~repro.faultsim.harness` — the crash-recovery torture runner:
  run a seeded transactional workload, kill the store at an exact
  injection site, reopen, and model-check the survivors against a
  shadow dict.
* :mod:`~repro.faultsim.replication` — the replicated torture runner:
  the same workload against a gated primary while a replica streams
  committed units, with the primary (and optionally the replica)
  killed mid-run and the replication contract model-checked.
* :mod:`~repro.faultsim.promotion` — the failover torture runner: the
  primary killed at an exact site, a chosen replica promoted under a
  fenced term (salvaging the dead primary's acked tail), optionally the
  old primary resurrected mid-schedule and proven fenced.
* :mod:`~repro.faultsim.proxy` — :class:`FaultProxy`, a TCP shim
  between :class:`~repro.net.client.OdeClient` and
  :class:`~repro.net.server.OdeServer` that delays, drops, duplicates,
  corrupts, or splits traffic under a plan.

The injection sites threaded through ``repro.ode`` are registered in
:mod:`~repro.faultsim.sites`; a test asserts the registry matches the
source, so a new sync point cannot be added without torture coverage.
Every hook is a no-op by default: the hot path only pays an
``is None`` check.
"""

from repro.faultsim.harness import (
    TortureWorkload,
    crash_store,
    enumerate_gate_calls,
    run_one_crash,
)
from repro.faultsim.plan import (
    CountingGate,
    CrashSchedule,
    FaultPlan,
    RandomFaultGate,
    SimulatedCrash,
    SiteCrash,
)
from repro.faultsim.promotion import (
    PromotionCrashOutcome,
    run_promotion_crash,
)
from repro.faultsim.proxy import FaultProxy
from repro.faultsim.replication import (
    ReplicatedCrashOutcome,
    run_replicated_crash,
)
from repro.faultsim.sites import (
    PAGEFILE_SITES,
    PROXY_ACTIONS,
    STORAGE_SITES,
    STORE_SITES,
    WAL_SITES,
)

__all__ = [
    "CountingGate",
    "CrashSchedule",
    "FaultPlan",
    "FaultProxy",
    "RandomFaultGate",
    "SimulatedCrash",
    "SiteCrash",
    "PromotionCrashOutcome",
    "ReplicatedCrashOutcome",
    "run_promotion_crash",
    "TortureWorkload",
    "crash_store",
    "enumerate_gate_calls",
    "run_one_crash",
    "run_replicated_crash",
    "PAGEFILE_SITES",
    "PROXY_ACTIONS",
    "STORAGE_SITES",
    "STORE_SITES",
    "WAL_SITES",
]
