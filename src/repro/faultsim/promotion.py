"""Crash-recovery torture for replica promotion and fenced terms.

Extends the replicated torture harness to the failover story: the
seeded workload runs against a gated primary feeding **two** replicas
at seeded, laggy apply points; at ``crash_at`` the primary dies (or
survives the whole schedule — the controlled-handoff case), a seeded
choice of replica is promoted with
:func:`~repro.repl.promote.promote_store` (salvaging the dead
primary's durable WAL tail first), and a second workload runs against
the promoted node while the remaining replica catches up across the
promotion.  Optionally the old primary is *resurrected* mid-schedule:
it reopens at its old term, accepts one split-brain write, and the
harness proves the fence holds before re-subscribing it as a replica
of the new primary.

The model checks, per schedule:

* **no acked write lost** — the promoted node's state right after
  salvage is an acceptable state of the original workload, exactly the
  bar the single-store matrix holds the reopened primary to;
* **the failover reign is correct** — the post-promotion workload's
  committed image is fully present on the promoted node;
* **(term, epoch) never regresses on any node** — epochs may rewind
  only when the term rises (the fenced-rejoin snapshot), never
  otherwise;
* **at most one mint per term** — scanning every node's WAL for TERM
  records, no term was ever minted by two nodes;
* **the fence holds** (resurrect schedules) — the resurrected
  primary's split-brain unit and snapshot both raise
  :class:`~repro.errors.StalePrimaryError` at the promoted node, and
  the split-brain write is discarded when the old primary is fenced
  and re-subscribed;
* **the cluster converges** — every surviving node ends byte-identical
  to the promoted primary, at its epoch and term.

Everything is a function of ``(seed, crash_at, resurrect)``, so a
failure line is a complete reproduction recipe.  The schedule space is
the same primary gate-call enumeration as the other matrices
(:func:`~repro.faultsim.harness.enumerate_gate_calls`): replicas run
ungated, so shipping and applying cross no gates.

One deliberate liberty: mid-reign catch-up here may *stream* units
across the promotion (exercising term adoption in
:meth:`~repro.ode.store.ObjectStore.apply_replicated`) where the real
:class:`~repro.repl.replica.ReplicaApplier` always snapshot-resyncs on
a term raise.  The applier cannot rule out same-epoch divergence; this
harness can — the promoted node salvaged the dead primary's *entire*
acked history, so every node's prefix is a prefix of the promoted
node's — which makes streaming sound and lets the matrix cover both
catch-up paths.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StalePrimaryError
from repro.faultsim.harness import (
    TORTURE_POOL_CAPACITY,
    TortureWorkload,
)
from repro.faultsim.plan import CrashSchedule, derive_seed
from repro.faultsim.replication import (
    APPLY_PROBABILITY,
    _run_gated_primary,
    _state,
)
from repro.ode.codec import encode_object
from repro.ode.oid import Oid
from repro.ode.store import ObjectStore
from repro.ode.wal import OP_TERM, WriteAheadLog
from repro.repl.feed import ReplicationFeed, units_from_wire
from repro.repl.promote import promote_store

#: Probability that a mid-reign catch-up streams across the promotion
#: instead of snapshot-resyncing (both must work; see module docstring).
STREAM_PROBABILITY = 0.5


class PromotionCrashOutcome:
    """What one promotion schedule did — for failure messages."""

    def __init__(self, seed: int, crash_at: int, crashed: bool,
                 resurrect: bool, promoted: str, term: int, salvaged: int,
                 survivors_ok: bool, failover_ok: bool, monotonic: bool,
                 single_mint_ok: bool, fenced_ok: bool, converged: bool,
                 detail: str):
        self.seed = seed
        self.crash_at = crash_at
        self.crashed = crashed
        self.resurrect = resurrect
        self.promoted = promoted
        self.term = term
        self.salvaged = salvaged
        self.survivors_ok = survivors_ok
        self.failover_ok = failover_ok
        self.monotonic = monotonic
        self.single_mint_ok = single_mint_ok
        self.fenced_ok = fenced_ok
        self.converged = converged
        self.detail = detail

    @property
    def ok(self) -> bool:
        return (self.survivors_ok and self.failover_ok and self.monotonic
                and self.single_mint_ok and self.fenced_ok
                and self.converged)

    def describe(self) -> str:
        return (
            f"promotion schedule seed={self.seed} crash_at={self.crash_at} "
            f"resurrect={self.resurrect} crashed={self.crashed} "
            f"promoted={self.promoted} term={self.term} "
            f"salvaged={self.salvaged}\n"
            f"  survivors_ok={self.survivors_ok} "
            f"failover_ok={self.failover_ok} monotonic={self.monotonic} "
            f"single_mint_ok={self.single_mint_ok} "
            f"fenced_ok={self.fenced_ok} converged={self.converged}\n"
            f"  {self.detail}"
        )


def _minted_terms(wal_path: Path) -> List[int]:
    """Every term a node's on-disk WAL holds a TERM mint record for.

    TERM records are never shipped (``committed_units`` skips them), so
    they appear exactly where :meth:`ObjectStore.promote_term` minted
    them — which makes the union of these scans the cluster's minting
    history.
    """
    if not wal_path.exists():
        return []
    wal = WriteAheadLog(wal_path)
    try:
        return [record.term for record in wal.records()
                if record.op == OP_TERM]
    finally:
        wal.close()


def run_promotion_crash(directory: Union[str, Path], seed: int,
                        crash_at: int, transactions: int = 4,
                        resurrect: bool = False) -> PromotionCrashOutcome:
    """Run one promotion schedule end to end and model-check it.

    ``directory`` must be fresh; ``crash_at`` indexes the primary's
    gate-call schedule exactly as in
    :func:`repro.faultsim.harness.run_one_crash`.
    """
    directory = Path(directory)
    primary_dir = directory / "primary"
    schedule = CrashSchedule(crash_at, seed)
    workload = TortureWorkload(seed, transactions)
    rng = random.Random(derive_seed(seed, "promotion"))

    feed: Optional[ReplicationFeed] = None
    replicas: Dict[str, ObjectStore] = {
        name: ObjectStore(directory / name,
                          pool_capacity=TORTURE_POOL_CAPACITY)
        for name in ("replica-a", "replica-b")
    }

    marks: Dict[str, Tuple[int, int]] = {}
    monotonic = True
    notes: List[str] = []

    def observe(name: str, store: ObjectStore, where: str) -> None:
        nonlocal monotonic
        mark = (store.term, store.epoch)
        prev = marks.get(name)
        if prev is not None and mark < prev:
            monotonic = False
            notes.append(f"{name}: (term, epoch) regressed "
                         f"{prev} -> {mark} at {where}")
        if prev is None or mark > prev:
            marks[name] = mark

    def catch_up(name: str) -> None:
        store = replicas[name]
        reply = feed.fetch(store.epoch, max_units=transactions * 4)
        if reply["resync"]:
            return  # bounded ring outran us; a later sync covers it
        units = units_from_wire(reply["units"])
        if units:
            store.apply_replicated(units)
        observe(name, store, "apply")

    def on_commit() -> None:
        for name in sorted(replicas):
            if rng.random() < APPLY_PROBABILITY:
                catch_up(name)

    def publish_feed(created: ReplicationFeed) -> None:
        nonlocal feed
        feed = created

    crashed = _run_gated_primary(
        primary_dir, schedule, workload, on_commit, publish_feed)

    def sync_full(upstream: ObjectStore, name: str) -> None:
        """Bring ``replicas[name]`` exactly level with *upstream*.

        Streams when the upstream's WAL window still covers the node
        (adopting any higher terms carried on the units), then falls
        back to a snapshot install whenever streaming alone cannot
        land it on the upstream's exact (term, epoch) — e.g. the term
        was minted after the last commit, so no unit carries it yet.
        """
        store = replicas[name]
        units, floor = upstream.replication_units(store.epoch)
        if floor is not None and store.epoch >= floor and units:
            store.apply_replicated(units)
        if (store.epoch, store.term) != (upstream.epoch, upstream.term):
            with upstream.snapshot() as snap:
                records = [(str(oid), snap.get(oid))
                           for oid in snap.oids()]
                store.install_replicated(snap.epoch, records,
                                         term=upstream.term)
        observe(name, store, f"sync from {upstream.directory.name}")

    if not crashed:
        # Controlled handoff: the primary closed cleanly, checkpointing
        # its WAL at the final epoch — a lagged replica can no longer
        # salvage-bridge from the file, so the handoff catches both
        # replicas up from a clean reopen *before* the promotion.
        handoff = ObjectStore(primary_dir,
                              pool_capacity=TORTURE_POOL_CAPACITY)
        for name in sorted(replicas):
            sync_full(handoff, name)
        handoff.close()

    target_name = rng.choice(sorted(replicas))
    other_name = next(n for n in sorted(replicas) if n != target_name)
    target = replicas[target_name]

    result = promote_store(target, primary_directory=primary_dir)
    observe(target_name, target, "promotion")

    # (a) No acked write lost: the promoted node's post-salvage image
    # must be an acceptable state of the original workload — the same
    # bar the single-store matrix holds the reopened primary to.
    survivors = _state(target)
    acceptable = workload.acceptable_states()
    survivors_ok = any(survivors == state for state in acceptable)
    if not survivors_ok:
        notes.append(f"promoted survivors {sorted(survivors)} match no "
                     f"acceptable state (committed={sorted(acceptable[0])})")

    # Resurrect the old primary *before* the failover reign commits
    # anything: at this instant the promoted node sits exactly at the
    # dead primary's last acked epoch, so the split-brain unit is the
    # next epoch on both sides — the hardest case for the fence.
    fenced_ok = True
    old: Optional[ObjectStore] = None
    if resurrect:
        old = ObjectStore(primary_dir, pool_capacity=TORTURE_POOL_CAPACITY)
        observe("primary", old, "resurrect")
        split_oid = Oid("split", "brain", 0)
        old.begin()
        old.put(split_oid, encode_object(split_oid, "SplitBrain",
                                         {"data": b"stale reign"}))
        old.commit()
        observe("primary", old, "split-brain commit")

        # The stale unit extends the promoted node's epochs contiguously
        # — only the term check can reject it.
        stale_units, _floor = old.replication_units(target.epoch)
        if not stale_units:
            fenced_ok = False
            notes.append(f"expected a split-brain unit past epoch "
                         f"{target.epoch}, found none")
        try:
            target.apply_replicated(stale_units)
            if stale_units:
                fenced_ok = False
                notes.append("promoted node applied a stale-term unit")
        except StalePrimaryError:
            pass
        # A full snapshot from the old primary must bounce identically.
        with old.snapshot() as snap:
            records = [(str(oid), snap.get(oid)) for oid in snap.oids()]
            try:
                target.install_replicated(snap.epoch, records,
                                          term=old.term)
                fenced_ok = False
                notes.append("promoted node installed a stale-term snapshot")
            except StalePrimaryError:
                pass
        if _state(target) != survivors:
            fenced_ok = False
            notes.append("fenced rejection mutated the promoted node")

        # Fence the old primary: a snapshot under the new term rewinds
        # its epoch past the split-brain write — the one legal epoch
        # rewind, licensed by the term raise.
        with target.snapshot() as snap:
            records = [(str(oid), snap.get(oid)) for oid in snap.oids()]
            old.install_replicated(snap.epoch, records, term=target.term)
        observe("primary", old, "fenced rejoin")
        if str(split_oid) in {str(oid) for oid in old.oids()}:
            fenced_ok = False
            notes.append("split-brain write survived the fenced rejoin")
        replicas["primary"] = old  # now an ordinary follower

    # The failover reign: a second workload, disjoint OID namespace,
    # against the promoted node — followers catch up at seeded points,
    # streaming or resyncing across the promotion.
    failover_workload = TortureWorkload(
        derive_seed(seed, "failover"), transactions=max(2, transactions // 2))
    failover_workload.DATABASE = "failover"
    failover_workload.CLUSTER_PREFIX = "f"  # see TortureWorkload.CLUSTER_PREFIX

    def follower_sync() -> None:
        for name in sorted(replicas):
            if name == target_name or rng.random() >= APPLY_PROBABILITY:
                continue
            store = replicas[name]
            units, floor = target.replication_units(store.epoch)
            can_stream = (floor is not None and store.epoch >= floor
                          and units)
            if can_stream and (target.term == store.term
                               or rng.random() < STREAM_PROBABILITY):
                store.apply_replicated(units)
            else:
                with target.snapshot() as snap:
                    records = [(str(oid), snap.get(oid))
                               for oid in snap.oids()]
                    store.install_replicated(snap.epoch, records,
                                             term=target.term)
            observe(name, store, "follower sync")

    failover_workload.run(target, on_commit=follower_sync)
    observe(target_name, target, "failover workload")

    # (b) The reign is correct: every committed failover write is
    # present on the promoted node, and the salvaged image untouched.
    final = _state(target)
    failover_state = {oid: payload for oid, payload in final.items()
                      if oid.startswith("failover:")}
    failover_ok = failover_state == failover_workload.committed
    if not failover_ok:
        notes.append(f"failover state {sorted(failover_state)} != committed "
                     f"{sorted(failover_workload.committed)}")
    preserved = {oid: payload for oid, payload in final.items()
                 if not oid.startswith("failover:")}
    if preserved != survivors:
        failover_ok = False
        notes.append("failover reign disturbed the salvaged image")

    # Final convergence: every follower lands exactly on the promoted
    # node's (term, epoch) and byte image.
    for name in sorted(replicas):
        if name != target_name:
            sync_full(target, name)
    converged = all(
        _state(store) == final
        and store.epoch == target.epoch and store.term == target.term
        for name, store in replicas.items() if name != target_name)
    if not converged:
        for name, store in sorted(replicas.items()):
            if name == target_name:
                continue
            notes.append(f"{name}: epoch {store.epoch}/{target.epoch} "
                         f"term {store.term}/{target.term} "
                         f"keys {sorted(_state(store))}")

    # (c) At most one mint per term, cluster-wide.  Scan the on-disk
    # WALs before closing anything — close() checkpoints truncate them.
    minters: Dict[int, List[str]] = {}
    wal_paths = {"primary": primary_dir / ObjectStore.WAL_FILE}
    for name in replicas:
        if name != "primary":
            wal_paths[name] = directory / name / ObjectStore.WAL_FILE
    for name, path in sorted(wal_paths.items()):
        for term in _minted_terms(path):
            minters.setdefault(term, []).append(name)
    single_mint_ok = all(len(names) == 1 for names in minters.values())
    if not single_mint_ok:
        notes.append(f"terms minted more than once: "
                     f"{ {t: n for t, n in minters.items() if len(n) > 1} }")
    if minters.get(result.term) != [target_name]:
        single_mint_ok = False
        notes.append(f"term {result.term} mint record not found on "
                     f"{target_name}: minters={minters}")

    for store in replicas.values():
        store.close()
    return PromotionCrashOutcome(
        seed=seed, crash_at=crash_at, crashed=crashed, resurrect=resurrect,
        promoted=target_name, term=result.term,
        salvaged=result.salvaged_units, survivors_ok=survivors_ok,
        failover_ok=failover_ok, monotonic=monotonic,
        single_mint_ok=single_mint_ok, fenced_ok=fenced_ok,
        converged=converged, detail="; ".join(notes) or "clean")
