"""Crash-recovery torture for WAL-shipping replication.

Extends the single-store torture harness with a replica: the seeded
workload runs against a gated primary while a replica — fed through a
real :class:`~repro.repl.feed.ReplicationFeed` — applies committed
units at seeded, deliberately-laggy points between transactions.  The
schedule can also kill the replica mid-run (same ``kill -9`` model as
the primary) and, at ``crash_at``, kills the primary itself.  After the
dust settles both stores are reopened, the replica catches up, and the
harness model-checks the full replication contract:

* the primary's survivors are an acceptable workload state — no acked
  write lost, exactly as in the single-store matrix;
* the replica's *published epoch never regresses*, across its own
  kills, the primary's kill, and the final catch-up (resync included);
* every epoch the replica published by streaming is a **contiguous
  prefix extension** of the primary's committed epoch sequence — the
  replica never skips a committed epoch and never invents one;
* after catch-up the replica's store is byte-identical to the
  primary's.

Everything is a function of ``(seed, crash_at, kill_replica)``, so a
failure line is a complete reproduction recipe.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.faultsim.harness import (
    TORTURE_POOL_CAPACITY,
    TortureWorkload,
    crash_store,
)
from repro.faultsim.plan import CrashSchedule, SimulatedCrash, derive_seed
from repro.ode.store import ObjectStore
from repro.ode.wal import OP_CHECKPOINT, OP_COMMIT, WriteAheadLog
from repro.repl.feed import ReplicationFeed, units_from_wire

#: Probability that a post-commit quiescent point ships-and-applies.
APPLY_PROBABILITY = 0.6

#: Probability that a quiescent point kills the replica (when enabled).
KILL_PROBABILITY = 0.25


class ReplicatedCrashOutcome:
    """What one replicated schedule did — for failure messages."""

    def __init__(self, seed: int, crash_at: int, crashed: bool,
                 kill_replica: bool, replica_kills: int, resynced: bool,
                 survivors_ok: bool, epochs_monotonic: bool,
                 prefix_ok: bool, converged: bool, detail: str):
        self.seed = seed
        self.crash_at = crash_at
        self.crashed = crashed
        self.kill_replica = kill_replica
        self.replica_kills = replica_kills
        self.resynced = resynced
        self.survivors_ok = survivors_ok
        self.epochs_monotonic = epochs_monotonic
        self.prefix_ok = prefix_ok
        self.converged = converged
        self.detail = detail

    @property
    def ok(self) -> bool:
        return (self.survivors_ok and self.epochs_monotonic
                and self.prefix_ok and self.converged)

    def describe(self) -> str:
        return (
            f"replicated schedule seed={self.seed} crash_at={self.crash_at} "
            f"kill_replica={self.kill_replica} crashed={self.crashed} "
            f"replica_kills={self.replica_kills} resynced={self.resynced}\n"
            f"  survivors_ok={self.survivors_ok} "
            f"epochs_monotonic={self.epochs_monotonic} "
            f"prefix_ok={self.prefix_ok} converged={self.converged}\n"
            f"  {self.detail}"
        )


def _state(store: ObjectStore) -> Dict[str, bytes]:
    return {str(oid): store.get(oid) for oid in store.oids()}


def _run_gated_primary(primary_dir: Path, schedule: CrashSchedule,
                       workload: TortureWorkload, on_commit,
                       publish_feed) -> bool:
    """Open the gated primary, wire the feed, run the workload.

    Returns whether the schedule killed the primary.  Isolated in its
    own frame on purpose: :func:`crash_store` scavenges file handles
    from the crash traceback's frame locals, and the caller's frame
    holds the *replica* — which must survive the primary's death.
    """
    primary: Optional[ObjectStore] = None
    try:
        # The gate is armed from the first byte: a schedule can kill
        # the primary inside its own constructor, just like the
        # single-store matrix.
        primary = ObjectStore(primary_dir,
                              pool_capacity=TORTURE_POOL_CAPACITY,
                              fault_gate=schedule)
        publish_feed(ReplicationFeed(primary))
        workload.run(primary, on_commit=on_commit)
        primary.close()
        return False
    except SimulatedCrash as exc:
        crash_store(primary, exc)
        return True


def run_replicated_crash(directory: Union[str, Path], seed: int,
                         crash_at: int, transactions: int = 4,
                         kill_replica: bool = False
                         ) -> ReplicatedCrashOutcome:
    """Run one replicated schedule end to end and model-check it.

    ``directory`` must be fresh; ``crash_at`` indexes the primary's
    gate-call schedule exactly as in
    :func:`repro.faultsim.harness.run_one_crash`.
    """
    directory = Path(directory)
    primary_dir = directory / "primary"
    replica_dir = directory / "replica"
    schedule = CrashSchedule(crash_at, seed)
    workload = TortureWorkload(seed, transactions)
    rng = random.Random(derive_seed(seed, "replication"))

    feed: Optional[ReplicationFeed] = None
    replica = ObjectStore(replica_dir, pool_capacity=TORTURE_POOL_CAPACITY)

    #: Every epoch the replica *published* by streaming, in publish
    #: order, across replica kills (the post-kill reopen must resume
    #: exactly where the durable WAL left it).
    streamed: List[int] = []
    replica.subscribe_commits(lambda epoch, _frames: streamed.append(epoch))
    epoch_high = replica.epoch
    epochs_monotonic = True
    replica_kills = 0
    notes: List[str] = []

    def observe(current: int, where: str) -> None:
        nonlocal epoch_high, epochs_monotonic
        if current < epoch_high:
            epochs_monotonic = False
            notes.append(f"epoch regressed {epoch_high} -> {current} "
                         f"at {where}")
        epoch_high = max(epoch_high, current)

    def catch_up() -> None:
        reply = feed.fetch(replica.epoch, max_units=transactions * 4)
        if reply["resync"]:
            return  # bounded ring outran us; the final catch-up resyncs
        units = units_from_wire(reply["units"])
        if units:
            replica.apply_replicated(units)
        observe(replica.epoch, "apply")

    def on_commit() -> None:
        nonlocal replica, replica_kills
        if kill_replica and rng.random() < KILL_PROBABILITY:
            replica_kills += 1
            before = replica.epoch
            crash_store(replica)
            replica = ObjectStore(replica_dir,
                                  pool_capacity=TORTURE_POOL_CAPACITY)
            replica.subscribe_commits(
                lambda epoch, _frames: streamed.append(epoch))
            observe(replica.epoch, f"replica reopen (was {before})")
        if rng.random() < APPLY_PROBABILITY:
            catch_up()

    def publish_feed(created: ReplicationFeed) -> None:
        nonlocal feed
        feed = created

    crashed = _run_gated_primary(
        primary_dir, schedule, workload, on_commit, publish_feed)

    # The primary's WAL still holds every committed unit of the final
    # window — read the committed epoch sequence out *before* reopening
    # truncates it at a fresh checkpoint.  A head CHECKPOINT record (a
    # clean close, or an open mid-run) vouches for every epoch at or
    # below its stamp: those commits were durable when the log was
    # truncated.
    wal = WriteAheadLog(primary_dir / ObjectStore.WAL_FILE)
    checkpointed = 0
    commits = set()
    for record in wal.records():
        if record.op == OP_CHECKPOINT:
            checkpointed = max(checkpointed, record.epoch)
        elif record.op == OP_COMMIT:
            commits.add(record.epoch)
    wal.close()
    committed_epochs = sorted(set(range(1, checkpointed + 1)) | commits)

    reopened = ObjectStore(primary_dir, pool_capacity=TORTURE_POOL_CAPACITY)
    survivors = _state(reopened)
    acceptable = workload.acceptable_states()
    survivors_ok = any(survivors == state for state in acceptable)
    if not survivors_ok:
        notes.append(f"survivors {sorted(survivors)} match no acceptable "
                     f"state (committed={sorted(acceptable[0])})")

    # Final catch-up: stream if the primary's post-restart WAL window
    # still covers the replica, else install a snapshot.  Either way
    # the replica must land exactly on the primary.
    resynced = False
    units, floor = reopened.replication_units(replica.epoch)
    if floor is not None and replica.epoch >= floor:
        if units:
            replica.apply_replicated(units)
    else:
        resynced = True
        with reopened.snapshot() as snapshot:
            records = [(str(oid), snapshot.get(oid))
                       for oid in snapshot.oids()]
            replica.install_replicated(snapshot.epoch, records)
    observe(replica.epoch, "final catch-up")

    converged = (_state(replica) == survivors
                 and replica.epoch == reopened.epoch)
    if not converged:
        notes.append(
            f"replica epoch {replica.epoch} vs primary {reopened.epoch}; "
            f"replica keys {sorted(_state(replica))} vs {sorted(survivors)}")

    # Contiguity: the streamed epochs must be exactly the primary's
    # committed epochs in (start, last-streamed] — no skip, no invention.
    # Streaming restarts from the durable epoch after a replica kill, so
    # drop exact re-publishes before checking order.
    deduped: List[int] = []
    for epoch in streamed:
        if not deduped or epoch > deduped[-1]:
            deduped.append(epoch)
    prefix_ok = True
    if deduped:
        expected = [epoch for epoch in committed_epochs
                    if deduped[0] <= epoch <= deduped[-1]]
        prefix_ok = deduped == expected
        if not prefix_ok:
            notes.append(f"streamed epochs {deduped} != committed window "
                         f"{expected} (committed={committed_epochs})")

    reopened.close()
    replica.close()
    return ReplicatedCrashOutcome(
        seed=seed, crash_at=crash_at, crashed=crashed,
        kill_replica=kill_replica, replica_kills=replica_kills,
        resynced=resynced, survivors_ok=survivors_ok,
        epochs_monotonic=epochs_monotonic, prefix_ok=prefix_ok,
        converged=converged, detail="; ".join(notes) or "clean")
