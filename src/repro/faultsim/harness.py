"""The crash-recovery torture harness.

One torture *schedule* is: run a seeded transactional workload against a
store whose ``fault_gate`` is armed to crash at exactly gate call ``k``;
throw the dying process's buffered writes away; reopen the directory
with no gate; and model-check the survivors against a shadow dict.  The
invariant is the store's whole durability contract:

* every transaction the workload *committed* (``commit()`` returned) is
  fully visible;
* no transaction the workload never committed is visible at all;
* a crash *inside* ``commit()`` may resolve either way — but must
  resolve to exactly the pre-image or exactly the post-image, never a
  mix;
* the reopened store still works (a fresh put/get round-trips).

Everything is a function of ``(seed, crash_at)``, so the pair printed
with a failure is a complete reproduction recipe.

Crash model: the *process* dies, the operating system survives.  Python
buffered writes that were never flushed are lost; everything the file
objects flushed is durable.  (Gated writes flush through — see
:mod:`repro.ode.pagefile` — so a torn write injected by a gate is on
disk when the crash hits.)  :func:`crash_store` implements the death:
every storage file descriptor is redirected to ``/dev/null`` *before*
the handles are closed, so close-time and GC-time flushes of unflushed
buffers go nowhere, exactly as if the process had been killed.
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.faultsim.plan import (
    CountingGate,
    CrashSchedule,
    SimulatedCrash,
    derive_seed,
)
from repro.ode.codec import encode_object
from repro.ode.oid import Oid
from repro.ode.page import MAX_RECORD_SIZE
from repro.ode.pagefile import PageFile
from repro.ode.store import ObjectStore
from repro.ode.wal import WriteAheadLog

#: Pool small enough that a multi-object transaction evicts dirty pages
#: mid-apply — the schedules that tear the store's write-back ordering.
TORTURE_POOL_CAPACITY = 8


# -- simulated process death -------------------------------------------------------


def _file_handles(obj: object) -> List[object]:
    """The open storage file objects hiding inside a storage object."""
    handles = []
    if isinstance(obj, ObjectStore):
        handles += _file_handles(obj._pagefile)
        handles += _file_handles(obj._wal)
    elif isinstance(obj, PageFile):
        handles += [obj._fh, obj._journal]
    elif isinstance(obj, WriteAheadLog):
        handles += [obj._fh]
    return [fh for fh in handles if fh is not None and not fh.closed]


def _discard_handles(handles: List[object]) -> None:
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        for fh in handles:
            try:
                os.dup2(devnull, fh.fileno())
            except (OSError, ValueError):
                pass
        for fh in handles:
            try:
                fh.close()
            except (OSError, ValueError):
                pass
    finally:
        os.close(devnull)


def crash_store(store: Optional[ObjectStore],
                exc: Optional[BaseException] = None) -> None:
    """Kill a store the way ``kill -9`` would.

    Unflushed buffered data is dropped (the handles are pointed at
    ``/dev/null`` before closing), flushed data stays.  ``exc`` — the
    :class:`SimulatedCrash` that escaped — lets the harness also reach
    storage objects from a store that died *inside its constructor*,
    before the caller ever got a reference: the traceback frames still
    hold them.
    """
    handles = _file_handles(store) if store is not None else []
    tb = exc.__traceback__ if exc is not None else None
    while tb is not None:
        for value in list(tb.tb_frame.f_locals.values()):
            for fh in _file_handles(value):
                if fh not in handles:
                    handles.append(fh)
        tb = tb.tb_next
    _discard_handles(handles)


# -- the workload ------------------------------------------------------------------


class TortureWorkload:
    """A seeded sequence of transactions plus its shadow model.

    Each transaction is a random mix of inserts, overwrites and deletes
    (one transaction carries a fragment-chain-sized payload, so the
    multi-page paths are always on the schedule).  The shadow state
    tracks what *must* be on disk:

    * :attr:`committed` — the image after the last ``commit()`` that
      returned;
    * :attr:`pending` / :attr:`in_commit` — while ``commit()`` is
      executing, the image it is trying to make durable; a crash in
      that window may legally land on either.
    """

    DATABASE = "torture"

    #: Cluster-name prefix for generated OIDs.  A second workload aimed
    #: at the *same* store must override this (not just ``DATABASE``):
    #: a store hosts one database, so its cluster membership is keyed by
    #: ``(cluster, number)`` alone — two workloads sharing cluster names
    #: would collide there even with distinct database prefixes.
    CLUSTER_PREFIX = "c"

    def __init__(self, seed: int, transactions: int = 4):
        self.seed = seed
        self.transactions = transactions
        self.committed: Dict[str, bytes] = {}
        self.pending: Optional[Dict[str, bytes]] = None
        self.in_commit = False

    # The op mix: mostly small records, one oversized record (fragment
    # chain), deletes and overwrites once there is something to hit.
    def _plan_transaction(self, rng: random.Random, index: int,
                          state: Dict[str, bytes]) -> List[Tuple[str, str, bytes]]:
        ops: List[Tuple[str, str, bytes]] = []
        for op_index in range(rng.randint(1, 3)):
            live = sorted(state)
            roll = rng.random()
            if live and roll < 0.25:
                oid = rng.choice(live)
                del state[oid]
                ops.append(("delete", oid, b""))
                continue
            if live and roll < 0.45:
                oid = rng.choice(live)
            else:
                oid = str(Oid(self.DATABASE,
                              f"{self.CLUSTER_PREFIX}{rng.randrange(2)}",
                              index * 10 + op_index))
            if index == self.transactions // 2 and op_index == 0:
                size = MAX_RECORD_SIZE * 2 + rng.randint(1, 64)
            else:
                size = rng.randint(8, 96)
            # Records must be self-describing: the page scan at reopen
            # decodes every unfragmented record as an object.
            payload = encode_object(
                Oid.parse(oid), "TortureRecord",
                {"data": bytes(rng.randrange(256) for _ in range(size))})
            state[oid] = payload
            ops.append(("put", oid, payload))
        return ops

    def run(self, store: ObjectStore,
            on_commit: Optional[Callable[[], None]] = None) -> None:
        """Run every transaction; a gate's SimulatedCrash flies through.

        ``on_commit`` runs after each successful commit, outside any
        transaction — the replication torture harness uses it to ship
        and apply units (and kill replicas) at quiescent points, where
        a replica-side :class:`SimulatedCrash` cannot be mistaken for a
        primary commit failure.
        """
        rng = random.Random(derive_seed(self.seed, "workload"))
        for index in range(self.transactions):
            next_state = dict(self.committed)
            ops = self._plan_transaction(rng, index, next_state)
            store.begin()
            for op, oid, payload in ops:
                if op == "put":
                    store.put(Oid.parse(oid), payload)
                else:
                    store.delete(Oid.parse(oid))
            self.pending = next_state
            self.in_commit = True
            store.commit()
            self.committed = next_state
            self.in_commit = False
            self.pending = None
            if on_commit is not None:
                on_commit()

    def acceptable_states(self) -> List[Dict[str, bytes]]:
        states = [self.committed]
        if self.in_commit and self.pending is not None:
            states.append(self.pending)
        return states


# -- running schedules -------------------------------------------------------------


def enumerate_gate_calls(directory: Union[str, Path], seed: int,
                         transactions: int = 4) -> List[str]:
    """Pass 1: run the workload uninjured and list every gate crossing.

    The returned list *is* the schedule space: crash point ``k`` of
    :func:`run_one_crash` is its ``k``-th entry, and its set of distinct
    sites is what the coverage test compares against the registry.
    """
    gate = CountingGate()
    store = ObjectStore(directory, pool_capacity=TORTURE_POOL_CAPACITY,
                        fault_gate=gate)
    TortureWorkload(seed, transactions).run(store)
    store.close()
    return gate.calls


class CrashOutcome:
    """What one ``(seed, crash_at)`` schedule did — for failure messages."""

    def __init__(self, seed: int, crash_at: int, crashed: bool,
                 fired: Optional[Tuple[str, int, str]],
                 in_commit: bool, survivors: Dict[str, bytes],
                 acceptable: List[Dict[str, bytes]]):
        self.seed = seed
        self.crash_at = crash_at
        self.crashed = crashed
        self.fired = fired
        self.in_commit = in_commit
        self.survivors = survivors
        self.acceptable = acceptable

    @property
    def state_ok(self) -> bool:
        return any(self.survivors == state for state in self.acceptable)

    def describe(self) -> str:
        site = self.fired[0] if self.fired else "-"
        flavor = self.fired[2] if self.fired else "-"
        lines = [
            f"schedule seed={self.seed} crash_at={self.crash_at} "
            f"site={site} flavor={flavor} in_commit={self.in_commit}",
            f"  survivors: {sorted(self.survivors)}",
        ]
        for index, state in enumerate(self.acceptable):
            label = "committed" if index == 0 else "pending"
            extra = sorted(set(self.survivors) - set(state))
            missing = sorted(set(state) - set(self.survivors))
            wrong = sorted(oid for oid in set(state) & set(self.survivors)
                           if state[oid] != self.survivors[oid])
            lines.append(f"  vs {label}: missing={missing} "
                         f"extra={extra} wrong-bytes={wrong}")
        return "\n".join(lines)


def run_one_crash(directory: Union[str, Path], seed: int, crash_at: int,
                  transactions: int = 4) -> CrashOutcome:
    """Run one schedule end to end and model-check the reopened store.

    ``directory`` must be fresh.  Reproduce any failure with the same
    ``(seed, crash_at)`` pair against a fresh directory.
    """
    schedule = CrashSchedule(crash_at, seed)
    workload = TortureWorkload(seed, transactions)
    store: Optional[ObjectStore] = None
    crashed = False
    try:
        store = ObjectStore(directory, pool_capacity=TORTURE_POOL_CAPACITY,
                            fault_gate=schedule)
        workload.run(store)
        store.close()
    except SimulatedCrash as exc:
        crashed = True
        crash_store(store, exc)
    reopened = ObjectStore(directory, pool_capacity=TORTURE_POOL_CAPACITY)
    try:
        survivors = {str(oid): reopened.get(oid) for oid in reopened.oids()}
        # The reopened store must not just look right — it must work.
        probe = Oid(TortureWorkload.DATABASE, "probe", 0)
        reopened.put(probe, b"alive")
        if reopened.get(probe) != b"alive":
            raise AssertionError(
                f"reopened store broke on a fresh put/get "
                f"(seed={seed} crash_at={crash_at})")
        reopened.delete(probe)
    finally:
        reopened.close()
    return CrashOutcome(
        seed=seed, crash_at=crash_at, crashed=crashed,
        fired=schedule.fired, in_commit=workload.in_commit,
        survivors=survivors, acceptable=workload.acceptable_states())
