"""FaultProxy: a hostile network between OdeClient and OdeServer.

The proxy listens on its own port and relays every accepted connection
to the real server, pushing each chunk of traffic through a
:class:`~repro.faultsim.plan.FaultPlan` decision
(:data:`~repro.faultsim.sites.PROXY_ACTIONS`):

* ``forward`` — relay the chunk unchanged;
* ``delay`` — sleep a plan-drawn interval first (tickles client
  timeouts and the server's idle polling);
* ``split`` — relay the chunk in two writes with a pause between them
  (frames arrive torn across reads);
* ``corrupt`` — flip one plan-chosen byte (the frame CRC must catch
  it);
* ``duplicate`` — relay the chunk twice (the reply stream desyncs; the
  client must kill the connection, never mis-pair replies);
* ``drop`` — close both sides mid-stream (the client sees a dead
  connection, maybe mid-frame).

Each direction of each connection draws from its own
:meth:`~repro.faultsim.plan.FaultPlan.fork`, so the decision sequence
for ``conn N`` is a pure function of the root seed regardless of thread
interleaving.  (Chunk *boundaries* come from TCP and are only mostly
stable — the plan pins every choice the proxy makes, which in practice
reproduces failures from the printed seed.)

The proxy corrupts *transport*, never meaning: every byte delivered is
a byte the server (or client) really sent, possibly reordered only by
duplication.  What the torture test asserts on top is the client
contract — correct data or a typed :class:`~repro.errors.OdeError`,
never silently wrong data and never a hang.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional

from repro.faultsim.plan import FaultPlan
from repro.faultsim.sites import PROXY_ACTIONS

#: recv size for the relay pumps.
_CHUNK = 4096

#: Cap on a single accept/poll wait, so stop() is prompt.
_POLL_SECONDS = 0.2


class FaultProxy:
    """A TCP relay that injects faults according to a plan."""

    def __init__(self, upstream_host: str, upstream_port: int,
                 plan: FaultPlan, host: str = "127.0.0.1",
                 max_delay: float = 0.05, action_weights=PROXY_ACTIONS):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.max_delay = max_delay
        #: Weighted actions drawn per chunk — override to bias a run
        #: (e.g. ``(("forward", 1.0),)`` turns the proxy into a relay).
        self.action_weights = tuple(action_weights)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pumps: List[threading.Thread] = []
        self._sockets: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._connections = 0
        #: (connection, direction, action) log — for failure messages.
        self.actions: List[tuple] = []

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "FaultProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        listener.settimeout(_POLL_SECONDS)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True)
        self._accept_thread.start()
        return self

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("proxy not started")
        return self._listener.getsockname()[1]

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            self._close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            pumps = list(self._pumps)
        for pump in pumps:
            pump.join(timeout=5.0)
        self._listener = None
        self._accept_thread = None

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- relay -------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                downstream, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0)
            except OSError:
                self._close(downstream)
                continue
            conn = self._connections
            self._connections += 1
            with self._lock:
                self._sockets += [downstream, upstream]
            for src, dst, direction in (
                    (downstream, upstream, "c2s"),
                    (upstream, downstream, "s2c")):
                pump = threading.Thread(
                    target=self._pump,
                    args=(src, dst, self.plan.fork(f"conn{conn}/{direction}"),
                          conn, direction),
                    name=f"fault-proxy-{conn}-{direction}", daemon=True)
                with self._lock:
                    self._pumps = [t for t in self._pumps if t.is_alive()]
                    self._pumps.append(pump)
                pump.start()

    def _pump(self, src: socket.socket, dst: socket.socket,
              plan: FaultPlan, conn: int, direction: str) -> None:
        label = f"proxy.{direction}"
        try:
            # Inside the guard: the partner pump may have torn both
            # sockets down before this thread ever ran.
            try:
                src.settimeout(_POLL_SECONDS)
            except OSError:
                return
            while not self._stopping.is_set():
                try:
                    chunk = src.recv(_CHUNK)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not chunk:
                    break
                action = plan.choose(label, self.action_weights)
                self.actions.append((conn, direction, action))
                if action == "drop":
                    break
                if action == "delay":
                    time.sleep(plan.uniform(label, 0.0, self.max_delay))
                elif action == "corrupt":
                    index = plan.randrange(label, len(chunk))
                    flip = 1 + plan.randrange(label, 255)
                    chunk = (chunk[:index]
                             + bytes([chunk[index] ^ flip])
                             + chunk[index + 1:])
                elif action == "duplicate":
                    chunk = chunk + chunk
                try:
                    if action == "split" and len(chunk) > 1:
                        cut = 1 + plan.randrange(label, len(chunk) - 1)
                        dst.sendall(chunk[:cut])
                        time.sleep(plan.uniform(label, 0.0,
                                                self.max_delay / 4))
                        dst.sendall(chunk[cut:])
                    else:
                        dst.sendall(chunk)
                except OSError:
                    break
        finally:
            # Half a relay is no relay: kill both directions together.
            self._close(src)
            self._close(dst)

    @staticmethod
    def _close(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass
