"""The registry of named fault-injection sites.

Each site is one place where :mod:`repro.ode` consults its optional
``fault_gate`` before touching stable storage.  The names here must
match the string literals passed to ``_fault_gate(...)`` in the source
— ``tests/faultsim/test_sites.py`` scans the modules and asserts the
two sets are identical, so a new write/sync point cannot be added
without showing up in the torture runner's coverage.

Site naming: ``<module>.<operation>`` (plus a qualifier for sites that
exist inside one operation, e.g. ``store.commit.apply``).
"""

from __future__ import annotations

#: Sites inside :class:`repro.ode.pagefile.PageFile`.  ``journal.*``
#: guard the double-write journal that makes page writes atomic; a
#: fault there must never damage the main file (no page is overwritten
#: until its journal image is durable).
PAGEFILE_SITES = (
    "pagefile.journal.write",
    "pagefile.journal.sync",
    "pagefile.write_page",
    "pagefile.sync",
)

#: Sites inside :class:`repro.ode.wal.WriteAheadLog`.  ``wal.append``
#: is crossed by single-record appends *and* by a group-commit batch —
#: the batch's COMMIT frames arrive as one blob, so a torn write cuts
#: the batch at an arbitrary byte and recovery keeps the intact frame
#: prefix.  ``wal.group.sync`` is the one fsync that makes a whole
#: batch durable: a crash before it loses every commit in the batch
#: atomically (none was acknowledged), a crash after it loses none.
#: ``wal.sync`` remains the checkpoint/recovery sync.
WAL_SITES = (
    "wal.append",
    "wal.sync",
    "wal.group.sync",
)

#: Pure crash points inside :class:`repro.ode.store.ObjectStore`'s
#: commit-finish sequence, crossed by the group-commit leader after the
#: batch fsync, once per commit in epoch order: after the commit record
#: is durable but before the pages are touched (``apply``); after the
#: pages are applied but before the secondary indexes absorb the
#: commit's effects (``index`` — a crash here reopens with indexes
#: rebuilt from the recovered base data, so index and cluster must
#: agree exactly); after the index apply but before the commit epoch is
#: published to snapshot readers (``publish`` — a crash here must not
#: let the epoch regress or expose a half-applied transaction on
#: reopen); and after publication but before the log is eventually
#: truncated (``checkpoint``).  All four sit *after* durability, so a
#: crash at any of them redoes the whole transaction from the log on
#: reopen.
STORE_SITES = (
    "store.commit.apply",
    "store.commit.index",
    "store.commit.publish",
    "store.commit.checkpoint",
)

#: Every storage-side injection site, in gate-crossing order within one
#: commit.  The crash-recovery torture runner must cover all of these.
STORAGE_SITES = PAGEFILE_SITES + WAL_SITES + STORE_SITES

#: Actions the :class:`~repro.faultsim.proxy.FaultProxy` can take on a
#: chunk of wire traffic, with default weights.  ``forward`` is the
#: no-fault action; the rest model a hostile network.
PROXY_ACTIONS = (
    ("forward", 0.70),
    ("delay", 0.08),
    ("split", 0.08),
    ("corrupt", 0.05),
    ("duplicate", 0.04),
    ("drop", 0.05),
)
