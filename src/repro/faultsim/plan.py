"""Fault plans and gate callables.

The storage layer's hook contract (documented in
:mod:`repro.ode.pagefile` / :mod:`repro.ode.wal`) is one callable::

    fault_gate(site: str, data: bytes | None, default: callable) -> Any

``site`` names the injection point (see :mod:`repro.faultsim.sites`),
``data`` carries the bytes about to be written (``None`` at sync and
pure crash points), and ``default`` is the real operation — it takes
the (possibly shortened or mutated) bytes at write sites and no
arguments elsewhere.  A gate that calls ``default`` unchanged is
invisible; a gate may also

* call ``default`` with a **prefix** of ``data`` and then raise
  :class:`SimulatedCrash` — a torn write;
* skip ``default`` and raise :class:`SimulatedCrash` — the write (or
  the fsync) never happened;
* skip ``default`` and return — an fsync that *lied*;
* raise :class:`~repro.errors.FaultInjectedError` — a device error the
  caller is expected to survive.

Everything here is a deterministic function of its seed: rerunning a
gate against the same call sequence injects the same fault at the same
byte, which is what makes a printed ``seed``/``crash_at`` pair a full
reproduction recipe.

:class:`SimulatedCrash` deliberately derives from :class:`BaseException`:
a crash must behave like the process dying, so no ``except Exception``
recovery/abort handler in the code under test may observe it.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectedError


class SimulatedCrash(BaseException):
    """The simulated process death injected by a fault gate."""

    def __init__(self, site: str, step: int, flavor: str):
        self.site = site
        self.step = step
        self.flavor = flavor
        super().__init__(f"simulated crash at {site} (call {step}, {flavor})")


def derive_seed(seed: int, *labels: object) -> int:
    """A stable child seed for (seed, labels) — no global RNG involved."""
    text = ":".join([str(seed)] + [str(label) for label in labels])
    return zlib.crc32(text.encode("utf-8")) ^ (seed & 0xFFFFFFFF)


def _proceed(data: Optional[bytes], default: Callable) -> Any:
    return default() if data is None else default(data)


class FaultPlan:
    """A seeded RNG plus a step counter — the root of every schedule.

    All randomness in a torture run flows through a plan (or a
    :meth:`fork` of one), and every decision is recorded in
    :attr:`trace`, so a failing run can be replayed and inspected from
    its seed alone.
    """

    def __init__(self, seed: int, name: str = "plan"):
        self.seed = seed
        self.name = name
        self.step = 0
        self.trace: List[Tuple[int, str, str]] = []
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "FaultPlan":
        """An independent deterministic sub-plan (e.g. one per stream)."""
        return FaultPlan(derive_seed(self.seed, label),
                         name=f"{self.name}/{label}")

    def _record(self, site: str, outcome: str) -> None:
        self.trace.append((self.step, site, outcome))
        self.step += 1

    def choose(self, site: str,
               weighted: Sequence[Tuple[str, float]]) -> str:
        """Pick one weighted action name; recorded in the trace."""
        names = [name for name, _weight in weighted]
        weights = [weight for _name, weight in weighted]
        action = self._rng.choices(names, weights=weights, k=1)[0]
        self._record(site, action)
        return action

    def uniform(self, site: str, low: float, high: float) -> float:
        value = self._rng.uniform(low, high)
        self._record(site, f"uniform={value:.6f}")
        return value

    def randrange(self, site: str, stop: int) -> int:
        value = self._rng.randrange(stop)
        self._record(site, f"randrange={value}")
        return value

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, name={self.name!r}, step={self.step})"


class CountingGate:
    """A gate that faults nothing and records every site crossing.

    Pass one of these first: its :attr:`calls` list enumerates the
    schedule space (crash point ``k`` = the k-th entry), and its site
    set is what the coverage assertion compares against the registry.
    """

    def __init__(self) -> None:
        self.calls: List[str] = []

    def __call__(self, site: str, data: Optional[bytes],
                 default: Callable) -> Any:
        self.calls.append(site)
        return _proceed(data, default)


#: Crash flavors applicable to a write site / to a data-less site.
WRITE_FLAVORS = ("torn", "lost", "crash")
PURE_FLAVORS = ("crash",)


class CrashSchedule:
    """Crash at exactly gate call ``crash_at``, with a seeded flavor.

    * ``torn`` — a prefix of the bytes lands, then the crash;
    * ``lost`` — the write is dropped whole, then the crash;
    * ``crash`` — the operation never starts.

    The flavor and (for ``torn``) the cut point are drawn from
    ``seed``, so ``(seed, crash_at)`` fully reproduces the schedule.
    ``fired`` records what was injected, for failure messages.
    """

    def __init__(self, crash_at: int, seed: int):
        self.crash_at = crash_at
        self.seed = seed
        self.calls = 0
        self.fired: Optional[Tuple[str, int, str]] = None
        self._rng = random.Random(derive_seed(seed, "crash", crash_at))

    def __call__(self, site: str, data: Optional[bytes],
                 default: Callable) -> Any:
        index = self.calls
        self.calls += 1
        if index != self.crash_at:
            return _proceed(data, default)
        if data is None:
            flavor = "crash"
        else:
            flavor = self._rng.choice(WRITE_FLAVORS)
            if flavor == "torn" and len(data) > 1:
                default(data[:self._rng.randrange(1, len(data))])
        self.fired = (site, index, flavor)
        raise SimulatedCrash(site, index, flavor)


class SiteCrash:
    """A hand-aimed schedule: crash at the n-th crossing of one site.

    ``cut`` (write sites only) pins the torn-write length instead of
    drawing it from a seed — this is how the legacy hand-rolled torn
    WAL cases are expressed as schedules.  ``flavor`` is one of
    ``torn``/``lost``/``crash`` (``torn`` needs ``cut``).
    """

    def __init__(self, site: str, occurrence: int = 0,
                 flavor: str = "crash", cut: Optional[int] = None):
        if flavor == "torn" and cut is None:
            raise ValueError("flavor='torn' needs an explicit cut")
        self.site = site
        self.occurrence = occurrence
        self.flavor = flavor
        self.cut = cut
        self.seen = 0
        self.calls = 0
        self.fired: Optional[Tuple[str, int, str]] = None

    def __call__(self, site: str, data: Optional[bytes],
                 default: Callable) -> Any:
        index = self.calls
        self.calls += 1
        if site != self.site:
            return _proceed(data, default)
        occurrence = self.seen
        self.seen += 1
        if occurrence != self.occurrence:
            return _proceed(data, default)
        if self.flavor == "torn" and data is not None:
            default(data[:max(0, min(self.cut, len(data) - 1))])
        elif self.flavor not in ("lost", "crash", "torn"):
            raise ValueError(f"unknown flavor {self.flavor!r}")
        self.fired = (site, index, self.flavor)
        raise SimulatedCrash(site, index, self.flavor)


class RandomFaultGate:
    """Inject transient :class:`~repro.errors.FaultInjectedError`\\ s.

    Each gate crossing fails with probability ``rate`` (drawn from the
    plan's RNG, so the schedule is seed-deterministic).  Unlike a
    crash, a transient fault leaves the process running: the store is
    expected to surface a typed error, roll back cleanly, and keep
    serving — which is exactly what the error-injection torture mode
    asserts.  ``budget`` bounds the number of injections (``None`` =
    unlimited).
    """

    def __init__(self, plan: FaultPlan, rate: float = 0.05,
                 budget: Optional[int] = None):
        self.plan = plan
        self.rate = rate
        self.budget = budget
        self.injected: List[Tuple[int, str]] = []

    def __call__(self, site: str, data: Optional[bytes],
                 default: Callable) -> Any:
        exhausted = self.budget is not None and len(self.injected) >= self.budget
        roll = self.plan.uniform(site, 0.0, 1.0)
        if not exhausted and roll < self.rate:
            self.injected.append((self.plan.step - 1, site))
            raise FaultInjectedError(
                f"injected I/O failure at {site} "
                f"(step {self.plan.step - 1}, seed {self.plan.seed})")
        return _proceed(data, default)
