"""WAL-shipping replication: primary feed, replica apply loop.

The group-commit barrier already emits commits as epoch-ordered,
batch-atomic WAL blobs (PR 5); this package turns that stream into read
replicas.  A :class:`~repro.repl.feed.ReplicationFeed` on the primary
buffers finished commits for long-polling fetchers and falls back to
the WAL tail for stragglers; a :class:`~repro.repl.replica.ReplicaApplier`
on each replica pulls units over the ordinary wire protocol and applies
them with :meth:`~repro.ode.store.ObjectStore.apply_replicated`,
publishing the primary's epochs to local snapshot readers.

The invariant the whole design hangs on: a replica's applied epochs are
always a contiguous prefix of the primary's committed epochs.  Shipping
happens strictly after durability *and* publication on the primary, the
apply path persists units to the replica's own WAL before touching
pages, and any gap the feed cannot bridge (ring evicted + WAL
checkpointed past the replica) forces a full snapshot resync instead of
a silent hole.

Failover (:mod:`repro.repl.promote`): a replica can be promoted to
primary — controlled, or crash-forced with the dead primary's durable
WAL tail salvaged first — under a *fenced term* durably minted at
promotion.  Cluster progress is ordered by ``(term, epoch)``; a
resurrected old primary's lower term is rejected everywhere
(:class:`~repro.errors.StalePrimaryError`) instead of split-braining.
"""

from repro.repl.feed import ReplicationFeed, units_from_wire, units_to_wire
from repro.repl.promote import (
    PromotionResult,
    find_primary,
    promote_store,
    salvage_units,
)
from repro.repl.replica import ReplicaApplier, bootstrap_replica

__all__ = [
    "ReplicationFeed",
    "ReplicaApplier",
    "PromotionResult",
    "bootstrap_replica",
    "find_primary",
    "promote_store",
    "salvage_units",
    "units_from_wire",
    "units_to_wire",
]
