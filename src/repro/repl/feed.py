"""The primary side of WAL shipping: a bounded feed of committed units.

A *unit* is one committed transaction's WAL frame sequence (BEGIN, the
ops, COMMIT) tagged with the epoch it was published at — exactly what
:meth:`~repro.ode.wal.GroupCommit` hands its subscribers once a commit
is durable and visible.  The feed keeps the most recent units in a ring
so fetchers normally never touch the log, and answers three regimes:

ring
    ``after_epoch`` at or past the ring floor: serve buffered units,
    long-polling when the fetcher is already caught up.
log tail
    ``after_epoch`` below the ring floor but at or past the WAL's head
    checkpoint: re-read whole committed units from the log
    (:meth:`~repro.ode.wal.WriteAheadLog.committed_units`).
resync
    the WAL has been checkpointed past ``after_epoch``; the gap is
    unbridgeable and the fetcher must take a full snapshot.

The ring floor only ever rises (eviction, checkpoint), so a fetcher
that was streamable can become resync-only but never the reverse —
which is what makes "units are a contiguous extension of your epoch"
a safe reply contract.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import NetworkError
from repro.obs import get_registry
from repro.ode.store import ObjectStore
from repro.ode.wal import WalRecord

Unit = Tuple[int, List[WalRecord]]

#: Long-poll waits are capped server-side so a dead fetcher cannot park
#: a session thread forever.
MAX_WAIT_SECONDS = 2.0


def units_to_wire(units: List[Unit]) -> List[List[Any]]:
    """Flatten units into codec-friendly lists for a wire reply."""
    return [
        [epoch, [[r.op, r.txid, r.oid, r.payload, r.epoch, r.term]
                 for r in frames]]
        for epoch, frames in units
    ]


def units_from_wire(wire: List[List[Any]]) -> List[Unit]:
    """Inverse of :func:`units_to_wire`.

    Accepts the pre-term 5-element frame shape too (term defaults to 0,
    which the store treats as term 1), so a new replica can follow an
    old primary mid-upgrade.
    """
    return [
        (epoch, [WalRecord(op=frame[0], txid=frame[1], oid=frame[2],
                           payload=frame[3], epoch=frame[4],
                           term=frame[5] if len(frame) > 5 else 0)
                 for frame in frames])
        for epoch, frames in wire
    ]


class ReplicationFeed:
    """Buffers a store's committed units for replica fetchers.

    Subscribes to every published commit — local writers via the
    group-commit barrier and (on a chained replica) replicated applies —
    so the ring is filled on both paths.  All state lives behind one
    condition variable; `fetch` is safe from any number of session
    threads.
    """

    def __init__(self, store: ObjectStore, capacity: int = 256):
        self._store = store
        self._capacity = capacity
        self._cond = threading.Condition()
        self._ring: deque = deque()
        self._closed = False
        self._waiters: List[Callable[[], None]] = []
        # Epochs in the ring are exactly (floor, store tail]; starts at
        # the store's current epoch because nothing older was observed.
        self._floor = store.epoch
        self._m_fetches = get_registry().counter("repl.feed.fetches")
        self._m_log_reads = get_registry().counter("repl.feed.log_reads")
        self._m_resyncs = get_registry().counter("repl.feed.resyncs")
        # One bound-method object, kept: the store unsubscribes by
        # identity, and each ``self._on_commit`` access mints a fresh one.
        self._listener = self._on_commit
        store.subscribe_commits(self._listener)

    @property
    def floor(self) -> int:
        """Oldest epoch the ring can extend from."""
        with self._cond:
            return self._floor

    def _on_commit(self, epoch: int, frames: List[WalRecord]) -> None:
        with self._cond:
            self._ring.append((epoch, frames))
            while len(self._ring) > self._capacity:
                evicted_epoch, _frames = self._ring.popleft()
                self._floor = evicted_epoch
            self._cond.notify_all()
        self._fire_waiters()

    # -- loop-native wakeups -----------------------------------------------------

    def add_waiter(self, notify: Callable[[], None]) -> None:
        """Register a one-shot-style wakeup hook for loop-native fetchers.

        The callback fires (on the committer's thread) after every new
        unit and when the feed closes; exceptions are swallowed so a
        broken waiter never stalls a commit.  The event-loop server uses
        this instead of parking a thread in the long poll.
        """
        with self._cond:
            self._waiters.append(notify)

    def remove_waiter(self, notify: Callable[[], None]) -> None:
        with self._cond:
            try:
                self._waiters.remove(notify)
            except ValueError:
                pass

    def _fire_waiters(self) -> None:
        with self._cond:
            waiters = list(self._waiters)
        for notify in waiters:
            try:
                notify()
            except Exception:
                get_registry().counter("repl.feed.notify_errors").inc()

    def close(self) -> None:
        """Shut the feed down: detach from the store and wake everyone.

        Long-pollers parked in :meth:`fetch` are released immediately
        and observe the closed flag — they get a clean
        :class:`~repro.errors.NetworkError`, not a silent park past the
        server's drain deadline.
        """
        unsubscribe = getattr(self._store, "unsubscribe_commits", None)
        if callable(unsubscribe):
            try:
                unsubscribe(self._listener)
            except Exception:
                pass
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._fire_waiters()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def fetch(self, after_epoch: int, max_units: int = 64,
              wait_seconds: float = 0.0) -> Dict[str, Any]:
        """Units extending ``after_epoch``, or a resync order.

        Returns ``{"units": [...], "epoch": <primary epoch>,
        "term": <primary term>, "resync": bool}``.  When ``resync`` is
        true the fetcher's epoch predates everything the primary can
        stream and it must install a snapshot.  ``term`` lets a fetcher
        detect a superseded upstream (term below its own) or a term
        raise it must resync under — streaming across a promotion could
        silently skip same-epoch divergence.  ``units`` (wire form) are guaranteed to be *every*
        committed epoch in ``(after_epoch, last unit]``, in order — the
        contiguity the replica's apply path insists on.

        No missed-wakeup window in the long poll: the emptiness check
        and the ``wait`` both run under ``self._cond``, and
        ``_on_commit`` appends and notifies under the same condition —
        a commit therefore either lands before the check (and is seen)
        or blocks on the lock until the waiter is parked (and wakes
        it).  ``tests/repl/test_feed_wakeup.py`` pins this down.
        """
        self._m_fetches.inc()
        wait_seconds = min(max(wait_seconds, 0.0), MAX_WAIT_SECONDS)
        with self._cond:
            if self._closed:
                raise NetworkError("replication feed closed")
            if after_epoch >= self._floor:
                units = [u for u in self._ring if u[0] > after_epoch]
                if not units and wait_seconds > 0.0:
                    self._cond.wait(wait_seconds)
                    if self._closed:
                        raise NetworkError("replication feed closed")
                    units = [u for u in self._ring if u[0] > after_epoch]
                return {
                    "units": units_to_wire(units[:max_units]),
                    "epoch": self._store.epoch,
                    "term": self._store.term,
                    "resync": False,
                }
        # Ring can't reach back that far; try the WAL tail.  Outside
        # the feed lock — log reads must not block commit notification.
        self._m_log_reads.inc()
        units, wal_floor = self._store.replication_units(after_epoch)
        if wal_floor is not None and after_epoch >= wal_floor:
            return {
                "units": units_to_wire(units[:max_units]),
                "epoch": self._store.epoch,
                "term": self._store.term,
                "resync": False,
            }
        self._m_resyncs.inc()
        return {"units": [], "epoch": self._store.epoch,
                "term": self._store.term, "resync": True}

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "floor": self._floor,
                "buffered": len(self._ring),
                "capacity": self._capacity,
                "fetches": self._m_fetches.value,
                "log_reads": self._m_log_reads.value,
                "resyncs": self._m_resyncs.value,
            }
