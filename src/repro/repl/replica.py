"""The replica side of WAL shipping: bootstrap and the apply loop.

A replica is an ordinary server process whose databases are clones of a
primary's, kept current by one :class:`ReplicaApplier` thread per
database.  The applier long-polls the primary's replication feed over
the normal wire protocol (``OP_REPL_FETCH``), applies each batch of
committed units with :meth:`~repro.ode.store.ObjectStore.apply_replicated`
— WAL-first, epoch-ordered, idempotent — and falls back to a full
snapshot install (``OP_REPL_SNAPSHOT`` →
:meth:`~repro.ode.store.ObjectStore.install_replicated`) when the
primary reports the gap unbridgeable.

The applier is deliberately pull-based: the primary keeps no per-replica
state beyond the feed ring, a replica that dies simply stops fetching,
and catch-up after a restart is the same code path as steady state
(fetch from my epoch).  ``pause``/``resume`` exist so tests can hold a
replica at a known lag.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import NetworkError, OdeError, StalePrimaryError
from repro.net import protocol as P
from repro.net.client import OdeClient
from repro.obs import get_registry
from repro.ode.database import (
    CATALOG_FILE,
    DISPLAY_DIR,
    ICON_FILE,
    INDEXES_FILE,
    Database,
)
from repro.repl.feed import units_from_wire

#: How long one fetch parks on the primary waiting for fresh commits.
DEFAULT_POLL_SECONDS = 0.5

#: Units requested per fetch; bounds the size of one apply batch.
FETCH_BATCH = 64

#: Initial backoff after the primary is unreachable; doubles per
#: consecutive failure (capped) so a long primary outage costs a
#: handful of reconnect attempts, not a steady 4 Hz retry hammer.
RECONNECT_BACKOFF_SECONDS = 0.25

#: Ceiling for the exponential reconnect backoff.
MAX_RECONNECT_BACKOFF_SECONDS = 5.0


def bootstrap_replica(root: Union[str, Path], name: str,
                      client: OdeClient) -> None:
    """Clone database *name* from the primary into *root*.

    Writes the catalog (schema), icon and display modules, then installs
    the primary's object snapshot at its epoch, so the first fetch the
    applier issues streams from there.  The directory must not already
    hold a database.
    """
    reply = client.call(P.OP_REPL_SNAPSHOT, {"db": name})
    directory = Path(root) / f"{name}.odb"
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / CATALOG_FILE, "w", encoding="utf-8") as fh:
        json.dump(reply["schema"], fh, indent=2, sort_keys=True)
    (directory / ICON_FILE).write_text(reply["icon"], encoding="utf-8")
    display_dir = directory / DISPLAY_DIR
    display_dir.mkdir(exist_ok=True)
    for filename, source in reply["modules"].items():
        (display_dir / filename).write_text(source, encoding="utf-8")
    # The primary's index definitions, written BEFORE the open: the
    # open builds these indexes, and the applier's commit-driven
    # maintenance keeps them current at the primary's epochs — so a
    # replica-local probe answers exactly like the primary's.
    definitions = [[str(c), str(a)] for c, a in reply.get("indexes", [])]
    if definitions:
        with open(directory / INDEXES_FILE, "w", encoding="utf-8") as fh:
            json.dump(definitions, fh, indent=2)
    database = Database.open(directory)
    try:
        database.store.install_replicated(
            reply["epoch"],
            [(text, payload) for text, payload in reply["objects"]],
            term=reply.get("term"))
    finally:
        database.close()


class ReplicaApplier:
    """Pulls committed units from the primary and applies them.

    One thread per replicated database.  All network failures are
    absorbed with a backoff — a replica outlives its primary's restarts —
    and every apply error other than a lost connection is fatal for the
    loop (a diverged replica must not keep serving quietly; the server
    surfaces ``last_error`` in stats).
    """

    def __init__(self, database: Database, primary_host: str,
                 primary_port: int,
                 poll_seconds: float = DEFAULT_POLL_SECONDS,
                 peers: Optional[Sequence[Tuple[str, int]]] = None):
        self.database = database
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.poll_seconds = poll_seconds
        #: Other replica-set members, probed after the upstream is lost
        #: or fenced: whichever now serves as primary at the highest
        #: term (at least this replica's own) becomes the new upstream.
        self.peers: List[Tuple[str, int]] = [
            (str(host), int(port)) for host, port in (peers or [])]
        self._client = OdeClient(primary_host, primary_port,
                                 retries=1)
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._resumed = threading.Event()
        self._resumed.set()
        self._parked = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._primary_epoch = database.store.epoch
        self._primary_term = database.store.term
        self.last_error: Optional[str] = None
        self._m_applied = get_registry().counter("repl.apply.units")
        self._m_resyncs = get_registry().counter("repl.apply.resyncs")
        self._m_disconnects = get_registry().counter("repl.apply.disconnects")
        self._m_retargets = get_registry().counter("repl.apply.retargets")
        self._m_fenced = get_registry().counter("repl.apply.fenced_upstreams")

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "ReplicaApplier":
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"repl-apply-{self.database.name}")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._resumed.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._client.close()

    def pause(self, wait_seconds: float = 10.0) -> None:
        """Hold the replica at its current epoch (test hook).

        Blocks until the apply loop is actually parked — any in-flight
        fetch has drained — so the applied epoch cannot advance until
        :meth:`resume`.
        """
        self._paused.set()
        self._resumed.clear()
        if self._thread is not None:
            self._parked.wait(wait_seconds)

    def resume(self) -> None:
        self._paused.clear()
        self._resumed.set()

    # -- the loop ---------------------------------------------------------------

    def _run(self) -> None:
        backoff = RECONNECT_BACKOFF_SECONDS
        while not self._stop.is_set():
            if self._paused.is_set():
                self._parked.set()
                self._resumed.wait()
                self._parked.clear()
            if self._stop.is_set():
                return
            try:
                self.step()
                backoff = RECONNECT_BACKOFF_SECONDS
            except NetworkError:
                self._m_disconnects.inc()
                if self._retarget():
                    backoff = RECONNECT_BACKOFF_SECONDS
                    continue
                self._stop.wait(backoff)
                backoff = min(backoff * 2.0, MAX_RECONNECT_BACKOFF_SECONDS)
            except StalePrimaryError as exc:
                # The upstream was failed over away from.  Its data is
                # not trusted, but the condition is recoverable: the
                # real (higher-term) primary is somewhere in the peer
                # set — probe for it, or back off and probe again (it
                # may still be mid-promotion).
                self._m_fenced.inc()
                self.last_error = f"{type(exc).__name__}: {exc}"
                if self._retarget():
                    self.last_error = None
                    backoff = RECONNECT_BACKOFF_SECONDS
                    continue
                self._stop.wait(backoff)
                backoff = min(backoff * 2.0, MAX_RECONNECT_BACKOFF_SECONDS)
            except OdeError as exc:
                # Divergence or local storage failure: stop applying,
                # leave the evidence for stats.  Serving reads at the
                # last good epoch is still safe — applied state is
                # consistent — it just stops advancing.
                self.last_error = f"{type(exc).__name__}: {exc}"
                return

    def _retarget(self) -> bool:
        """Probe the peer set for the live highest-term primary.

        Returns True after switching the upstream client to a peer that
        (a) answers, (b) serves as primary, and (c) carries a term no
        lower than this replica's own — the fence: a resurrected old
        primary fails (c) and is never re-adopted.  The actual catch-up
        happens on the next :meth:`step` against the new upstream
        (snapshot resync if its term is higher — see there).
        """
        if not self.peers:
            return False
        own_term = self.database.store.term
        best: Optional[Tuple[str, int]] = None
        best_term = 0
        for host, port in self.peers:
            if (host, port) == (self.primary_host, self.primary_port):
                continue
            probe = OdeClient(host, port, retries=0)
            try:
                info = probe.call(P.OP_HELLO,
                                  {"version": P.PROTOCOL_VERSION})
            except OdeError:
                continue
            finally:
                probe.close()
            terms = info.get("terms")
            term = (terms or {}).get(self.database.name, info.get("term"))
            term = term if isinstance(term, int) and term > 0 else 1
            if info.get("role") != "primary" or term < own_term:
                continue
            if term > best_term:
                best, best_term = (host, port), term
        if best is None:
            return False
        self._client.close()
        self.primary_host, self.primary_port = best
        self._primary_term = best_term
        self._client = OdeClient(self.primary_host, self.primary_port,
                                 retries=1)
        self._m_retargets.inc()
        return True

    def step(self) -> int:
        """One fetch + apply round; returns the new applied epoch."""
        store = self.database.store
        reply = self._client.call(P.OP_REPL_FETCH, {
            "db": self.database.name,
            "after": store.epoch,
            "max": FETCH_BATCH,
            "wait_ms": int(self.poll_seconds * 1000),
        })
        self._primary_epoch = reply.get("epoch", store.epoch)
        upstream_term = reply.get("term")
        upstream_term = (upstream_term
                         if isinstance(upstream_term, int)
                         and upstream_term > 0 else 1)
        self._primary_term = upstream_term
        if upstream_term < store.term:
            raise StalePrimaryError(
                f"upstream {self.primary_host}:{self.primary_port} serves "
                f"{self.database.name!r} at term {upstream_term}, below "
                f"this replica's term {store.term}")
        resync = bool(reply.get("resync"))
        if upstream_term > store.term:
            # Term raised: the upstream was promoted since our last
            # fetch.  Epoch contiguity cannot prove continuity across a
            # promotion — the fenced primary and the new one can both
            # hold a *different* commit at the same next epoch — so the
            # only sound catch-up is a snapshot under the new term.
            resync = True
        if resync:
            self._m_resyncs.inc()
            snapshot = self._client.call(
                P.OP_REPL_SNAPSHOT, {"db": self.database.name})
            return store.install_replicated(
                snapshot["epoch"],
                [(text, payload) for text, payload in snapshot["objects"]],
                term=snapshot.get("term"))
        units = units_from_wire(reply.get("units", []))
        if units:
            applied = store.apply_replicated(units)
            self._m_applied.inc(len(units))
            return applied
        return store.epoch

    # -- observability ----------------------------------------------------------

    @property
    def applied_epoch(self) -> int:
        return self.database.store.epoch

    @property
    def lag(self) -> int:
        """Epochs behind the primary, as of the last fetch reply."""
        return max(0, self._primary_epoch - self.database.store.epoch)

    def stats(self) -> Dict[str, Any]:
        return {
            "database": self.database.name,
            "primary": f"{self.primary_host}:{self.primary_port}",
            "applied_epoch": self.applied_epoch,
            "primary_epoch": self._primary_epoch,
            "term": self.database.store.term,
            "primary_term": self._primary_term,
            "lag": self.lag,
            "paused": self._paused.is_set(),
            "units_applied": self._m_applied.value,
            "resyncs": self._m_resyncs.value,
            "disconnects": self._m_disconnects.value,
            "retargets": self._m_retargets.value,
            "last_error": self.last_error,
        }
