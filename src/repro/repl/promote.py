"""Replica promotion: controlled and crash-forced failover to a replica.

Two promotion paths share the term mint
(:meth:`~repro.ode.store.ObjectStore.promote_term`):

controlled
    the admin points ``python -m repro promote`` (or any client issuing
    ``OP_REPL_PROMOTE``) at a *running replica server*; the server stops
    its appliers, flips to primary, and mints the next fenced term in
    every database's WAL (:meth:`~repro.net.server.ServerCore.promote`).
    The old primary is assumed cleanly demoted or already drained.

crash-forced
    the primary process is dead and its replica set must elect a new
    writer *without losing any acknowledged write*.  Acked means the
    commit's COMMIT record was fsynced into the primary's WAL — so the
    dead primary's log file still holds every acked unit, even the ones
    replication never shipped.  :func:`salvage_units` reads that file
    directly (no store reopen, no directory lock fight with a crashed
    process's leftovers) and :func:`promote_store` applies the salvaged
    tail to the chosen replica before minting its new term: the replica
    is promoted *at or past* everything the dead primary ever
    acknowledged.

Fencing invariant, both paths: the TERM record is durable before the
first write of the new reign can be accepted, so a node (or client)
comparing terms can always tell the reigning primary from a resurrected
old one — progress across the cluster is ordered by ``(term, epoch)``
lexicographically, and an epoch may only rewind when the term rises.

:func:`find_primary` is the discovery half used by clients and appliers:
probe a set of addresses and return the live primary with the highest
term.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.errors import OdeError, ReplicationError
from repro.ode.store import ObjectStore
from repro.ode.wal import WalRecord, WriteAheadLog

Unit = Tuple[int, List[WalRecord]]


class PromotionResult(NamedTuple):
    """What a crash-forced promotion did."""

    term: int            #: the freshly minted fenced term
    epoch: int           #: the promoted store's epoch after salvage
    salvaged_units: int  #: dead-primary units applied before the mint


def salvage_units(primary_wal: Union[str, Path],
                  after_epoch: int) -> List[Unit]:
    """Committed units past *after_epoch* from a dead primary's WAL file.

    Reads the log file directly — the primary process is gone, nothing
    else holds the write handle — and returns exactly the units whose
    COMMIT records are intact, i.e. exactly the writes the primary ever
    acknowledged.  Raises :class:`~repro.errors.ReplicationError` when
    the log's head checkpoint is *past* ``after_epoch``: the file no
    longer holds every acked unit the caller is missing, so a salvage
    from it could not promise zero acked-write loss (the caller should
    pick a less-lagged replica, or accept the gap explicitly by
    re-calling from the checkpoint epoch).
    """
    path = Path(primary_wal)
    if not path.exists():
        return []
    wal = WriteAheadLog(path)
    try:
        units, floor = wal.committed_units(after_epoch)
    finally:
        wal.close()
    if floor is not None and after_epoch < floor:
        raise ReplicationError(
            f"dead primary's WAL was checkpointed at epoch {floor}; "
            f"cannot salvage the acked tail after epoch {after_epoch}")
    return units


def promote_store(store: ObjectStore,
                  primary_directory: Optional[Union[str, Path]] = None,
                  ) -> PromotionResult:
    """Crash-force one replica store to primary, salvaging first.

    With ``primary_directory`` given, the dead primary's durable WAL
    tail beyond this store's epoch is applied before the term mint —
    the no-acked-write-lost half of the promotion.  The mint itself is
    fsynced before this returns; the caller may accept writes the
    moment it does.
    """
    salvaged = 0
    if primary_directory is not None:
        units = salvage_units(
            Path(primary_directory) / ObjectStore.WAL_FILE, store.epoch)
        if units:
            store.apply_replicated(units)
            salvaged = len(units)
    term = store.promote_term()
    return PromotionResult(term=term, epoch=store.epoch,
                           salvaged_units=salvaged)


def find_primary(addresses: Sequence[Tuple[str, int]],
                 database: Optional[str] = None,
                 minimum_term: int = 0,
                 ) -> Optional[Tuple[str, int, int]]:
    """Probe *addresses* for the live primary with the highest term.

    Returns ``(host, port, term)`` or ``None`` when no reachable node
    serves as primary at ``minimum_term`` or above.  ``database``
    selects that database's per-db term from the hello when given;
    otherwise the node's headline (max) term is compared.  Dead or
    replica nodes are skipped silently — discovery runs exactly when
    the cluster is degraded.
    """
    from repro.net import protocol as P
    from repro.net.client import OdeClient

    best: Optional[Tuple[str, int, int]] = None
    for host, port in addresses:
        probe = OdeClient(host, port, retries=0)
        try:
            info = probe.call(P.OP_HELLO, {"version": P.PROTOCOL_VERSION})
        except OdeError:
            continue
        finally:
            probe.close()
        if info.get("role") != "primary":
            continue
        term = info.get("term")
        if database is not None:
            term = (info.get("terms") or {}).get(database, term)
        term = term if isinstance(term, int) and term > 0 else 1
        if term < minimum_term:
            continue
        if best is None or term > best[2]:
            best = (host, port, term)
    return best
