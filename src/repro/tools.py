"""Inspection tools: dump a database without opening OdeView.

``dump_database`` summarises a database directory — catalog, clusters,
indexes, and (optionally) the objects themselves in the synthesized text
format.  Handy for debugging and for verifying what a session persisted:

    python -m repro.tools dump demo/lab.odb --objects 3
    python -m repro.tools backup demo/lab.odb lab.json
    python -m repro.tools restore lab.json demo2/lab.odb
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Union

from repro.dynlink.synthesize import format_value
from repro.ode.database import Database
from repro.ode.opp.printer import schema_source


def dump_schema(database: Database) -> str:
    """The whole catalog as O++ source."""
    return schema_source(database.schema)


def dump_clusters(database: Database) -> str:
    lines = ["clusters:"]
    for class_name in database.schema.class_names():
        count = database.objects.count(class_name)
        versioned = database.schema.get_class(class_name).versioned
        suffix = "  (versioned)" if versioned else ""
        lines.append(f"  {class_name:<20} {count:>6} objects{suffix}")
    return "\n".join(lines)


def dump_objects(database: Database, class_name: str,
                 limit: Optional[int] = None,
                 privileged: bool = False) -> str:
    lines = [f"objects of {class_name}:"]
    for position, buffer in enumerate(database.objects.select(class_name)):
        if limit is not None and position >= limit:
            lines.append(f"  ... ({database.objects.count(class_name) - limit}"
                         " more)")
            break
        lines.append(f"  {buffer.oid}:")
        for name in buffer.attribute_names(privileged=privileged):
            value = buffer.value(name, privileged=privileged)
            rendered = format_value(value)
            if len(rendered) == 1:
                lines.append(f"    {name} = {rendered[0].strip()}")
            else:
                lines.append(f"    {name} =")
                lines.extend(f"    {line}" for line in rendered)
    return "\n".join(lines)


def dump_database(directory: Union[str, Path],
                  objects_limit: Optional[int] = None,
                  privileged: bool = False) -> str:
    """Full dump: schema, clusters, and optionally the objects."""
    with Database.open(directory) as database:
        parts = [
            f"database {database.name} at {database.directory}",
            "",
            dump_schema(database),
            "",
            dump_clusters(database),
        ]
        if objects_limit is not None:
            for class_name in database.schema.class_names():
                parts.append("")
                parts.append(dump_objects(database, class_name,
                                          limit=objects_limit,
                                          privileged=privileged))
        return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Inspect, back up, and restore Ode databases.")
    commands = parser.add_subparsers(dest="command", required=True)

    dump_cmd = commands.add_parser("dump", help="summarise a database")
    dump_cmd.add_argument("directory", help="path to a <name>.odb directory")
    dump_cmd.add_argument("--objects", type=int, metavar="N", default=None,
                          help="also dump up to N objects per cluster")
    dump_cmd.add_argument("--privileged", action="store_true",
                          help="show private attributes (debugging mode)")

    backup_cmd = commands.add_parser(
        "backup", help="write a logical backup (JSON)")
    backup_cmd.add_argument("directory")
    backup_cmd.add_argument("file")

    restore_cmd = commands.add_parser(
        "restore", help="rebuild a database from a backup")
    restore_cmd.add_argument("file")
    restore_cmd.add_argument("directory")

    options = parser.parse_args(argv)
    try:
        if options.command == "dump":
            print(dump_database(options.directory,
                                objects_limit=options.objects,
                                privileged=options.privileged))
        elif options.command == "backup":
            from repro.ode.backup import dump_to_file

            with Database.open(options.directory) as database:
                dump_to_file(database, options.file)
            print(f"backup written to {options.file}")
        else:
            from repro.ode.backup import load_from_file

            load_from_file(options.file, options.directory).close()
            print(f"restored into {options.directory}")
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - entry point
    sys.exit(main())
