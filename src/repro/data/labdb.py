"""The ``lab`` (ATT) database of the paper's sample session.

"Let us look at the lab database identified by the ATT icon; this a small
database about employees in our research center" (paper §3.1).  The paper
fixes the load-bearing facts the figures show:

* ``employee`` has no superclass, one subclass ``manager``, and **55**
  objects in its cluster (Figure 3);
* ``manager`` "is the subclass of employee as well as department", has no
  subclasses, and there are **7** instances (Figure 5);
* employees reference their department (Figure 7), departments reference
  their employees as a set (Figure 8) and their manager (Figure 9);
* employee objects display in text and picture form (Figure 6).

Everything here is deterministic so figure renderings are stable.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Dict, List, Union

from repro.ode.database import Database
from repro.ode.oid import Oid

LAB_EMPLOYEE_COUNT = 55   # Figure 3
LAB_MANAGER_COUNT = 7     # Figure 5
LAB_DEPARTMENT_COUNT = 7

#: Employee names; the first few come from the paper's authors and examples
#: ("rakesh" appears in Figure 8's caption narration).
_EMPLOYEE_NAMES = [
    "rakesh", "narain", "jag", "daniel", "shaul", "alex", "bell", "carol",
    "dewayne", "elaine", "frank", "gita", "howard", "irene", "jerry",
    "kiran", "laura", "mohan", "nita", "oscar", "priya", "quentin", "rita",
    "sam", "tanya", "umesh", "vera", "walt", "xiang", "yuri", "zelda",
    "arun", "bianca", "chandra", "doug", "esther", "farid", "gail", "hank",
    "indira", "jose", "kavita", "lars", "meera", "nolan", "olga", "pete",
    "qi", "rosa", "sunil", "tara", "uma", "vijay", "wendy", "yann",
]

_MANAGER_NAMES = [
    "stroustrup", "kernighan", "ritchie", "thompson", "aho", "ullman",
    "hamming",
]

_DEPARTMENTS = [
    ("db research", "2C-401"),
    ("languages", "2C-452"),
    ("unix", "2C-501"),
    ("networking", "3B-212"),
    ("graphics", "3B-330"),
    ("theory", "2D-150"),
    ("hardware", "1A-101"),
]

_STREETS = ["600 mountain ave", "101 crawford hill", "25 lincoln pl",
            "77 summit rd", "12 maple st"]
_CITIES = ["murray hill", "holmdel", "summit", "berkeley heights"]

LAB_SCHEMA_SOURCE = """
struct Address {
    char street[24];
    char city[16];
    int zip;
};

persistent class employee {
  public:
    char name[20];
    int id;
    Date hired;
    Address addr;
    department *dept;
    int years_service() const;
  private:
    double salary;
  constraint:
    id >= 0;
    salary >= 0.0;
  trigger:
    salary_cap : salary > 150000.0 ==> salary = 150000.0;
};

persistent class department {
  public:
    char dname[20];
    char location[16];
    set<employee*> employees;
    manager *mgr;
  private:
    double budget;
};

persistent class manager : public employee, public department {
  public:
    set<employee*> reports;
  private:
    double bonus;
};
"""

#: The reference date for the computed years_service attribute (the paper
#: is from 1990, so service is measured against New Year 1990).
REFERENCE_DATE = datetime.date(1990, 1, 1)

#: Salaries above this are clamped by the lab's salary_cap trigger.
SALARY_CAP = 150_000.0

EMPLOYEE_DISPLAY_MODULE = '''\
"""Display functions for the employee class (written by the class designer).

Imports ONLY the display protocol — never the windowing backend (the
"principle of separation", paper section 4.2).
"""

from repro.dynlink.protocol import (
    DisplayResources,
    procedural_portrait,
    raster_window,
    text_window,
)

FORMATS = ("text", "picture")

_DISPLAYLIST = ["name", "id", "hired", "addr", "dept", "years_service"]


def display(buffer, request):
    if request.format_name == "picture":
        image = procedural_portrait(buffer.value("id"), 12)
        window = raster_window(
            request.window_name("picture"), image,
            title=buffer.value("name"),
        )
        return DisplayResources("picture", (window,))
    lines = []
    if request.wants("name", _DISPLAYLIST):
        lines.append("name  : " + buffer.value("name"))
    if request.wants("id", _DISPLAYLIST):
        lines.append("id    : %d" % buffer.value("id"))
    if request.wants("hired", _DISPLAYLIST):
        lines.append("hired : " + buffer.value("hired").isoformat())
    if request.wants("addr", _DISPLAYLIST):
        addr = buffer.value("addr")
        lines.append("addr  : %s, %s %05d"
                     % (addr["street"], addr["city"], addr["zip"]))
    if request.wants("dept", _DISPLAYLIST):
        dept = buffer.value("dept")
        lines.append("dept  : -> %s:%d" % (dept.cluster, dept.number)
                     if dept else "dept  : (none)")
    if request.wants("years_service", _DISPLAYLIST):
        lines.append("years : %d" % buffer.value("years_service"))
    window = text_window(
        request.window_name("text"), "\\n".join(lines),
        title="employee " + buffer.value("name"),
    )
    return DisplayResources("text", (window,))


def displaylist():
    return list(_DISPLAYLIST)


def selectlist():
    return ["name", "id", "hired", "years_service"]
'''

DEPARTMENT_DISPLAY_MODULE = '''\
"""Display function for the department class."""

from repro.dynlink.protocol import DisplayResources, text_window

FORMATS = ("text",)

_DISPLAYLIST = ["dname", "location", "employees", "mgr"]


def display(buffer, request):
    lines = []
    if request.wants("dname", _DISPLAYLIST):
        lines.append("department : " + buffer.value("dname"))
    if request.wants("location", _DISPLAYLIST):
        lines.append("location   : " + buffer.value("location"))
    if request.wants("employees", _DISPLAYLIST):
        lines.append("employees  : %d members" % len(buffer.value("employees")))
    if request.wants("mgr", _DISPLAYLIST):
        mgr = buffer.value("mgr")
        lines.append("manager    : -> %s:%d" % (mgr.cluster, mgr.number)
                     if mgr else "manager    : (none)")
    window = text_window(
        request.window_name("text"), "\\n".join(lines),
        title="department " + buffer.value("dname"),
    )
    return DisplayResources("text", (window,))


def displaylist():
    return list(_DISPLAYLIST)


def selectlist():
    return ["dname", "location"]
'''


def bind_lab_behaviours(database: Database) -> None:
    """Attach method bodies, constraints, and triggers to the lab schema.

    Catalogs persist declarations only; behaviour is process-local (as in
    Ode, where bodies live in compiled object files).  Call this after
    every :func:`Database.open` of a lab database.
    """
    behaviours = database.behaviours

    def years_service(values: Dict) -> int:
        hired = values["hired"]
        years = REFERENCE_DATE.year - hired.year
        if (REFERENCE_DATE.month, REFERENCE_DATE.day) < (hired.month, hired.day):
            years -= 1
        return years

    behaviours.bind_method("employee", "years_service", years_service)
    # The id/salary constraints and the salary_cap trigger are declared in
    # the class's O++ source (LAB_SCHEMA_SOURCE) and compiled automatically;
    # only the method body needs process-local binding.


def _address(index: int) -> Dict:
    return {
        "street": _STREETS[index % len(_STREETS)],
        "city": _CITIES[index % len(_CITIES)],
        "zip": 7000 + (index * 37) % 900,
    }


def _hire_date(index: int) -> datetime.date:
    year = 1975 + (index * 7) % 15        # 1975..1989
    month = 1 + (index * 5) % 12
    day = 1 + (index * 11) % 28
    return datetime.date(year, month, day)


def make_lab_database(root: Union[str, Path], name: str = "lab") -> Database:
    """Create the lab (ATT) database under *root* and return it open."""
    root = Path(root)
    database = Database.create(root / f"{name}.odb")
    database.set_icon("[ATT]")
    database.define_from_source(LAB_SCHEMA_SOURCE)
    bind_lab_behaviours(database)
    # Future opens re-bind automatically through the behaviours hook.
    (database.directory / "behaviours.py").write_text(
        "from repro.data.labdb import bind_lab_behaviours\n\n\n"
        "def bind(database):\n"
        "    bind_lab_behaviours(database)\n"
    )
    (database.display_dir / "employee.py").write_text(EMPLOYEE_DISPLAY_MODULE)
    (database.display_dir / "department.py").write_text(DEPARTMENT_DISPLAY_MODULE)
    # manager gets NO display module on purpose: it exercises the
    # synthesized fallback of paper §4.1.

    objects = database.objects
    # Departments first (employees reference them); manager refs are
    # patched in afterwards.
    department_oids: List[Oid] = []
    for index, (dname, location) in enumerate(_DEPARTMENTS):
        department_oids.append(
            objects.new_object("department", {
                "dname": dname,
                "location": location,
                "employees": [],
                "mgr": None,
                "budget": 250_000.0 + index * 50_000.0,
            })
        )

    employee_oids: List[Oid] = []
    members: Dict[Oid, List[Oid]] = {oid: [] for oid in department_oids}
    for index, emp_name in enumerate(_EMPLOYEE_NAMES[:LAB_EMPLOYEE_COUNT]):
        dept = department_oids[index % LAB_DEPARTMENT_COUNT]
        oid = objects.new_object("employee", {
            "name": emp_name,
            "id": index,
            "hired": _hire_date(index),
            "addr": _address(index),
            "dept": dept,
            "salary": 45_000.0 + (index * 1_337) % 60_000,
        })
        employee_oids.append(oid)
        members[dept].append(oid)

    manager_oids: List[Oid] = []
    for index, mgr_name in enumerate(_MANAGER_NAMES[:LAB_MANAGER_COUNT]):
        dept = department_oids[index % LAB_DEPARTMENT_COUNT]
        manager_oids.append(
            objects.new_object("manager", {
                "name": mgr_name,
                "id": 1000 + index,
                "hired": _hire_date(40 + index),
                "addr": _address(40 + index),
                "dept": dept,
                "salary": 95_000.0 + index * 5_000.0,
                "dname": _DEPARTMENTS[index % LAB_DEPARTMENT_COUNT][0],
                "location": _DEPARTMENTS[index % LAB_DEPARTMENT_COUNT][1],
                "employees": [],
                "mgr": None,
                "budget": 0.0,
                "reports": list(members[dept]),
                "bonus": 10_000.0 + index * 1_000.0,
            })
        )

    for index, dept_oid in enumerate(department_oids):
        objects.update(dept_oid, {
            "employees": members[dept_oid],
            "mgr": manager_oids[index % LAB_MANAGER_COUNT],
        })

    database.schema.validate()
    return database


def open_lab_database(directory: Union[str, Path]) -> Database:
    """Open an existing lab database (behaviours re-bind automatically)."""
    return Database.open(directory)
