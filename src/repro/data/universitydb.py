"""The university database: a deeper inheritance DAG.

The lab database's hierarchy is tiny; the schema window and the DAG
placement ablation (ABL-DAG) need a hierarchy with real crossing potential.
This schema has three layers, two diamonds, and multiple inheritance —
"the hierarchy relationship between classes is a set of dags" (paper §3.1).

It is also the versioning demo: ``course`` is a *versioned* class, so every
update snapshots the previous state (O++ versioned objects, paper §1).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.ode.database import Database
from repro.ode.oid import Oid

UNIVERSITY_SCHEMA_SOURCE = """
persistent class person {
  public:
    char name[24];
    int age;
};

persistent class unit {
  public:
    char uname[24];
};

persistent class student : public person {
  public:
    double gpa;
    unit *major;
};

persistent class staff : public person {
  public:
    double pay;
    unit *works_in;
};

persistent class faculty : public staff {
  public:
    char rank[16];
};

persistent class ta : public student, public staff {
  public:
    int hours;
};

persistent class professor : public faculty {
  public:
    set<student*> advisees;
};

versioned persistent class course {
  public:
    char code[12];
    char ctitle[32];
    professor *taught_by;
    set<ta*> assistants;
    int enrollment;
};
"""

_UNITS = ["mathematics", "computing", "physics"]
_STUDENT_NAMES = ["ana", "bob", "cara", "dev", "eli", "fay", "gus", "hana",
                  "ivo", "june", "kai", "lena"]
_TA_NAMES = ["milo", "nora", "otto", "pia"]
_FACULTY_NAMES = ["prof_knuth", "prof_dijkstra", "prof_hopper"]
_COURSES = [
    ("cs101", "Intro to Computing", 120),
    ("cs240", "Databases", 80),
    ("ma201", "Linear Algebra", 95),
]


def make_university_database(root: Union[str, Path],
                             name: str = "university") -> Database:
    """Create the university database under *root* and return it open."""
    root = Path(root)
    database = Database.create(root / f"{name}.odb")
    database.set_icon("[UNI]")
    database.define_from_source(UNIVERSITY_SCHEMA_SOURCE)
    objects = database.objects

    unit_oids = [
        objects.new_object("unit", {"uname": unit}) for unit in _UNITS
    ]
    student_oids: List[Oid] = []
    for index, student in enumerate(_STUDENT_NAMES):
        student_oids.append(objects.new_object("student", {
            "name": student,
            "age": 19 + index % 6,
            "gpa": 2.5 + (index % 4) * 0.4,
            "major": unit_oids[index % len(unit_oids)],
        }))
    professor_oids: List[Oid] = []
    for index, prof in enumerate(_FACULTY_NAMES):
        professor_oids.append(objects.new_object("professor", {
            "name": prof,
            "age": 45 + index * 7,
            "pay": 90_000.0 + index * 10_000,
            "works_in": unit_oids[index % len(unit_oids)],
            "rank": "full" if index == 0 else "associate",
            "advisees": student_oids[index::len(_FACULTY_NAMES)],
        }))
    ta_oids: List[Oid] = []
    for index, ta_name in enumerate(_TA_NAMES):
        ta_oids.append(objects.new_object("ta", {
            "name": ta_name,
            "age": 23 + index,
            "gpa": 3.4,
            "major": unit_oids[index % len(unit_oids)],
            "pay": 18_000.0,
            "works_in": unit_oids[(index + 1) % len(unit_oids)],
            "hours": 10 + 2 * index,
        }))
    for index, (code, ctitle, enrollment) in enumerate(_COURSES):
        objects.new_object("course", {
            "code": code,
            "ctitle": ctitle,
            "taught_by": professor_oids[index % len(professor_oids)],
            "assistants": ta_oids[index::len(_COURSES)],
            "enrollment": enrollment,
        })
    database.schema.validate()
    return database
