"""Synthetic databases for scaling experiments.

The lab database is deliberately paper-sized (55 employees).  The scaling
benches need the same *shape* at arbitrary size: one "fact" class with
scalar attributes and a reference, one referenced class, deterministic
contents.  ``make_synthetic_database`` builds it in one transaction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.ode.database import Database

SYNTHETIC_SCHEMA_SOURCE = """
persistent class sensor {
  public:
    char label[16];
    int zone;
};

persistent class reading {
  public:
    int seq;
    int value;
    char tag[12];
    sensor *source;
};
"""


def make_synthetic_database(root: Union[str, Path], readings: int,
                            sensors: int = 20,
                            name: str = "synthetic") -> Database:
    """Create a database with *readings* fact objects; returns it open."""
    if readings < 0 or sensors <= 0:
        raise ValueError("readings must be >= 0 and sensors > 0")
    root = Path(root)
    database = Database.create(root / f"{name}.odb")
    database.define_from_source(SYNTHETIC_SCHEMA_SOURCE)
    objects = database.objects
    objects.begin()
    sensor_oids = [
        objects.new_object("sensor", {
            "label": f"sensor-{index:03d}",
            "zone": index % 5,
        })
        for index in range(sensors)
    ]
    for sequence in range(readings):
        objects.new_object("reading", {
            "seq": sequence,
            "value": (sequence * 37) % 1000,
            "tag": f"t{sequence % 16:x}",
            "source": sensor_oids[sequence % sensors],
        })
    objects.commit()
    database.schema.validate()
    return database
