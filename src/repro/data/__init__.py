"""Demo databases: the paper's lab (ATT) database and companions."""

from repro.data.documents import make_documents_database
from repro.data.labdb import (
    LAB_DEPARTMENT_COUNT,
    LAB_EMPLOYEE_COUNT,
    LAB_MANAGER_COUNT,
    bind_lab_behaviours,
    make_lab_database,
    open_lab_database,
)
from repro.data.synthetic import make_synthetic_database
from repro.data.universitydb import make_university_database

__all__ = [
    "LAB_DEPARTMENT_COUNT",
    "LAB_EMPLOYEE_COUNT",
    "LAB_MANAGER_COUNT",
    "bind_lab_behaviours",
    "make_documents_database",
    "make_lab_database",
    "make_synthetic_database",
    "make_university_database",
    "open_lab_database",
]
