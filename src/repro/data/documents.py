"""The documents database: multiple views and embedded semantics.

Paper §4.1 motivates two display-function requirements this database
exercises:

* (4) "a document object may be viewed in text form, in Postscript form,
  or as a bitmap" — the ``document`` class offers exactly those three
  display formats;
* (5) "suppose that one of the components of an object is a string that
  represents the name of the file containing some pictorial description of
  the object.  Displaying the string itself will not be of much value
  compared to displaying the pictorial representation which may require
  processing of the pictorial description" — ``figure_file`` names a file
  under the database's ``figures/`` directory holding a digit-grid bitmap
  description, which the bitmap display *processes* into a raster.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.ode.database import Database

DOCUMENT_SCHEMA_SOURCE = """
persistent class author {
  public:
    char name[24];
    char affiliation[32];
};

persistent class document {
  public:
    char title[40];
    author *written_by;
    String body;
    char figure_file[32];
    int year;
};
"""

DOCUMENT_DISPLAY_MODULE = '''\
"""Display functions for documents: text, PostScript, and bitmap views.

The bitmap view demonstrates embedded semantics (paper section 4.1 point
5): figure_file is a string naming a figure description; the display
function processes the description into a raster instead of showing the
string.
"""

from pathlib import Path

from repro.dynlink.protocol import (
    DisplayResources,
    RasterImage,
    raster_window,
    text_window,
)

FORMATS = ("text", "postscript", "bitmap")

FIGURES_DIR = Path(__file__).resolve().parent.parent / "figures"

_DISPLAYLIST = ["title", "written_by", "body", "year", "figure_file"]


def _load_figure(name):
    """Process a digit-grid figure description into a raster (16 shades)."""
    path = FIGURES_DIR / name
    rows = []
    for line in path.read_text().strip().split("\\n"):
        rows.append([int(ch, 16) * 17 for ch in line.strip()])
    return RasterImage.from_rows(rows)


def display(buffer, request):
    if request.format_name == "bitmap":
        image = _load_figure(buffer.value("figure_file"))
        return DisplayResources("bitmap", (
            raster_window(request.window_name("bitmap"), image,
                          title=buffer.value("title")),
        ))
    if request.format_name == "postscript":
        body = buffer.value("body")
        ps = "\\n".join([
            "%!PS-Adobe-1.0",
            "%%Title: " + buffer.value("title"),
            "/Times-Roman findfont 12 scalefont setfont",
            "72 720 moveto",
            "(" + body.replace("(", "\\\\(").replace(")", "\\\\)") + ") show",
            "showpage",
        ])
        return DisplayResources("postscript", (
            text_window(request.window_name("ps"), ps,
                        title="PostScript", scrollable=True, height=6),
        ))
    lines = []
    if request.wants("title", _DISPLAYLIST):
        lines.append("title  : " + buffer.value("title"))
    if request.wants("year", _DISPLAYLIST):
        lines.append("year   : %d" % buffer.value("year"))
    if request.wants("written_by", _DISPLAYLIST):
        ref = buffer.value("written_by")
        lines.append("author : -> %s:%d" % (ref.cluster, ref.number)
                     if ref else "author : (none)")
    if request.wants("body", _DISPLAYLIST):
        lines.append("body   : " + buffer.value("body"))
    return DisplayResources("text", (
        text_window(request.window_name("text"), "\\n".join(lines),
                    title=buffer.value("title")),
    ))


def displaylist():
    return list(_DISPLAYLIST)


def selectlist():
    return ["title", "year"]
'''

_FIGURES = {
    "ode-arch.fig": [
        "0000000000000000",
        "0ffffffffffffff0",
        "0f111111f222222f",
        "0f111111f222222f",
        "0ffffffffffffff0",
        "0000ff0000ff0000",
        "0000ff0000ff0000",
        "0ffffffffffffff0",
        "0f333333333333f0",
        "0ffffffffffffff0",
        "0000000000000000",
    ],
    "kiview.fig": [
        "ffffffffffff",
        "f0000000000f",
        "f0ffff0ff00f",
        "f0f00f0f0f0f",
        "f0ffff0f0f0f",
        "f0f0000f0f0f",
        "f0f0000ff00f",
        "f0000000000f",
        "ffffffffffff",
    ],
    "sig.fig": [
        "0123456789abcdef",
        "123456789abcdef0",
        "23456789abcdef01",
        "3456789abcdef012",
        "456789abcdef0123",
    ],
}

_AUTHORS = [
    ("agrawal", "AT&T Bell Laboratories"),
    ("gehani", "AT&T Bell Laboratories"),
    ("motro", "U. Southern California"),
    ("maier", "Oregon Graduate Center"),
]

_DOCUMENTS = [
    ("Ode: The Language and the Data Model", 0, 1989, "ode-arch.fig",
     "O++ extends C++ with persistence, sets, constraints, and triggers."),
    ("Rationale for O++ Persistence", 1, 1989, "ode-arch.fig",
     "Design choices behind persistence and query processing in O++."),
    ("The Design of KIVIEW", 2, 1988, "kiview.fig",
     "An object-oriented browser with synchronized browsing."),
    ("Displaying Database Objects", 3, 1986, "sig.fig",
     "SIG generates displays of complex objects from recipes."),
    ("OdeView: The Graphical Interface to Ode", 0, 1990, "ode-arch.fig",
     "Schema browsing, object browsing, and synchronized browsing for Ode."),
]


def make_documents_database(root: Union[str, Path],
                            name: str = "papers") -> Database:
    """Create the documents database under *root* and return it open."""
    root = Path(root)
    database = Database.create(root / f"{name}.odb")
    database.set_icon("[DOC]")
    database.define_from_source(DOCUMENT_SCHEMA_SOURCE)
    (database.display_dir / "document.py").write_text(DOCUMENT_DISPLAY_MODULE)

    figures_dir = database.directory / "figures"
    figures_dir.mkdir(exist_ok=True)
    for figure_name, rows in _FIGURES.items():
        (figures_dir / figure_name).write_text("\n".join(rows) + "\n")

    objects = database.objects
    author_oids = [
        objects.new_object("author", {"name": author, "affiliation": where})
        for author, where in _AUTHORS
    ]
    for title, author_index, year, figure, body in _DOCUMENTS:
        objects.new_object("document", {
            "title": title,
            "written_by": author_oids[author_index],
            "body": body,
            "figure_file": figure,
            "year": year,
        })
    database.schema.validate()
    return database
