"""The process manager: spawn, route, and supervise actors.

Provides both mailbox-style asynchronous delivery (``send`` + ``step_all``)
and the synchronous request/reply (``call``) the OdeView front end uses —
a click on an object panel is, in the paper, an X event answered by one
interactor process; here it is one ``call``.

Crash containment is the managed property: ``call`` into a crashed or
crashing actor raises :class:`ProcessCrashedError`, and
``crashed_processes`` reports casualties, while every other actor stays
serviceable — the guarantee ABL-PROC benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ProcessCrashedError, ProcessError
from repro.procmodel.actor import Actor, ActorState, Message


class ProcessManager:
    """Registry and scheduler for the actor collection."""

    def __init__(self) -> None:
        self._actors: Dict[str, Actor] = {}

    # -- lifecycle ------------------------------------------------------------

    def spawn(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            existing = self._actors[actor.name]
            if existing.state is ActorState.ALIVE:
                raise ProcessError(f"process {actor.name!r} already exists")
            # replace a crashed/stopped predecessor (restart semantics)
        self._actors[actor.name] = actor
        return actor

    def get(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise ProcessError(f"no process named {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._actors

    def kill(self, name: str) -> None:
        self.get(name).stop()

    def remove(self, name: str) -> None:
        actor = self.get(name)
        actor.stop()
        del self._actors[name]

    # -- messaging ----------------------------------------------------------------

    def send(self, name: str, message: Message) -> None:
        self.get(name).deliver(message)

    def call(self, name: str, kind: str, **payload) -> Any:
        """Synchronous request/reply to one actor."""
        actor = self.get(name)
        actor.deliver(Message(kind=kind, payload=payload))
        return actor.step()

    def step_all(self, max_rounds: int = 1000) -> int:
        """Drain every mailbox; crashed actors keep their queued mail."""
        steps = 0
        for _round in range(max_rounds):
            progressed = False
            for actor in list(self._actors.values()):
                if actor.alive and actor.inbox:
                    try:
                        actor.step()
                    except ProcessCrashedError:
                        pass  # contained: supervisor keeps running
                    steps += 1
                    progressed = True
            if not progressed:
                return steps
        raise ProcessError(f"actor system did not quiesce in {max_rounds} rounds")

    # -- supervision ------------------------------------------------------------------

    def processes(self) -> List[Actor]:
        return list(self._actors.values())

    def alive_processes(self) -> List[Actor]:
        return [actor for actor in self._actors.values() if actor.alive]

    def crashed_processes(self) -> List[Actor]:
        return [
            actor for actor in self._actors.values()
            if actor.state is ActorState.CRASHED
        ]

    def restart(self, name: str, factory) -> Actor:
        """Replace a crashed actor with a fresh one from *factory*."""
        old = self.get(name)
        if old.state is ActorState.ALIVE:
            raise ProcessError(f"process {name!r} is alive; not restarting")
        del self._actors[name]
        fresh = factory()
        if fresh.name != name:
            raise ProcessError(
                f"restart factory produced {fresh.name!r}, expected {name!r}"
            )
        return self.spawn(fresh)
