"""The db-interactor and object-interactor processes.

"When the user selects a database, a 'db-interactor' process is created
that provides the interface for the user to interact with that database...
When the user wishes to examine objects of a particular class, an
'object-interactor' process is spawned.  This process dynamically loads and
executes the display function defined by the class designer and also
provides sequencing operations to scan all the persistent objects of that
class." (paper §4.6)

The db-interactor answers schema-level requests (class info, class
definitions, the schema graph); the object-interactor owns one class's
cursor and runs that class's display function — so a buggy display module
crashes exactly one object-interactor.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ProcessError
from repro.dynlink.registry import DisplayRegistry
from repro.dynlink.protocol import DisplayRequest
from repro.ode.database import Database
from repro.ode.oid import Oid
from repro.procmodel.actor import Actor, Message


class DbInteractor(Actor):
    """Schema-level interaction with one open database (paper §4.6)."""

    def __init__(self, name: str, database: Database):
        super().__init__(name)
        self.database = database
        self.registry = DisplayRegistry(database)

    def handle(self, message: Message) -> Any:
        kind = message.kind
        payload = message.payload
        schema = self.database.schema
        if kind == "schema_graph":
            return {
                "nodes": schema.class_names(),
                "edges": schema.edges(),
            }
        if kind == "class_info":
            class_name = payload["class_name"]
            return {
                "name": class_name,
                "superclasses": schema.superclasses(class_name),
                "subclasses": schema.subclasses(class_name),
                "count": self.database.objects.count(class_name),
                "versioned": schema.get_class(class_name).versioned,
            }
        if kind == "class_definition":
            from repro.ode.opp.printer import class_definition_source

            return class_definition_source(schema, payload["class_name"])
        if kind == "formats":
            return self.registry.formats(payload["class_name"])
        if kind == "displaylist":
            return self.registry.displaylist(payload["class_name"])
        if kind == "selectlist":
            return self.registry.selectlist(payload["class_name"])
        raise ProcessError(f"db-interactor: unknown request {kind!r}")


class ObjectInteractor(Actor):
    """Object-level interaction with one class's cluster (paper §4.6).

    Owns the sequencing cursor and executes the class's display function.
    Display-function bugs crash this actor only.
    """

    def __init__(self, name: str, database: Database, class_name: str,
                 registry: Optional[DisplayRegistry] = None,
                 predicate=None):
        super().__init__(name)
        self.database = database
        self.class_name = class_name
        self.registry = registry or DisplayRegistry(database)
        self.cursor = database.objects.cursor(class_name, predicate)

    def handle(self, message: Message) -> Any:
        kind = message.kind
        payload = message.payload
        objects = self.database.objects
        if kind == "reset":
            self.cursor.reset()
            return None
        if kind == "next":
            oid = self.cursor.next()
            return str(oid) if oid else None
        if kind == "previous":
            oid = self.cursor.previous()
            return str(oid) if oid else None
        if kind == "current":
            oid = self.cursor.current()
            return str(oid) if oid else None
        if kind == "count":
            return objects.count(self.class_name)
        if kind == "fetch":
            return objects.get_buffer(Oid.parse(payload["oid"]))
        if kind == "display":
            # The paper's code fragment: get the buffer, load the display
            # function, call it with a pointer to the buffer.
            buffer = objects.get_buffer(Oid.parse(payload["oid"]))
            request: DisplayRequest = payload["request"]
            return self.registry.display(buffer, request)
        if kind == "formats":
            return self.registry.formats(self.class_name)
        raise ProcessError(f"object-interactor: unknown request {kind!r}")
