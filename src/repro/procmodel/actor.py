"""Actors: the reproduction of OdeView's UNIX process structure.

"OdeView has been implemented as a collection of UNIX processes" (paper
§4.6): one master, a *db-interactor* per open database, an
*object-interactor* per browsed class.  The point of the separation is
failure isolation — "if there are bugs in this [display-function] code,
then only the corresponding object-interactor process will be affected but
not the whole OdeView".

We reproduce the structure with in-process actors: each has a mailbox and a
``handle`` method, and an unhandled exception in ``handle`` *crashes that
actor only* — its state flips to CRASHED, the crash reason is recorded, and
later messages to it fail with :class:`ProcessCrashedError` while every
other actor keeps running.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ProcessCrashedError, ProcessError


class ActorState(enum.Enum):
    ALIVE = "alive"
    CRASHED = "crashed"
    STOPPED = "stopped"


@dataclass(frozen=True)
class Message:
    """One mailbox message: a kind tag plus a payload dict."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class Actor:
    """Base class for processes.  Subclasses implement :meth:`handle`."""

    def __init__(self, name: str):
        if not name:
            raise ProcessError("actor needs a name")
        self.name = name
        self.inbox: List[Message] = []
        self.state = ActorState.ALIVE
        self.crash_reason: Optional[str] = None
        self.handled = 0

    # -- to override ---------------------------------------------------------

    def handle(self, message: Message) -> Any:
        """Process one message; the return value is the reply."""
        raise NotImplementedError

    def on_stop(self) -> None:
        """Cleanup hook when the actor is stopped."""

    # -- lifecycle ----------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is ActorState.ALIVE

    def deliver(self, message: Message) -> None:
        if self.state is ActorState.CRASHED:
            raise ProcessCrashedError(
                f"process {self.name!r} has crashed: {self.crash_reason}"
            )
        if self.state is ActorState.STOPPED:
            raise ProcessError(f"process {self.name!r} is stopped")
        self.inbox.append(message)

    def step(self) -> Any:
        """Handle the oldest queued message with crash isolation.

        Returns the handler's reply.  An exception crashes this actor and
        re-raises as :class:`ProcessCrashedError` so the caller can react,
        but the actor system as a whole is untouched.
        """
        if not self.inbox:
            return None
        if not self.alive:
            raise ProcessError(f"process {self.name!r} is not alive")
        message = self.inbox.pop(0)
        try:
            reply = self.handle(message)
        except Exception as exc:
            self.state = ActorState.CRASHED
            self.crash_reason = f"{type(exc).__name__}: {exc}"
            raise ProcessCrashedError(
                f"process {self.name!r} crashed handling "
                f"{message.kind!r}: {self.crash_reason}"
            ) from exc
        self.handled += 1
        return reply

    def stop(self) -> None:
        if self.state is ActorState.ALIVE:
            self.on_stop()
        self.state = ActorState.STOPPED

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"
