"""Actor-based reproduction of OdeView's UNIX process structure."""

from repro.procmodel.actor import Actor, ActorState, Message
from repro.procmodel.interactors import DbInteractor, ObjectInteractor
from repro.procmodel.manager import ProcessManager

__all__ = [
    "Actor",
    "ActorState",
    "DbInteractor",
    "Message",
    "ObjectInteractor",
    "ProcessManager",
]
