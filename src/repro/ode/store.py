"""The object store.

Persistent objects live in slotted pages reached through the buffer pool;
durability comes from the write-ahead log.  The store maps OIDs to page
locations, splits records larger than a page into fragment chains, and keeps
per-cluster indexes in OID order — the order the object manager's
``next``/``previous`` sequencing walks (paper §3.2).

Because every record is self-describing (it embeds its OID), the object
table and cluster indexes are rebuilt by scanning the pages at open; there
is no separately persisted index to corrupt.

Crash consistency and group commit.  Commit is split in two:
:meth:`ObjectStore.commit_stage` (under the store lock: validate, mint
the commit epoch, queue the COMMIT record on the group-commit barrier)
and :meth:`ObjectStore.commit_wait` (no store lock: park on the barrier
until durable).  The batch *leader* — the first waiter to find no
leader active — appends every queued COMMIT frame as one blob, pays a
single ``wal.group.sync`` fsync for the whole batch, and then finishes
each commit **in epoch order**: re-take the store lock, apply that
commit's buffered writes to the pages, publish its epoch to snapshot
readers.  Visibility is therefore granted strictly after durability,
and the plain :meth:`ObjectStore.commit` is just stage + wait.  The log
is truncated by a size-triggered checkpoint (``wal_checkpoint_bytes``,
taken only when no transaction is open and the barrier is idle) and at
close/vacuum — not per commit.  A crash anywhere recovers at reopen:
if a COMMIT record is durable the transaction is redone from the log —
and every on-disk record of an OID the log will redo is *purged* first,
because a crash mid-apply can leave both the old and the new version
live on disk, and a rebuild that kept both could resurrect the stale
one.  If the COMMIT record is not durable, apply never started and the
pages are untouched.

Fault injection.  ``fault_gate`` (see :mod:`repro.faultsim.plan`) is
threaded through to the page file and the WAL, and the store adds three
pure crash points of its own, crossed by the group-commit leader inside
each commit's finish step: ``store.commit.apply`` (COMMIT durable,
pages not yet touched), ``store.commit.publish`` (pages applied, the
commit epoch not yet visible to readers) and ``store.commit.checkpoint``
(epoch published, log not yet truncated).  If a transient
:class:`~repro.errors.FaultInjectedError` (or any other ``Exception``)
escapes mid-commit, the outcome is ambiguous — the COMMIT record may or
may not be on disk — so the store fails everything queued on the
barrier, rebuilds its volatile state from stable storage
(:meth:`ObjectStore._recover_volatile`) and re-raises, which resolves
the transaction the same way a reopen would.

Snapshot isolation (MVCC).  Every commit publishes a monotonically
increasing *epoch* (stamped into WAL COMMIT and CHECKPOINT records, so
the counter survives reopen).  :meth:`ObjectStore.snapshot` pins the
current epoch and returns a :class:`Snapshot` whose reads see exactly
the committed state as of that epoch, without taking the store lock on
the hot path.  The mechanism is a bounded in-memory *version chain* per
OID — ``[(epoch, payload-or-None), ...]`` ascending, where the first
entry is a pre-image stamped epoch 0 captured just before the commit
overwrites the OID.  A snapshot read walks the chain for the newest
entry at or below its epoch; a chain miss provably means the OID is
unmodified since the pruning watermark (older than every live
snapshot), so the read falls back to the current pages under the store
lock — and caches the committed value as a single-entry chain so repeat
reads stay lock-free.  Chains are pruned at publish and snapshot
release: entries superseded by a newer entry at or below the watermark
(``min`` live snapshot epoch, else the current epoch) are dropped, and
single-entry current-value chains are kept as a read cache bounded by
``mvcc_cache_limit``.
"""

from __future__ import annotations

import bisect
import itertools
import threading
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from repro.errors import (
    GroupCommitError,
    ObjectNotFoundError,
    ReplicaDivergedError,
    StalePrimaryError,
    StorageError,
    TransactionError,
)
from repro.obs import get_registry
from repro.ode.bufferpool import BufferPool
from repro.ode.codec import read_varint, write_varint
from repro.ode.oid import Oid, is_version_cluster
from repro.ode.page import MAX_RECORD_SIZE, PAGE_SIZE
from repro.ode.pagefile import PageFile
from repro.ode.wal import (
    OP_BEGIN,
    OP_COMMIT,
    OP_DELETE,
    OP_PUT,
    GroupCommit,
    WalRecord,
    WriteAheadLog,
)

_FRAGMENT_MAGIC = 0xB1
# Room left in a fragment for its own header (magic + varints + oid text).
_FRAGMENT_HEADER_BUDGET = 64
_FRAGMENT_CHUNK = MAX_RECORD_SIZE - _FRAGMENT_HEADER_BUDGET

Location = List[Tuple[int, int]]  # ordered (page_no, slot) fragments


def _noop() -> None:
    """Default continuation for the store's pure crash points."""


def _encode_fragment(oid: Oid, index: int, total: int, chunk: bytes) -> bytes:
    oid_bytes = str(oid).encode("utf-8")
    out = bytearray([_FRAGMENT_MAGIC])
    out += write_varint(index)
    out += write_varint(total)
    out += write_varint(len(oid_bytes))
    out += oid_bytes
    out += chunk
    return bytes(out)


def _decode_fragment(record: bytes) -> Tuple[Oid, int, int, bytes]:
    index, offset = read_varint(record, 1)
    total, offset = read_varint(record, offset)
    oid_len, offset = read_varint(record, offset)
    oid = Oid.parse(record[offset:offset + oid_len].decode("utf-8"))
    chunk = record[offset + oid_len:]
    return oid, index, total, chunk


class Snapshot:
    """A consistent read-only view of the store at one commit epoch.

    Reads (:meth:`get`, :meth:`exists`, :meth:`cluster_numbers`, …) see
    exactly the committed state as of :attr:`epoch` — never a later
    commit, never half of one — and never consult the write path's
    transaction overlay, so a snapshot on a store with an open
    transaction sees only committed data.

    Snapshots pin their epoch: old versions of objects overwritten after
    the snapshot was taken are retained until it is closed.  Close
    promptly (use ``with store.snapshot() as snap``), or call
    :meth:`refresh` to slide a long-lived snapshot forward.
    """

    __slots__ = ("_store", "_epoch", "_closed")

    def __init__(self, store: "ObjectStore", epoch: int):
        self._store = store
        self._epoch = epoch
        self._closed = False

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("snapshot is closed")

    # -- reads -----------------------------------------------------------------

    def get(self, oid: Oid) -> bytes:
        self._check_open()
        value = self._store._snapshot_lookup(oid, self._epoch)
        if value is None:
            raise ObjectNotFoundError(f"no object {oid} at epoch {self._epoch}")
        return value

    def exists(self, oid: Oid) -> bool:
        self._check_open()
        return self._store._snapshot_lookup(oid, self._epoch) is not None

    def cluster_names(self, include_shadow: bool = False) -> List[str]:
        self._check_open()
        return self._store._snapshot_cluster_names(self._epoch, include_shadow)

    def cluster_numbers(self, cluster: str) -> List[int]:
        self._check_open()
        return self._store._snapshot_numbers(cluster, self._epoch)

    def cluster_size(self, cluster: str) -> int:
        self._check_open()
        return len(self._store._snapshot_numbers(cluster, self._epoch))

    def oids(self) -> Iterator[Oid]:
        self._check_open()
        yield from self._store._snapshot_oids(self._epoch)

    # -- lifecycle -------------------------------------------------------------

    def refresh(self) -> int:
        """Re-pin at the store's current epoch and return it.

        Cursor resets and subtree re-syncs use this to pick up commits
        made after the snapshot was taken, without churning objects.
        """
        self._check_open()
        fresh = self._store._pin_current()
        self._store._release_snapshot(self._epoch)
        self._epoch = fresh
        return fresh

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._store._release_snapshot(self._epoch)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        # An abandoned snapshot must not pin its epoch forever — old
        # versions would never prune.  Explicit close() is still the
        # contract; this is the backstop.
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Snapshot(epoch={self._epoch}, {state})"


class ObjectStore:
    """OID-addressed record storage over pages + buffer pool + WAL."""

    DATA_FILE = "data.pages"
    WAL_FILE = "wal.log"

    def __init__(self, directory: Union[str, Path], pool_capacity: int = 64,
                 eviction_policy: str = "lru",
                 fault_gate: Optional[Callable[..., Any]] = None,
                 mvcc_cache_limit: int = 4096,
                 group_commit_window_ms: float = 0.0,
                 group_commit_max_batch: int = 64,
                 wal_checkpoint_bytes: int = 1 << 20):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._eviction_policy = eviction_policy
        self._fault_gate = fault_gate
        # Reads mutate shared state (buffer-pool frames, LRU order), so a
        # store serving several server sessions needs every entry point
        # serialized.  Reentrant: put()/delete() recurse through begin().
        # Created first: the commit group holds it across a batch's
        # finish callbacks.
        self._lock = threading.RLock()
        self._pagefile = PageFile(self.directory / self.DATA_FILE,
                                  fault_gate=fault_gate)
        self._pool = BufferPool(self._pagefile, pool_capacity,
                                policy=eviction_policy)
        self._wal = WriteAheadLog(self.directory / self.WAL_FILE,
                                  fault_gate=fault_gate)
        self._commit_group = GroupCommit(self._wal,
                                         window_ms=group_commit_window_ms,
                                         max_batch=group_commit_max_batch,
                                         finish_lock=self._lock)
        self._wal_checkpoint_bytes = max(0, int(wal_checkpoint_bytes))
        registry = get_registry()
        self._m_gets = registry.counter("store.gets")
        self._m_puts = registry.counter("store.puts")
        self._m_deletes = registry.counter("store.deletes")
        self._m_read_time = registry.histogram("store.read_seconds")
        self._m_snapshot_reads = registry.counter("mvcc.snapshot_reads")
        self._m_read_fallbacks = registry.counter("mvcc.read_fallbacks")
        self._m_pruned = registry.counter("mvcc.pruned")
        self._m_versions_live = registry.gauge("mvcc.versions_live")
        self._m_snapshots_open = registry.gauge("mvcc.snapshots_open")
        self._m_snapshot_age = registry.histogram(
            "mvcc.snapshot_age", bounds=[float(2 ** i) for i in range(24)])
        self._table: Dict[Oid, Location] = {}
        self._clusters: Dict[str, List[int]] = {}
        self._next_number: Dict[str, int] = {}
        # Next-fit allocator state: index into data_page_numbers() where
        # the last insert landed.  Purely a search-start hint — the scan
        # wraps, so any page with space is still found.
        self._insert_hint = 0
        self._txid: Optional[int] = None
        self._tx_counter = 0
        # MVCC state.  _mvcc_lock is leaf-level: held briefly, never
        # while doing I/O, and always acquired after _lock when both are
        # needed — snapshot reads take it alone, which is what keeps
        # them off the write path's lock.
        self._mvcc_lock = threading.Lock()
        self._mvcc: Dict[Oid, List[Tuple[int, Optional[bytes]]]] = {}
        self._pins: Dict[int, int] = {}
        self._members: Dict[str, Tuple[Oid, ...]] = {}
        self._mvcc_cache_limit = mvcc_cache_limit
        self._epoch = 0
        # Fenced primary term (see DESIGN.md §Replication).  Recovered
        # from the WAL below; a fresh store — and any log written before
        # terms existed — starts at term 1.
        self._term = 1
        # A recovery mid-flight fails any commit staged before it (the
        # log rebuild truncated that commit's operation records), and
        # dooms any transaction left open across it.
        self._generation = 0
        self._tx_doomed = False
        # Listeners for commits that do NOT cross the group-commit
        # barrier (replicated applies); subscribe_commits registers on
        # both paths so a subscriber sees every published commit.
        self._replication_listeners: List[
            Callable[[int, List[WalRecord]], None]] = []
        # Derived-structure maintenance (attribute indexes, statistics).
        # Apply listeners run INSIDE the commit path — under the store
        # lock, after the pages are applied, before the epoch publishes
        # — so they can stamp the commit's epoch on their own updates
        # before any reader can see it.  Rebuild listeners run after
        # wholesale state replacement (recovery, replica resync), when
        # incremental deltas are no longer trustworthy.
        self._apply_listeners: List[Callable[
            [int, Dict[Oid, Optional[bytes]], Dict[Oid, bool]], None]] = []
        self._rebuild_listeners: List[Callable[[], None]] = []
        self._rebuild_from_pages(purge=self._redo_oids())
        self._recover_from_wal()
        self._rebuild_members()
        # Epochs are minted at stage time and published at finish time;
        # the mint counter never regresses in-process, so a failed
        # commit leaves at most a gap, never a reused epoch.
        self._epoch_minted = self._epoch

    # -- recovery -------------------------------------------------------------

    def _redo_oids(self) -> FrozenSet[str]:
        """OIDs the WAL will redo (put *or* delete) at recovery.

        Every on-disk record of these OIDs is dropped during the page
        scan: a crash mid-apply can leave stale and fresh versions (or
        half a fragment chain) live at once, and the log — which holds
        the committed truth for exactly these OIDs — rewrites them from
        scratch anyway.
        """
        return frozenset(
            record.oid for record in self._wal.committed_operations())

    def _rebuild_from_pages(self, purge: FrozenSet[str] = frozenset()) -> None:
        partial: Dict[Oid, Dict[int, Tuple[int, int]]] = {}
        totals: Dict[Oid, int] = {}
        for page_no in self._pagefile.data_page_numbers():
            page = self._pool.fetch(page_no)
            for slot in page.live_slots():
                record = page.read(slot)
                if not record:
                    continue
                if record[0] == _FRAGMENT_MAGIC:
                    oid, index, total, _chunk = _decode_fragment(record)
                    if str(oid) in purge:
                        page.delete(slot)
                        continue
                    partial.setdefault(oid, {})[index] = (page_no, slot)
                    totals[oid] = total
                else:
                    from repro.ode.codec import decode_object

                    oid, _class_name, _values = decode_object(record)
                    if str(oid) in purge:
                        page.delete(slot)
                        continue
                    self._install(oid, [(page_no, slot)])
        for oid, fragments in partial.items():
            total = totals[oid]
            if len(fragments) != total:
                raise StorageError(
                    f"object {oid} has {len(fragments)} of {total} fragments"
                )
            location = [fragments[i] for i in range(total)]
            self._install(oid, location)

    def _recover_from_wal(self) -> None:
        # Recover the epoch counter before the checkpoint below truncates
        # the log: COMMIT records carry the epoch they published, the
        # previous CHECKPOINT record the epoch current at truncation.
        self._epoch = max(self._epoch, self._wal.max_epoch())
        # Likewise the primary term: TERM records (the durable mint at
        # promotion), COMMIT records (the term each commit was accepted
        # under) and CHECKPOINT records (the term at truncation) all
        # carry it.  Pre-term logs decode as 0, hence the floor of 1.
        self._term = max(self._term, self._wal.max_term())
        operations = self._wal.committed_operations()
        for record in operations:
            oid = Oid.parse(record.oid)
            if record.op == OP_PUT:
                self._put_to_pages(oid, record.payload)
            elif record.op == OP_DELETE and oid in self._table:
                self._delete_from_pages(oid)
        self._pool.flush_all()
        self._wal.checkpoint(self._epoch, term=self._term)

    def _rebuild_members(self) -> None:
        """Publish the committed cluster membership for snapshot readers."""
        members: Dict[str, List[Oid]] = {}
        for oid in self._table:
            members.setdefault(oid.cluster, []).append(oid)
        with self._mvcc_lock:
            self._members = {
                cluster: tuple(sorted(oids, key=lambda o: o.number))
                for cluster, oids in members.items()
            }

    # -- bookkeeping -------------------------------------------------------------

    def _install(self, oid: Oid, location: Location) -> None:
        self._table[oid] = location
        numbers = self._clusters.setdefault(oid.cluster, [])
        index = bisect.bisect_left(numbers, oid.number)
        if index >= len(numbers) or numbers[index] != oid.number:
            numbers.insert(index, oid.number)
        nxt = self._next_number.get(oid.cluster, 0)
        if oid.number >= nxt:
            self._next_number[oid.cluster] = oid.number + 1

    def _uninstall(self, oid: Oid) -> None:
        del self._table[oid]
        numbers = self._clusters.get(oid.cluster, [])
        index = bisect.bisect_left(numbers, oid.number)
        if index < len(numbers) and numbers[index] == oid.number:
            numbers.pop(index)
        if not numbers:
            self._clusters.pop(oid.cluster, None)

    def allocate_oid(self, database: str, cluster: str) -> Oid:
        """Mint the next OID for a cluster (monotonic within the store)."""
        with self._lock:
            number = self._next_number.get(cluster, 0)
            self._next_number[cluster] = number + 1
            return Oid(database, cluster, number)

    # -- page-level operations ------------------------------------------------------

    def _insert_record(self, record: bytes) -> Tuple[int, int]:
        # Next-fit: resume the scan where the last insert landed instead
        # of first-fit from page one.  An append-heavy workload (the
        # group-commit leader applying a batch) touches exactly one page
        # instead of re-scanning every full page per record; the wrap
        # keeps coverage identical — a new page is allocated only when
        # truly no existing page fits.
        pages = self._pagefile.data_page_numbers()
        start = self._insert_hint if self._insert_hint < len(pages) else 0
        for index in itertools.chain(range(start, len(pages)),
                                     range(0, start)):
            page_no = pages[index]
            page = self._pool.fetch(page_no)
            if page.fits(len(record)):
                self._insert_hint = index
                slot = page.insert(record)
                return page_no, slot
        page_no = self._pool.new_page()
        self._insert_hint = len(pages)
        page = self._pool.fetch(page_no)
        slot = page.insert(record)
        return page_no, slot

    def _put_to_pages(self, oid: Oid, data: bytes) -> None:
        if oid in self._table:
            self._delete_from_pages(oid)
        if len(data) <= MAX_RECORD_SIZE:
            location = [self._insert_record(data)]
        else:
            chunks = [
                data[start:start + _FRAGMENT_CHUNK]
                for start in range(0, len(data), _FRAGMENT_CHUNK)
            ]
            location = [
                self._insert_record(_encode_fragment(oid, i, len(chunks), chunk))
                for i, chunk in enumerate(chunks)
            ]
        self._install(oid, location)

    def _delete_from_pages(self, oid: Oid) -> None:
        for page_no, slot in self._table[oid]:
            self._pool.fetch(page_no).delete(slot)
        self._uninstall(oid)

    def _read_from_pages(self, oid: Oid) -> bytes:
        with self._m_read_time.time():
            location = self._table[oid]
            if len(location) == 1:
                page_no, slot = location[0]
                record = self._pool.fetch(page_no).read(slot)
                if record and record[0] != _FRAGMENT_MAGIC:
                    return record
            else:
                # A fragment chain's pages are known up front: hint them
                # to the pool as one batch before walking the chain.
                self._pool.prefetch(page_no for page_no, _slot in location)
            parts = []
            for page_no, slot in location:
                record = self._pool.fetch(page_no).read(slot)
                _oid, _index, _total, chunk = _decode_fragment(record)
                parts.append(chunk)
            return b"".join(parts)

    # -- prefetch hints ---------------------------------------------------------

    def cluster_pages(self, cluster: str) -> List[int]:
        """Distinct page numbers holding a cluster's records, in the OID
        order a sequencing scan will touch them."""
        locations = sorted(
            (oid.number, location)
            for oid, location in self._table.items()
            if oid.cluster == cluster
        )
        pages: List[int] = []
        seen = set()
        for _number, location in locations:
            for page_no, _slot in location:
                if page_no not in seen:
                    seen.add(page_no)
                    pages.append(page_no)
        return pages

    def prefetch_cluster(self, cluster: str) -> int:
        """Hint an upcoming cluster scan to the buffer pool.

        The object manager calls this before sequencing/selecting over a
        cluster; the pool reads ahead as far as capacity (and pins)
        allow.  Returns the number of pages actually prefetched.
        """
        with self._lock:
            return self._pool.prefetch(self.cluster_pages(cluster))

    # -- transactions ------------------------------------------------------------------

    def _gate(self, site: str) -> None:
        """Cross one of the store's pure crash points (no-op ungated)."""
        if self._fault_gate is not None:
            self._fault_gate(site, None, _noop)

    def begin(self) -> int:
        """Start an explicit transaction; raises if one is already open."""
        with self._lock:
            self._check_doomed()
            if self._txid is not None:
                raise TransactionError("a transaction is already in progress")
            self._tx_counter += 1
            txid = self._tx_counter
            # Log buffering: nothing touches the WAL until the commit
            # stages.  An uncommitted transaction was always invisible
            # to recovery (a BEGIN with no COMMIT replays as nothing),
            # so keeping its records in memory until commit changes no
            # crash outcome — and it removes every per-operation log
            # write from the serialized stage path.
            self._txid = txid
            self._tx_writes: List[WalRecord] = []
            return txid

    def commit(self) -> None:
        """Commit the open transaction and block until it is durable,
        applied and published (stage + wait)."""
        self.commit_wait(self.commit_stage())

    def commit_stage(self) -> int:
        """Mint this transaction's commit epoch and queue its COMMIT
        record on the group-commit barrier; the transaction is over when
        this returns (a new one may begin immediately — that pipelining
        is the concurrency win).  Durability, page apply and epoch
        publication all happen later, on the barrier: nothing this
        commit wrote is visible to readers, and no ack may be sent,
        until :meth:`commit_wait` returns for the minted epoch.
        """
        with self._lock:
            if self._txid is None:
                raise TransactionError("no transaction in progress")
            try:
                epoch = self._epoch_minted + 1
                effects = self._tx_effects()
                generation = self._generation
                # The transaction's whole frame sequence rides the
                # barrier: the batch leader writes it with one blob
                # append, so this thread never touches the log file.
                frames = [WalRecord(op=OP_BEGIN, txid=self._txid),
                          *self._tx_writes,
                          WalRecord(op=OP_COMMIT, txid=self._txid,
                                    epoch=epoch, term=self._term)]
                self._commit_group.submit(
                    epoch, frames,
                    lambda: self._commit_finish(epoch, effects, generation))
                self._epoch_minted = epoch
            finally:
                # Success or not, this transaction is finished: a failed
                # submit left nothing queued and nothing applied, so the
                # BEGIN without COMMIT is simply invisible to recovery.
                self._txid = None
                self._tx_writes = []
            return epoch

    def commit_wait(self, epoch: int) -> None:
        """Block until the staged *epoch* is durable and published.

        On a transient flush failure the outcome is ambiguous (the
        COMMIT record may or may not be on disk), so everything queued
        on the barrier is failed and the volatile state is rebuilt from
        stable storage — exactly what a reopen would decide.  A dead
        leader (simulated process crash) propagates
        :class:`~repro.errors.GroupCommitError` untouched: a dead
        process does not tidy up.
        """
        try:
            self._commit_group.wait_durable(epoch)
        except GroupCommitError:
            raise
        except Exception as exc:
            # Not under the store lock: the quiesce must wait out a
            # leader whose finish callbacks take that lock.
            self._commit_group.abort_pending(exc)
            with self._lock:
                self._recover_volatile()
                self._commit_group.reset(self._epoch)
            raise
        self._maybe_checkpoint()

    def _commit_finish(self, epoch: int, effects: Dict[Oid, Optional[bytes]],
                       generation: int) -> None:
        """Apply + publish one durable commit (runs on the batch leader,
        in epoch order, after the batch fsync)."""
        with self._lock:
            if generation != self._generation:
                # The store rebuilt itself from stable storage after this
                # commit staged; the rebuild truncated its operation
                # records, so finishing it would apply state the log can
                # no longer redo.
                raise StorageError(
                    f"commit epoch {epoch} overtaken by store recovery")
            self._gate("store.commit.apply")
            preimages = self._capture_preimages(effects)
            existed = {oid: oid in self._table for oid in effects}
            for oid, payload in effects.items():
                if payload is None:
                    if oid in self._table:
                        self._delete_from_pages(oid)
                else:
                    self._put_to_pages(oid, payload)
            # Index maintenance rides the commit blob: same durability
            # (the WAL already holds the whole unit), same crash matrix
            # (the gate), same atomicity (a failure here fails the
            # commit, recovery rebuilds pages AND indexes from the log).
            # Crossed even with no listeners registered so the torture
            # workload covers the site unconditionally.
            self._gate("store.commit.index")
            self._notify_apply(epoch, effects, existed)
            self._gate("store.commit.publish")
            self._publish_epoch(epoch, effects, preimages)
            self._gate("store.commit.checkpoint")

    def _maybe_checkpoint(self) -> None:
        """Truncate the log when it has grown past the threshold.

        Only when no transaction is open and the barrier is idle: a
        queued commit's frames land *after* the truncation would run,
        and a checkpoint frame wedged into the middle of a batch's
        redo records would make recovery start replay halfway through
        a commit.  Both guards are stable while we hold the store
        lock: staging requires it.
        """
        if self._wal.size_bytes() < self._wal_checkpoint_bytes:
            return
        with self._lock:
            if (self._txid is None and self._commit_group.idle()
                    and self._wal.size_bytes() >= self._wal_checkpoint_bytes):
                self._pool.flush_all()
                self._wal.checkpoint(self._epoch, term=self._term)

    def group_commit_stats(self) -> Dict[str, Any]:
        """Batch-size/latency behaviour of this store's commit barrier."""
        return self._commit_group.stats()

    def cancel_commit_waits(self, message: str) -> None:
        """Release every thread parked on the commit barrier with a clean
        :class:`~repro.errors.GroupCommitError` (server shutdown path).
        Already-durable commits are unaffected."""
        self._commit_group.shutdown_cancel(message)

    # -- replication: shipping out, applying in ---------------------------------

    def subscribe_commits(
            self, listener: Callable[[int, List[WalRecord]], None]) -> None:
        """Call ``listener(epoch, frames)`` for every published commit.

        Registered on both commit paths: the group-commit barrier (local
        writers) and :meth:`apply_replicated` (commits shipped from a
        primary), so a chained replica can feed its own downstreams.
        Notification order is epoch order; a commit is only ever
        announced after it is durable in this store's WAL and its epoch
        is visible to snapshot readers.
        """
        self._commit_group.subscribe(listener)
        with self._lock:
            self._replication_listeners.append(listener)

    def unsubscribe_commits(
            self, listener: Callable[[int, List[WalRecord]], None]) -> None:
        """Detach a :meth:`subscribe_commits` listener from both paths.

        Idempotent; a listener that was never registered is ignored.  A
        commit already in flight may still notify the listener once.
        """
        self._commit_group.unsubscribe(listener)
        with self._lock:
            self._replication_listeners = [
                entry for entry in self._replication_listeners
                if entry is not listener
            ]

    # -- derived state (secondary indexes): apply/rebuild listeners --------------

    def add_apply_listener(
            self,
            listener: Callable[[int, Dict[Oid, Optional[bytes]],
                                Dict[Oid, bool]], None]) -> None:
        """Call ``listener(epoch, effects, existed)`` inside every commit.

        The listener runs under the store lock *between* the page apply
        and the epoch publish — both on the local commit path and on
        :meth:`apply_replicated` — so derived structures (secondary
        indexes) update atomically with the commit blob: a reader that
        can see epoch N's data can see epoch N's index entries, and
        vice versa.  ``existed`` maps each affected OID to whether it
        was present before this commit (the delta signal for
        cardinality statistics).
        """
        with self._lock:
            self._apply_listeners.append(listener)

    def add_rebuild_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener()`` whenever the store's contents are rebuilt
        wholesale (crash recovery, snapshot resync) and incremental
        derived state must be re-derived from the recovered truth."""
        with self._lock:
            self._rebuild_listeners.append(listener)

    def _notify_apply(self, epoch: int,
                      effects: Dict[Oid, Optional[bytes]],
                      existed: Dict[Oid, bool]) -> None:
        for listener in self._apply_listeners:
            listener(epoch, effects, existed)

    def _notify_rebuild(self) -> None:
        for listener in self._rebuild_listeners:
            listener()

    def replication_units(
            self, after_epoch: int,
    ) -> Tuple[List[Tuple[int, List[WalRecord]]], Optional[int]]:
        """Committed units newer than *after_epoch* from the WAL, plus
        the log's contiguity floor (see
        :meth:`~repro.ode.wal.WriteAheadLog.committed_units`)."""
        return self._wal.committed_units(after_epoch)

    @staticmethod
    def _unit_effects(frames: List[WalRecord]) -> Dict[Oid, Optional[bytes]]:
        effects: Dict[Oid, Optional[bytes]] = {}
        for record in frames:
            if record.op == OP_PUT:
                effects[Oid.parse(record.oid)] = record.payload
            elif record.op == OP_DELETE:
                effects[Oid.parse(record.oid)] = None
        return effects

    @staticmethod
    def _unit_term(frames: List[WalRecord]) -> int:
        """The fenced primary term a shipped unit was committed under.

        Carried by the unit's COMMIT record; units from a primary that
        predates terms decode as 0 and are treated as term 1.
        """
        for record in reversed(frames):
            if record.op == OP_COMMIT:
                return max(1, record.term)
        return 1

    def apply_replicated(
            self, units: List[Tuple[int, List[WalRecord]]]) -> int:
        """Apply whole committed transactions shipped from a primary.

        Each unit is one commit's frame sequence (BEGIN, ops, COMMIT)
        tagged with the epoch the primary published it at; units must
        arrive in ascending epoch order.  Units at or below this store's
        epoch are skipped, so redelivery after a reconnect is idempotent.

        Durability first, exactly like the primary's own commits: every
        fresh unit's frames land in this replica's WAL as one blob and
        one fsync *before* any page is touched, so a crash mid-apply
        redoes the suffix from the log at reopen and the epoch counter
        (carried by the COMMIT records) never regresses.  Then each unit
        is applied and its epoch published in order — snapshot readers
        on the replica see exactly the primary's commit boundaries, at
        the primary's epochs.  Returns the new applied epoch.
        """
        with self._lock:
            if self._txid is not None:
                raise TransactionError(
                    "cannot apply replicated commits with a transaction open")
            fresh = [(epoch, frames) for epoch, frames in units
                     if epoch > self._epoch]
            if not fresh:
                return self._epoch
            # Epochs are minted one per commit, so the shipped window
            # must extend this store's epoch with no hole: a skipped
            # epoch means a committed transaction this replica would
            # silently never see.  Terms fence the other direction: a
            # unit committed under a term below this store's comes from
            # a primary that was failed over away from, and applying it
            # would split-brain — rejected before anything is written.
            last = self._epoch
            term = self._term
            for epoch, frames in fresh:
                # Term first: a stale unit that also breaks contiguity
                # should report the root cause (a fenced primary), not
                # the symptom.
                unit_term = self._unit_term(frames)
                if unit_term < term:
                    raise StalePrimaryError(
                        f"replicated unit at epoch {epoch} carries term "
                        f"{unit_term}, below this store's term {term}")
                term = unit_term
                if epoch != last + 1:
                    raise ReplicaDivergedError(
                        f"replicated units skip an epoch: {epoch} "
                        f"cannot extend {last}")
                last = epoch
            self._wal.append_batch([record for _epoch, frames in fresh
                                    for record in frames])
            self._wal.group_sync()
            # Adopt a higher term arriving in the stream.  Durable for
            # free: the COMMIT records just fsynced above carry it, and
            # recovery reads the term back out of them.
            self._term = term
            for epoch, frames in fresh:
                effects = self._unit_effects(frames)
                preimages = self._capture_preimages(effects)
                existed = {oid: oid in self._table for oid in effects}
                for oid, payload in effects.items():
                    if payload is None:
                        if oid in self._table:
                            self._delete_from_pages(oid)
                    else:
                        self._put_to_pages(oid, payload)
                # Replica-side index maintenance: the same hook the
                # primary's commit path runs, at the primary's epoch,
                # before the epoch publishes — a replica-local probe at
                # a pinned epoch answers exactly like the primary's.
                self._gate("store.commit.index")
                index_ok = True
                try:
                    self._notify_apply(epoch, effects, existed)
                except Exception:
                    # Derived state only: do not wedge replication on a
                    # listener bug.  Rebuilt from committed state below,
                    # after the unit's epoch is published.
                    index_ok = False
                    get_registry().counter("store.index.apply_errors").inc()
                self._publish_epoch(epoch, effects, preimages)
                if not index_ok:
                    self._notify_rebuild()
                if epoch > self._epoch_minted:
                    self._epoch_minted = epoch
                for listener in self._replication_listeners:
                    try:
                        listener(epoch, frames)
                    except Exception:
                        get_registry().counter(
                            "wal.group.notify_errors").inc()
            applied = self._epoch
        self._maybe_checkpoint()
        return applied

    def install_replicated(self, epoch: int,
                           records: List[Tuple[str, bytes]],
                           term: Optional[int] = None) -> int:
        """Replace the whole store with a primary snapshot (resync).

        The catch-up path for a replica that fell behind the primary's
        WAL window: every live object is dropped, the snapshot's records
        are installed, and the store's epoch jumps to the snapshot's.
        A snapshot *older* than this replica would make applied epochs
        regress — that is a topology error
        (:class:`~repro.errors.ReplicaDivergedError`), never silently
        applied.  ``term`` is the primary's fenced term: below this
        store's term the snapshot comes from a failed-over-away-from
        primary (:class:`~repro.errors.StalePrimaryError`); *above* it,
        the snapshot is the rejoin path for a fenced node, and the epoch
        may legitimately rewind — progress is ordered by
        ``(term, epoch)``, so a higher term re-licenses any epoch.
        ``None`` means the caller predates terms and keeps the pure
        epoch rule.  Live snapshot readers degrade to the installed
        state (the same contract as a store recovery).  The closing
        checkpoint stamps the new epoch and term durable.
        """
        with self._lock:
            if self._txid is not None:
                raise TransactionError(
                    "cannot resync a store with a transaction open")
            if term is not None:
                term = max(1, term)
                if term < self._term:
                    raise StalePrimaryError(
                        f"resync snapshot carries term {term}, below this "
                        f"store's term {self._term}")
            if epoch < self._epoch and not (term is not None
                                            and term > self._term):
                raise ReplicaDivergedError(
                    f"resync snapshot at epoch {epoch} is older than this "
                    f"replica (epoch {self._epoch})")
            if term is not None:
                self._term = term
            for oid in list(self._table):
                self._delete_from_pages(oid)
            for text, payload in records:
                self._put_to_pages(Oid.parse(text), payload)
            self._pool.flush_all()
            with self._mvcc_lock:
                self._mvcc.clear()
                self._m_versions_live.set(0)
                self._epoch = epoch
            self._rebuild_members()
            self._notify_rebuild()
            # Wholesale replacement: the mint counter tracks the
            # installed epoch exactly, including *down* on a term-raise
            # rewind — anything minted above it belongs to the fenced
            # past and must not shadow the new primary's epochs.
            self._epoch_minted = epoch
            self._wal.checkpoint(epoch, term=self._term)
            return epoch

    def _check_doomed(self) -> None:
        """Raise (once) if a recovery destroyed the open transaction."""
        if self._tx_doomed:
            self._tx_doomed = False
            raise TransactionError(
                "transaction aborted by store recovery (its operation "
                "records were truncated while another commit failed)")

    def abort(self) -> None:
        with self._lock:
            if self._txid is None:
                raise TransactionError("no transaction in progress")
            # The transaction's records are buffered in memory until
            # commit, so dropping the buffer *is* the abort — the log
            # never saw this transaction.  (ABORT records still replay
            # correctly for logs written before buffering.)
            self._txid = None
            self._tx_writes = []

    def _recover_volatile(self) -> None:
        """Rebuild pool/table/indexes from disk after a failed commit.

        The old buffer pool is discarded unflushed — its dirty frames
        are precisely the partial apply that must not survive.  OID
        allocation state is kept (``_install`` only ever raises it), so
        already-handed-out OIDs stay unique.

        Recovery itself crosses fault gates (its replay writes pages and
        truncates the log), so under transient error injection it may
        fail too; it is retried a few times — each attempt starts from
        stable storage, so a half-done attempt costs nothing — before
        the store gives up and reports itself broken.
        """
        # Any commit staged before this point can no longer finish (its
        # operation records are about to be truncated) ...
        self._generation += 1
        # ... and a transaction left open by a *different* pipelined
        # writer is destroyed with it: doom it so that writer's next
        # call fails loudly instead of silently losing its buffered ops.
        if self._txid is not None:
            self._txid = None
            self._tx_writes = []
            self._tx_doomed = True
        last: Optional[BaseException] = None
        for _attempt in range(5):
            try:
                self._pool = BufferPool(self._pagefile, self._pool.capacity,
                                        policy=self._eviction_policy)
                self._table = {}
                self._clusters = {}
                self._rebuild_from_pages(purge=self._redo_oids())
                self._recover_from_wal()
                # The chains may describe a commit the recovery replay
                # resolved the other way; drop them.  Live snapshots
                # degrade to the recovered state — still a consistent
                # transaction boundary, never a half-applied commit.
                with self._mvcc_lock:
                    self._mvcc.clear()
                    self._m_versions_live.set(0)
                self._rebuild_members()
                self._notify_rebuild()
                return
            except StorageError as exc:
                last = exc
        raise last

    @property
    def in_transaction(self) -> bool:
        return self._txid is not None

    def _tx_overlay(self, oid: Oid) -> Optional[WalRecord]:
        if self._txid is None:
            return None
        for record in reversed(self._tx_writes):
            if record.oid == str(oid):
                return record
        return None

    # -- MVCC: epochs, version chains, snapshots ----------------------------------

    @property
    def epoch(self) -> int:
        """The last published commit epoch (0 on a fresh store)."""
        return self._epoch

    @property
    def term(self) -> int:
        """The fenced primary term this store operates under (≥ 1).

        Minted durably at promotion (:meth:`promote_term`) or adopted
        from a higher-term primary's replicated units/snapshot; never
        decreases.  Progress across the cluster is ordered by
        ``(term, epoch)`` lexicographically — an epoch may only rewind
        when the term rises (a fenced node resyncing under the new
        primary).
        """
        return self._term

    def promote_term(self) -> int:
        """Mint the next fenced primary term durably and return it.

        The TERM record is appended and fsynced before this returns, so
        the new term survives a crash an instant later: the fence must
        never be weaker than the writes it guards.  Every commit staged
        after this carries the new term in its COMMIT record.
        """
        with self._lock:
            minted = self._term + 1
            self._wal.mint_term(minted)
            self._term = minted
            return minted

    @property
    def watermark(self) -> int:
        """The oldest epoch any live snapshot can still observe.

        Versions retired at or before this epoch are invisible to every
        current and future reader; derived structures (index entries,
        version chains) may discard them.
        """
        with self._mvcc_lock:
            return min(self._pins) if self._pins else self._epoch

    @property
    def lock(self):
        """The store's commit/structure lock, for callers that must keep
        a multi-step read of store state consistent (e.g. an index
        rebuild that scans a cluster and stamps ``built_epoch``)."""
        return self._lock

    def snapshot(self) -> Snapshot:
        """Pin the current epoch and return a consistent read view."""
        return Snapshot(self, self._pin_current())

    def _pin_current(self) -> int:
        with self._mvcc_lock:
            epoch = self._epoch
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            self._m_snapshots_open.inc()
            return epoch

    def _release_snapshot(self, epoch: int) -> None:
        with self._mvcc_lock:
            remaining = self._pins.get(epoch, 0) - 1
            if remaining <= 0:
                self._pins.pop(epoch, None)
            else:
                self._pins[epoch] = remaining
            self._m_snapshots_open.dec()
            self._m_snapshot_age.observe(float(self._epoch - epoch))
            self._prune_locked()

    def _tx_effects(self) -> Dict[Oid, Optional[bytes]]:
        """Net effect of the open transaction, last write per OID wins
        (``None`` = deleted)."""
        effects: Dict[Oid, Optional[bytes]] = {}
        for record in self._tx_writes:
            effects[Oid.parse(record.oid)] = (
                record.payload if record.op == OP_PUT else None)
        return effects

    def _capture_preimages(
            self, effects: Dict[Oid, Optional[bytes]],
    ) -> Dict[Oid, Optional[bytes]]:
        """Committed values of the OIDs this commit overwrites.

        Captured for every written OID that has no version chain yet,
        *before* the pages are touched: the pre-image becomes the
        chain's base entry (stamped epoch 0), so snapshots older than
        this commit keep reading the overwritten value.  Unconditional —
        gating on live pins would race a snapshot opened between the
        check and publish.
        """
        with self._mvcc_lock:
            missing = [oid for oid in effects if oid not in self._mvcc]
        return {
            oid: self._read_from_pages(oid) if oid in self._table else None
            for oid in missing
        }

    def _publish_epoch(self, epoch: int,
                       effects: Dict[Oid, Optional[bytes]],
                       preimages: Dict[Oid, Optional[bytes]]) -> None:
        """Make a flushed commit visible to readers, atomically.

        Runs under ``_mvcc_lock``: a reader sees the store entirely
        before this commit (old epoch, old chains, old membership) or
        entirely after — never a mixture.
        """
        with self._mvcc_lock:
            touched = []
            for oid, payload in effects.items():
                chain = self._mvcc.get(oid)
                if chain is None:
                    chain = self._mvcc[oid] = [(0, preimages.get(oid))]
                    self._m_versions_live.inc()
                chain.append((epoch, payload))
                self._m_versions_live.inc()
                touched.append(chain)
                self._member_update_locked(oid, payload is not None)
            self._epoch = epoch
            self._prune_locked(touched)

    def _member_update_locked(self, oid: Oid, present: bool) -> None:
        members = self._members.get(oid.cluster, ())
        numbers = [m.number for m in members]
        index = bisect.bisect_left(numbers, oid.number)
        found = index < len(members) and members[index].number == oid.number
        if present and not found:
            self._members[oid.cluster] = (
                members[:index] + (oid,) + members[index:])
        elif not present and found:
            updated = members[:index] + members[index + 1:]
            if updated:
                self._members[oid.cluster] = updated
            else:
                self._members.pop(oid.cluster, None)

    def _prune_locked(self, chains=None) -> None:
        """Drop versions no live snapshot can reach (``_mvcc_lock`` held).

        Within a chain, everything superseded by a newer entry at or
        below the watermark goes.  A chain pruned down to one entry at
        or below the watermark holds the OID's *current* committed value
        — it is kept as a lock-free read cache, evicted only past
        ``mvcc_cache_limit``.

        *chains* limits the sweep to the chains one commit just grew —
        the per-commit fast path, O(commit size) instead of O(cached
        OIDs).  A full sweep (``chains=None``) runs when the watermark
        moves (snapshot release) and also evicts cache overflow; the
        fast path escalates to a full sweep itself when the cache has
        outgrown its limit, so a write-only workload (no snapshots ever
        released) still cannot grow the cache without bound.
        """
        if chains is not None and len(self._mvcc) > self._mvcc_cache_limit:
            chains = None
        watermark = min(self._pins) if self._pins else self._epoch
        pruned = 0
        for chain in (self._mvcc.values() if chains is None else chains):
            keep_from = 0
            for index in range(len(chain) - 1, -1, -1):
                if chain[index][0] <= watermark:
                    keep_from = index
                    break
            if keep_from:
                pruned += keep_from
                del chain[:keep_from]
        if chains is None:
            overflow = len(self._mvcc) - self._mvcc_cache_limit
            if overflow > 0:
                evictable = [oid for oid, chain in self._mvcc.items()
                             if len(chain) == 1 and chain[0][0] <= watermark]
                for oid in evictable[:overflow]:
                    pruned += len(self._mvcc.pop(oid))
        if pruned:
            self._m_pruned.inc(pruned)
            self._m_versions_live.dec(pruned)

    @staticmethod
    def _chain_entry_at(chain: List[Tuple[int, Optional[bytes]]],
                        epoch: int) -> Optional[Tuple[int, Optional[bytes]]]:
        for index in range(len(chain) - 1, -1, -1):
            if chain[index][0] <= epoch:
                return chain[index]
        return None

    def _snapshot_lookup(self, oid: Oid, epoch: int) -> Optional[bytes]:
        """Committed value of *oid* at *epoch* (``None`` = absent).

        Fast path: the version chain, under ``_mvcc_lock`` only.  A miss
        means the OID is unmodified since the watermark (every
        modification creates a chain; pruning only removes what no live
        snapshot needs), so the current pages hold the right answer —
        read them under the store lock, then cache the value as a
        single-entry chain so the next reader stays lock-free.
        """
        self._m_snapshot_reads.inc()
        with self._mvcc_lock:
            entry = self._chain_entry_at(self._mvcc.get(oid, ()), epoch)
            if entry is not None:
                return entry[1]
        self._m_read_fallbacks.inc()
        with self._lock:
            # Re-check under the store lock: a commit may have published
            # a chain (with the pre-image we need) while we waited.
            with self._mvcc_lock:
                entry = self._chain_entry_at(self._mvcc.get(oid, ()), epoch)
                if entry is not None:
                    return entry[1]
            value = (self._read_from_pages(oid)
                     if oid in self._table else None)
            with self._mvcc_lock:
                if (oid not in self._mvcc
                        and len(self._mvcc) < self._mvcc_cache_limit):
                    self._mvcc[oid] = [(0, value)]
                    self._m_versions_live.inc()
            return value

    def _snapshot_numbers_locked(self, cluster: str, epoch: int) -> List[int]:
        numbers = {member.number for member in self._members.get(cluster, ())}
        for oid, chain in self._mvcc.items():
            if oid.cluster != cluster:
                continue
            entry = self._chain_entry_at(chain, epoch)
            if entry is None:
                continue
            if entry[1] is not None:
                numbers.add(oid.number)
            else:
                numbers.discard(oid.number)
        return sorted(numbers)

    def _snapshot_numbers(self, cluster: str, epoch: int) -> List[int]:
        """Live OID numbers of *cluster* as of *epoch*: the published
        membership corrected by every chain delta newer than the
        snapshot (OIDs without a chain are unmodified since the
        watermark, so current membership is right for them)."""
        with self._mvcc_lock:
            return self._snapshot_numbers_locked(cluster, epoch)

    def _snapshot_cluster_names(self, epoch: int,
                                include_shadow: bool = False) -> List[str]:
        with self._mvcc_lock:
            candidates = set(self._members)
            candidates.update(oid.cluster for oid in self._mvcc)
            names = [cluster for cluster in sorted(candidates)
                     if self._snapshot_numbers_locked(cluster, epoch)]
        if include_shadow:
            return names
        return [name for name in names if not is_version_cluster(name)]

    def _snapshot_oids(self, epoch: int) -> List[Oid]:
        with self._mvcc_lock:
            candidates = set(self._members)
            candidates.update(oid.cluster for oid in self._mvcc)
            result: List[Oid] = []
            for cluster in sorted(candidates):
                by_number = {member.number: member
                             for member in self._members.get(cluster, ())}
                for oid, chain in self._mvcc.items():
                    if oid.cluster != cluster:
                        continue
                    entry = self._chain_entry_at(chain, epoch)
                    if entry is None:
                        continue
                    if entry[1] is not None:
                        by_number[oid.number] = oid
                    else:
                        by_number.pop(oid.number, None)
                result.extend(by_number[number]
                              for number in sorted(by_number))
        return result

    # -- public record API ---------------------------------------------------------------

    def put(self, oid: Oid, data: bytes) -> None:
        """Write a record.  Inside a transaction the write is buffered; outside
        it commits immediately through a single-op transaction."""
        if not data:
            raise StorageError("cannot store an empty record")
        with self._lock:
            self._m_puts.inc()
            record = WalRecord(op=OP_PUT, txid=self._txid or 0, oid=str(oid),
                               payload=data)
            if self._txid is not None:
                self._tx_writes.append(record)
                return
            self.begin()
            try:
                self.put(oid, data)
                self.commit()
            except Exception:
                if self.in_transaction:
                    self.abort()
                raise

    def get(self, oid: Oid) -> bytes:
        with self._lock:
            self._m_gets.inc()
            overlay = self._tx_overlay(oid)
            if overlay is not None:
                if overlay.op == OP_DELETE:
                    raise ObjectNotFoundError(
                        f"object {oid} deleted in this transaction")
                return overlay.payload
            if oid not in self._table:
                raise ObjectNotFoundError(f"no object {oid}")
            return self._read_from_pages(oid)

    def delete(self, oid: Oid) -> None:
        with self._lock:
            if not self.exists(oid):
                raise ObjectNotFoundError(f"no object {oid}")
            self._m_deletes.inc()
            record = WalRecord(op=OP_DELETE, txid=self._txid or 0, oid=str(oid))
            if self._txid is not None:
                self._tx_writes.append(record)
                return
            self.begin()
            try:
                self.delete(oid)
                self.commit()
            except Exception:
                if self.in_transaction:
                    self.abort()
                raise

    def exists(self, oid: Oid) -> bool:
        with self._lock:
            overlay = self._tx_overlay(oid)
            if overlay is not None:
                return overlay.op == OP_PUT
            return oid in self._table

    # -- cluster iteration ------------------------------------------------------------------

    def cluster_names(self, include_shadow: bool = False) -> List[str]:
        """Cluster names, sorted.  Shadow version clusters (``<name>#v``,
        an implementation detail of :mod:`repro.ode.versions`) are
        filtered from the listing unless ``include_shadow`` is set."""
        with self._lock:
            names = sorted(self._clusters)
        if include_shadow:
            return names
        return [name for name in names if not is_version_cluster(name)]

    def cluster_size(self, cluster: str) -> int:
        with self._lock:
            return len(self._clusters.get(cluster, ()))

    def cluster_numbers(self, cluster: str) -> List[int]:
        """Live OID numbers of a cluster, ascending (sequencing order)."""
        with self._lock:
            return list(self._clusters.get(cluster, ()))

    def oids(self) -> Iterator[Oid]:
        with self._lock:
            ordered = sorted(self._table)
        yield from ordered

    # -- maintenance ------------------------------------------------------------------------

    def fragmentation(self) -> float:
        """Fraction of data-page space not holding live payload (0..1)."""
        with self._lock:
            total = 0
            used = 0
            for page_no in self._pagefile.data_page_numbers():
                page = self._pool.fetch(page_no)
                total += PAGE_SIZE
                used += sum(len(page.read(slot))
                            for slot in page.live_slots())
            if total == 0:
                return 0.0
            return 1.0 - used / total

    def vacuum(self) -> int:
        """Rewrite the page file densely; returns pages reclaimed.

        Deletes and overwrites leave holes that compaction within a page
        cannot give back to the file.  Vacuum streams every live record
        into a fresh page file and atomically swaps it in.  Must run
        outside a transaction.  The whole swap runs under the store
        lock, like every other entry point: a concurrent reader sees the
        store before or after the swap, never mid-swap.  The commit
        barrier is drained first (outside the lock — the leader's finish
        callbacks need it), and re-drained if a commit slips in between:
        vacuum truncates the log, which must not orphan a commit whose
        COMMIT record has not landed yet.
        """
        while True:
            self._commit_group.drain()
            with self._lock:
                if self._txid is not None:
                    raise TransactionError(
                        "cannot vacuum inside a transaction")
                if not self._commit_group.idle():
                    continue  # raced a new commit; release the lock, re-drain
                return self._vacuum_locked()

    def _vacuum_locked(self) -> int:
        with self._lock:
            self._pool.flush_all()
            pages_before = self._pagefile.page_count

            records = [(oid, self._read_from_pages(oid))
                       for oid in self._table]

            fresh_path = self.directory / (self.DATA_FILE + ".vacuum")
            fresh_path.unlink(missing_ok=True)
            fresh_file = PageFile(fresh_path, fault_gate=self._fault_gate)
            fresh_pool = BufferPool(fresh_file, self._pool.capacity,
                                    policy=self._eviction_policy)

            old_pagefile = self._pagefile
            old_pool = self._pool
            self._pagefile = fresh_file
            self._pool = fresh_pool
            self._table = {}
            self._clusters = {}
            try:
                for oid, data in records:
                    self._put_to_pages(oid, data)
                self._pool.flush_all()
            except Exception:
                # roll back to the old file untouched
                self._pagefile = old_pagefile
                self._pool = old_pool
                fresh_file.close()
                fresh_path.unlink(missing_ok=True)
                self._table = {}
                self._clusters = {}
                self._rebuild_from_pages()
                raise
            fresh_file.close()
            old_pagefile.close()
            fresh_path.replace(self.directory / self.DATA_FILE)
            self._pagefile = PageFile(self.directory / self.DATA_FILE,
                                      fault_gate=self._fault_gate)
            self._pool = BufferPool(self._pagefile, old_pool.capacity,
                                    policy=self._eviction_policy)
            self._table = {}
            self._clusters = {}
            self._rebuild_from_pages()
            self._wal.checkpoint(self._epoch, term=self._term)
            return pages_before - self._pagefile.page_count

    # -- lifecycle --------------------------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        return self._pool

    def flush(self) -> None:
        with self._lock:
            self._pool.flush_all()

    def close(self) -> None:
        """Drain the commit barrier, flush the pages, checkpoint, close.

        The closing checkpoint replaces the per-commit one group commit
        removed: once the pages are flushed the log's contents are
        redundant, and truncating here keeps the reopen replay empty for
        a cleanly closed store.
        """
        while True:
            with self._lock:
                if self._txid is not None:
                    self.abort()
            self._commit_group.drain()
            with self._lock:
                if not self._commit_group.idle():
                    continue  # raced a new commit; re-drain
                if not self._wal.closed:
                    self._pool.flush_all()
                    self._wal.checkpoint(self._epoch, term=self._term)
                    self._wal.close()
                self._pagefile.close()
                return

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
