"""The object store.

Persistent objects live in slotted pages reached through the buffer pool;
durability comes from the write-ahead log.  The store maps OIDs to page
locations, splits records larger than a page into fragment chains, and keeps
per-cluster indexes in OID order — the order the object manager's
``next``/``previous`` sequencing walks (paper §3.2).

Because every record is self-describing (it embeds its OID), the object
table and cluster indexes are rebuilt by scanning the pages at open; there
is no separately persisted index to corrupt.

Crash consistency.  Commit is: force the COMMIT record, apply the
buffered writes to pages, flush (crash-atomically, through the page
file's double-write journal), truncate the log.  A crash anywhere in
that sequence recovers at reopen: if the COMMIT record is durable the
transaction is redone from the log — and every on-disk record of an OID
the log will redo is *purged* first, because a crash mid-apply can
leave both the old and the new version live on disk (the delete of the
old slot and the insert of the new one flush independently), and a
rebuild that kept both could resurrect the stale one.  If the COMMIT
record is not durable, apply never started and the pages are untouched.

Fault injection.  ``fault_gate`` (see :mod:`repro.faultsim.plan`) is
threaded through to the page file and the WAL, and the store adds two
pure crash points of its own: ``store.commit.apply`` (COMMIT durable,
pages not yet touched) and ``store.commit.checkpoint`` (pages durable,
log not yet truncated).  If a transient
:class:`~repro.errors.FaultInjectedError` (or any other ``Exception``)
escapes mid-commit, the outcome is ambiguous — the COMMIT record may or
may not be on disk — so the store rebuilds its volatile state from
stable storage (:meth:`ObjectStore._recover_volatile`) before
re-raising, which resolves the transaction the same way a reopen would.
"""

from __future__ import annotations

import bisect
import threading
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from repro.errors import ObjectNotFoundError, StorageError, TransactionError
from repro.obs import get_registry
from repro.ode.bufferpool import BufferPool
from repro.ode.codec import read_varint, write_varint
from repro.ode.oid import Oid
from repro.ode.page import MAX_RECORD_SIZE
from repro.ode.pagefile import PageFile
from repro.ode.wal import (
    OP_ABORT,
    OP_BEGIN,
    OP_COMMIT,
    OP_DELETE,
    OP_PUT,
    WalRecord,
    WriteAheadLog,
)

_FRAGMENT_MAGIC = 0xB1
# Room left in a fragment for its own header (magic + varints + oid text).
_FRAGMENT_HEADER_BUDGET = 64
_FRAGMENT_CHUNK = MAX_RECORD_SIZE - _FRAGMENT_HEADER_BUDGET

Location = List[Tuple[int, int]]  # ordered (page_no, slot) fragments


def _noop() -> None:
    """Default continuation for the store's pure crash points."""


def _encode_fragment(oid: Oid, index: int, total: int, chunk: bytes) -> bytes:
    oid_bytes = str(oid).encode("utf-8")
    out = bytearray([_FRAGMENT_MAGIC])
    out += write_varint(index)
    out += write_varint(total)
    out += write_varint(len(oid_bytes))
    out += oid_bytes
    out += chunk
    return bytes(out)


def _decode_fragment(record: bytes) -> Tuple[Oid, int, int, bytes]:
    index, offset = read_varint(record, 1)
    total, offset = read_varint(record, offset)
    oid_len, offset = read_varint(record, offset)
    oid = Oid.parse(record[offset:offset + oid_len].decode("utf-8"))
    chunk = record[offset + oid_len:]
    return oid, index, total, chunk


class ObjectStore:
    """OID-addressed record storage over pages + buffer pool + WAL."""

    DATA_FILE = "data.pages"
    WAL_FILE = "wal.log"

    def __init__(self, directory: Union[str, Path], pool_capacity: int = 64,
                 eviction_policy: str = "lru",
                 fault_gate: Optional[Callable[..., Any]] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._eviction_policy = eviction_policy
        self._fault_gate = fault_gate
        self._pagefile = PageFile(self.directory / self.DATA_FILE,
                                  fault_gate=fault_gate)
        self._pool = BufferPool(self._pagefile, pool_capacity,
                                policy=eviction_policy)
        self._wal = WriteAheadLog(self.directory / self.WAL_FILE,
                                  fault_gate=fault_gate)
        registry = get_registry()
        self._m_gets = registry.counter("store.gets")
        self._m_puts = registry.counter("store.puts")
        self._m_deletes = registry.counter("store.deletes")
        self._m_read_time = registry.histogram("store.read_seconds")
        self._table: Dict[Oid, Location] = {}
        self._clusters: Dict[str, List[int]] = {}
        self._next_number: Dict[str, int] = {}
        self._txid: Optional[int] = None
        self._tx_counter = 0
        # Reads mutate shared state (buffer-pool frames, LRU order), so a
        # store serving several server sessions needs every entry point
        # serialized.  Reentrant: put()/delete() recurse through begin().
        self._lock = threading.RLock()
        self._rebuild_from_pages(purge=self._redo_oids())
        self._recover_from_wal()

    # -- recovery -------------------------------------------------------------

    def _redo_oids(self) -> FrozenSet[str]:
        """OIDs the WAL will redo (put *or* delete) at recovery.

        Every on-disk record of these OIDs is dropped during the page
        scan: a crash mid-apply can leave stale and fresh versions (or
        half a fragment chain) live at once, and the log — which holds
        the committed truth for exactly these OIDs — rewrites them from
        scratch anyway.
        """
        return frozenset(
            record.oid for record in self._wal.committed_operations())

    def _rebuild_from_pages(self, purge: FrozenSet[str] = frozenset()) -> None:
        partial: Dict[Oid, Dict[int, Tuple[int, int]]] = {}
        totals: Dict[Oid, int] = {}
        for page_no in self._pagefile.data_page_numbers():
            page = self._pool.fetch(page_no)
            for slot in page.live_slots():
                record = page.read(slot)
                if not record:
                    continue
                if record[0] == _FRAGMENT_MAGIC:
                    oid, index, total, _chunk = _decode_fragment(record)
                    if str(oid) in purge:
                        page.delete(slot)
                        continue
                    partial.setdefault(oid, {})[index] = (page_no, slot)
                    totals[oid] = total
                else:
                    from repro.ode.codec import decode_object

                    oid, _class_name, _values = decode_object(record)
                    if str(oid) in purge:
                        page.delete(slot)
                        continue
                    self._install(oid, [(page_no, slot)])
        for oid, fragments in partial.items():
            total = totals[oid]
            if len(fragments) != total:
                raise StorageError(
                    f"object {oid} has {len(fragments)} of {total} fragments"
                )
            location = [fragments[i] for i in range(total)]
            self._install(oid, location)

    def _recover_from_wal(self) -> None:
        operations = self._wal.committed_operations()
        for record in operations:
            oid = Oid.parse(record.oid)
            if record.op == OP_PUT:
                self._put_to_pages(oid, record.payload)
            elif record.op == OP_DELETE and oid in self._table:
                self._delete_from_pages(oid)
        self._pool.flush_all()
        self._wal.checkpoint()

    # -- bookkeeping -------------------------------------------------------------

    def _install(self, oid: Oid, location: Location) -> None:
        self._table[oid] = location
        numbers = self._clusters.setdefault(oid.cluster, [])
        index = bisect.bisect_left(numbers, oid.number)
        if index >= len(numbers) or numbers[index] != oid.number:
            numbers.insert(index, oid.number)
        nxt = self._next_number.get(oid.cluster, 0)
        if oid.number >= nxt:
            self._next_number[oid.cluster] = oid.number + 1

    def _uninstall(self, oid: Oid) -> None:
        del self._table[oid]
        numbers = self._clusters.get(oid.cluster, [])
        index = bisect.bisect_left(numbers, oid.number)
        if index < len(numbers) and numbers[index] == oid.number:
            numbers.pop(index)
        if not numbers:
            self._clusters.pop(oid.cluster, None)

    def allocate_oid(self, database: str, cluster: str) -> Oid:
        """Mint the next OID for a cluster (monotonic within the store)."""
        with self._lock:
            number = self._next_number.get(cluster, 0)
            self._next_number[cluster] = number + 1
            return Oid(database, cluster, number)

    # -- page-level operations ------------------------------------------------------

    def _insert_record(self, record: bytes) -> Tuple[int, int]:
        for page_no in self._pagefile.data_page_numbers():
            page = self._pool.fetch(page_no)
            if page.fits(len(record)):
                slot = page.insert(record)
                return page_no, slot
        page_no = self._pool.new_page()
        page = self._pool.fetch(page_no)
        slot = page.insert(record)
        return page_no, slot

    def _put_to_pages(self, oid: Oid, data: bytes) -> None:
        if oid in self._table:
            self._delete_from_pages(oid)
        if len(data) <= MAX_RECORD_SIZE:
            location = [self._insert_record(data)]
        else:
            chunks = [
                data[start:start + _FRAGMENT_CHUNK]
                for start in range(0, len(data), _FRAGMENT_CHUNK)
            ]
            location = [
                self._insert_record(_encode_fragment(oid, i, len(chunks), chunk))
                for i, chunk in enumerate(chunks)
            ]
        self._install(oid, location)

    def _delete_from_pages(self, oid: Oid) -> None:
        for page_no, slot in self._table[oid]:
            self._pool.fetch(page_no).delete(slot)
        self._uninstall(oid)

    def _read_from_pages(self, oid: Oid) -> bytes:
        with self._m_read_time.time():
            location = self._table[oid]
            if len(location) == 1:
                page_no, slot = location[0]
                record = self._pool.fetch(page_no).read(slot)
                if record and record[0] != _FRAGMENT_MAGIC:
                    return record
            else:
                # A fragment chain's pages are known up front: hint them
                # to the pool as one batch before walking the chain.
                self._pool.prefetch(page_no for page_no, _slot in location)
            parts = []
            for page_no, slot in location:
                record = self._pool.fetch(page_no).read(slot)
                _oid, _index, _total, chunk = _decode_fragment(record)
                parts.append(chunk)
            return b"".join(parts)

    # -- prefetch hints ---------------------------------------------------------

    def cluster_pages(self, cluster: str) -> List[int]:
        """Distinct page numbers holding a cluster's records, in the OID
        order a sequencing scan will touch them."""
        locations = sorted(
            (oid.number, location)
            for oid, location in self._table.items()
            if oid.cluster == cluster
        )
        pages: List[int] = []
        seen = set()
        for _number, location in locations:
            for page_no, _slot in location:
                if page_no not in seen:
                    seen.add(page_no)
                    pages.append(page_no)
        return pages

    def prefetch_cluster(self, cluster: str) -> int:
        """Hint an upcoming cluster scan to the buffer pool.

        The object manager calls this before sequencing/selecting over a
        cluster; the pool reads ahead as far as capacity (and pins)
        allow.  Returns the number of pages actually prefetched.
        """
        with self._lock:
            return self._pool.prefetch(self.cluster_pages(cluster))

    # -- transactions ------------------------------------------------------------------

    def _gate(self, site: str) -> None:
        """Cross one of the store's pure crash points (no-op ungated)."""
        if self._fault_gate is not None:
            self._fault_gate(site, None, _noop)

    def begin(self) -> int:
        """Start an explicit transaction; raises if one is already open."""
        with self._lock:
            if self._txid is not None:
                raise TransactionError("a transaction is already in progress")
            self._tx_counter += 1
            txid = self._tx_counter
            # Append before publishing the txid: if the write fails, no
            # transaction is open and nothing needs aborting.
            self._wal.append(WalRecord(op=OP_BEGIN, txid=txid))
            self._txid = txid
            self._tx_writes: List[WalRecord] = []
            return txid

    def commit(self) -> None:
        with self._lock:
            if self._txid is None:
                raise TransactionError("no transaction in progress")
            try:
                self._wal.append(WalRecord(op=OP_COMMIT, txid=self._txid),
                                 sync=True)
                self._gate("store.commit.apply")
                for record in self._tx_writes:
                    oid = Oid.parse(record.oid)
                    if record.op == OP_PUT:
                        self._put_to_pages(oid, record.payload)
                    else:
                        if oid in self._table:
                            self._delete_from_pages(oid)
                self._pool.flush_all()
                self._gate("store.commit.checkpoint")
                self._wal.checkpoint()
            except Exception:
                # The outcome is ambiguous (the COMMIT record may or may
                # not be durable) and the pages/pool may hold a partial
                # apply.  Resolve exactly the way a reopen would: rebuild
                # everything volatile from stable storage.  A
                # SimulatedCrash is a BaseException and skips this — a
                # dead process does not tidy up.
                self._txid = None
                self._tx_writes = []
                self._recover_volatile()
                raise
            self._txid = None
            self._tx_writes = []

    def abort(self) -> None:
        with self._lock:
            if self._txid is None:
                raise TransactionError("no transaction in progress")
            try:
                self._wal.append(WalRecord(op=OP_ABORT, txid=self._txid))
            finally:
                # Even if the append failed the transaction is over: a
                # BEGIN with no COMMIT is invisible to recovery.
                self._txid = None
                self._tx_writes = []

    def _recover_volatile(self) -> None:
        """Rebuild pool/table/indexes from disk after a failed commit.

        The old buffer pool is discarded unflushed — its dirty frames
        are precisely the partial apply that must not survive.  OID
        allocation state is kept (``_install`` only ever raises it), so
        already-handed-out OIDs stay unique.

        Recovery itself crosses fault gates (its replay writes pages and
        truncates the log), so under transient error injection it may
        fail too; it is retried a few times — each attempt starts from
        stable storage, so a half-done attempt costs nothing — before
        the store gives up and reports itself broken.
        """
        last: Optional[BaseException] = None
        for _attempt in range(5):
            try:
                self._pool = BufferPool(self._pagefile, self._pool.capacity,
                                        policy=self._eviction_policy)
                self._table = {}
                self._clusters = {}
                self._rebuild_from_pages(purge=self._redo_oids())
                self._recover_from_wal()
                return
            except StorageError as exc:
                last = exc
        raise last

    @property
    def in_transaction(self) -> bool:
        return self._txid is not None

    def _tx_overlay(self, oid: Oid) -> Optional[WalRecord]:
        if self._txid is None:
            return None
        for record in reversed(self._tx_writes):
            if record.oid == str(oid):
                return record
        return None

    # -- public record API ---------------------------------------------------------------

    def put(self, oid: Oid, data: bytes) -> None:
        """Write a record.  Inside a transaction the write is buffered; outside
        it commits immediately through a single-op transaction."""
        if not data:
            raise StorageError("cannot store an empty record")
        with self._lock:
            self._m_puts.inc()
            record = WalRecord(op=OP_PUT, txid=self._txid or 0, oid=str(oid),
                               payload=data)
            if self._txid is not None:
                self._wal.append(record)
                self._tx_writes.append(record)
                return
            self.begin()
            try:
                self.put(oid, data)
                self.commit()
            except Exception:
                if self.in_transaction:
                    self.abort()
                raise

    def get(self, oid: Oid) -> bytes:
        with self._lock:
            self._m_gets.inc()
            overlay = self._tx_overlay(oid)
            if overlay is not None:
                if overlay.op == OP_DELETE:
                    raise ObjectNotFoundError(
                        f"object {oid} deleted in this transaction")
                return overlay.payload
            if oid not in self._table:
                raise ObjectNotFoundError(f"no object {oid}")
            return self._read_from_pages(oid)

    def delete(self, oid: Oid) -> None:
        with self._lock:
            if not self.exists(oid):
                raise ObjectNotFoundError(f"no object {oid}")
            self._m_deletes.inc()
            record = WalRecord(op=OP_DELETE, txid=self._txid or 0, oid=str(oid))
            if self._txid is not None:
                self._wal.append(record)
                self._tx_writes.append(record)
                return
            self.begin()
            try:
                self.delete(oid)
                self.commit()
            except Exception:
                if self.in_transaction:
                    self.abort()
                raise

    def exists(self, oid: Oid) -> bool:
        with self._lock:
            overlay = self._tx_overlay(oid)
            if overlay is not None:
                return overlay.op == OP_PUT
            return oid in self._table

    # -- cluster iteration ------------------------------------------------------------------

    def cluster_names(self) -> List[str]:
        with self._lock:
            return sorted(self._clusters)

    def cluster_size(self, cluster: str) -> int:
        with self._lock:
            return len(self._clusters.get(cluster, ()))

    def cluster_numbers(self, cluster: str) -> List[int]:
        """Live OID numbers of a cluster, ascending (sequencing order)."""
        with self._lock:
            return list(self._clusters.get(cluster, ()))

    def oids(self) -> Iterator[Oid]:
        with self._lock:
            ordered = sorted(self._table)
        yield from ordered

    # -- maintenance ------------------------------------------------------------------------

    def fragmentation(self) -> float:
        """Fraction of data-page space not holding live payload (0..1)."""
        with self._lock:
            total = 0
            used = 0
            for page_no in self._pagefile.data_page_numbers():
                page = self._pool.fetch(page_no)
                from repro.ode.page import PAGE_SIZE

                total += PAGE_SIZE
                used += sum(len(page.read(slot))
                            for slot in page.live_slots())
            if total == 0:
                return 0.0
            return 1.0 - used / total

    def vacuum(self) -> int:
        """Rewrite the page file densely; returns pages reclaimed.

        Deletes and overwrites leave holes that compaction within a page
        cannot give back to the file.  Vacuum streams every live record
        into a fresh page file and atomically swaps it in.  Must run
        outside a transaction.  The whole swap runs under the store
        lock, like every other entry point: a concurrent reader sees the
        store before or after the swap, never mid-swap.
        """
        with self._lock:
            if self._txid is not None:
                raise TransactionError("cannot vacuum inside a transaction")
            self._pool.flush_all()
            pages_before = self._pagefile.page_count

            records = [(oid, self._read_from_pages(oid))
                       for oid in self._table]

            fresh_path = self.directory / (self.DATA_FILE + ".vacuum")
            fresh_path.unlink(missing_ok=True)
            fresh_file = PageFile(fresh_path, fault_gate=self._fault_gate)
            fresh_pool = BufferPool(fresh_file, self._pool.capacity,
                                    policy=self._eviction_policy)

            old_pagefile = self._pagefile
            old_pool = self._pool
            self._pagefile = fresh_file
            self._pool = fresh_pool
            self._table = {}
            self._clusters = {}
            try:
                for oid, data in records:
                    self._put_to_pages(oid, data)
                self._pool.flush_all()
            except Exception:
                # roll back to the old file untouched
                self._pagefile = old_pagefile
                self._pool = old_pool
                fresh_file.close()
                fresh_path.unlink(missing_ok=True)
                self._table = {}
                self._clusters = {}
                self._rebuild_from_pages()
                raise
            fresh_file.close()
            old_pagefile.close()
            fresh_path.replace(self.directory / self.DATA_FILE)
            self._pagefile = PageFile(self.directory / self.DATA_FILE,
                                      fault_gate=self._fault_gate)
            self._pool = BufferPool(self._pagefile, old_pool.capacity,
                                    policy=self._eviction_policy)
            self._table = {}
            self._clusters = {}
            self._rebuild_from_pages()
            self._wal.checkpoint()
            return pages_before - self._pagefile.page_count

    # -- lifecycle --------------------------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        return self._pool

    def flush(self) -> None:
        with self._lock:
            self._pool.flush_all()

    def close(self) -> None:
        with self._lock:
            if self._txid is not None:
                self.abort()
            self._pool.flush_all()
            self._wal.close()
            self._pagefile.close()

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
