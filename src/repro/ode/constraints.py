"""Constraints and triggers.

O++ "extends C++ by providing facilities ... such as associating constraints
and triggers with objects" (paper §1).  OdeView itself never fires these, but
the object manager underneath it must, so that browsing shows objects that
honour their class invariants.

A *constraint* is a boolean predicate over an object's values, checked when
the object is created or updated.  A *trigger* is a (condition, action) pair:
after an update, if the condition holds, the action runs.  ``once`` triggers
deactivate after their first firing; ``perpetual`` triggers keep firing —
the two flavours O++ offers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ConstraintViolationError, TriggerError

Values = Mapping[str, Any]
CheckFn = Callable[[Values], bool]
ActionFn = Callable[[Values], Optional[Dict[str, Any]]]


@dataclass(frozen=True)
class Constraint:
    """A named invariant over an object's values."""

    name: str
    check: CheckFn
    source: str = ""

    def enforce(self, class_name: str, values: Values) -> None:
        """Raise :class:`ConstraintViolationError` unless the check passes."""
        try:
            ok = bool(self.check(values))
        except Exception as exc:
            raise ConstraintViolationError(
                class_name, self.name, f"constraint {self.name!r} raised: {exc}"
            ) from exc
        if not ok:
            raise ConstraintViolationError(class_name, self.name)


@dataclass
class Trigger:
    """A named (condition, action) pair fired after updates.

    The action may return a dict of attribute updates to apply to the object
    (a common O++ trigger idiom — e.g. clamping a value), or ``None``.
    """

    name: str
    condition: CheckFn
    action: ActionFn
    perpetual: bool = False
    active: bool = True
    source: str = ""

    def maybe_fire(self, class_name: str, values: Values) -> Optional[Dict[str, Any]]:
        """Run the action if active and the condition holds.

        Returns the action's update dict (or ``None``).  A ``once`` trigger
        deactivates after firing.
        """
        if not self.active:
            return None
        try:
            should_fire = bool(self.condition(values))
        except Exception as exc:
            raise TriggerError(
                f"trigger {self.name!r} condition raised on class {class_name!r}: {exc}"
            ) from exc
        if not should_fire:
            return None
        if not self.perpetual:
            self.active = False
        try:
            return self.action(values)
        except Exception as exc:
            raise TriggerError(
                f"trigger {self.name!r} action raised on class {class_name!r}: {exc}"
            ) from exc


@dataclass
class BehaviourRegistry:
    """Process-local registry binding behaviour to class names.

    The persistent catalog stores only the *sources* of constraints and
    triggers (strings); the executable bodies are Python callables that
    cannot be persisted.  Databases re-bind behaviour through this registry
    when a catalog is reloaded — the same division of labour as Ode, where
    method bodies live in compiled object files, not in the catalog.
    """

    constraints: Dict[str, List[Constraint]] = field(default_factory=dict)
    triggers: Dict[str, List[Trigger]] = field(default_factory=dict)
    methods: Dict[str, Dict[str, Callable[[Values], Any]]] = field(default_factory=dict)

    def add_constraint(self, class_name: str, constraint: Constraint) -> None:
        self.constraints.setdefault(class_name, []).append(constraint)

    def add_trigger(self, class_name: str, trigger: Trigger) -> None:
        self.triggers.setdefault(class_name, []).append(trigger)

    def bind_method(self, class_name: str, method_name: str,
                    fn: Callable[[Values], Any]) -> None:
        self.methods.setdefault(class_name, {})[method_name] = fn

    def constraints_for(self, class_names: List[str]) -> List[Constraint]:
        """All constraints for a class and its ancestors (inherited checks)."""
        found: List[Constraint] = []
        for name in class_names:
            found.extend(self.constraints.get(name, ()))
        return found

    def triggers_for(self, class_names: List[str]) -> List[Trigger]:
        found: List[Trigger] = []
        for name in class_names:
            found.extend(self.triggers.get(name, ()))
        return found
