"""The page file: fixed-size pages in one OS file.

Page 0 is a header page (magic, format version, page count); data pages
start at 1.  The file only ever grows; page reuse is handled above this
layer by the store's free-page tracking.

Crash atomicity.  An in-place page overwrite is not atomic: a crash can
leave the page half old, half new, destroying committed records that
were *not* in the write-ahead log any more (the WAL is logical and is
truncated at checkpoint).  :meth:`write_pages_atomic` therefore runs
every write-back through a **double-write journal** (``<path>.journal``):
the new page images are appended to the journal and fsynced *before*
the first in-place write starts, and the journal is emptied only after
the in-place writes are synced.  On open, an intact journal is replayed
over the pages — so a torn page is repaired, and a torn *journal* means
no page write had started, so it is simply discarded.  Opening also
tolerates the file-length artifacts a crash can leave: a partial
trailing page is truncated away and trailing full pages not yet counted
by the header are adopted (both are re-established by WAL replay above
this layer).

Fault injection.  ``fault_gate`` (default ``None``: the hot path pays
one ``is None`` test and nothing else) is consulted before every write
or sync of stable storage, with the contract defined in
:mod:`repro.faultsim.plan`::

    fault_gate(site, data, default)

where ``site`` is one of ``pagefile.journal.write``,
``pagefile.journal.sync``, ``pagefile.write_page``, ``pagefile.sync``
(registered in :mod:`repro.faultsim.sites`), ``data`` is the bytes
about to be written (``None`` for syncs) and ``default`` performs the
real operation — for write sites it also flushes, so a torn write
injected by a gate is on disk when the simulated crash hits.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.errors import StorageError
from repro.ode.page import PAGE_SIZE

_MAGIC = b"ODEPAGES"
_FILE_VERSION = 1
_HEADER = struct.Struct(">8sII")

_JOURNAL_MAGIC = b"ODEJRNL1"
#: One journal entry: page number, CRC-32 of (page number + image).
_JENTRY = struct.Struct(">II")

FaultGate = Callable[[str, Optional[bytes], Callable], object]


class PageFile:
    """Random access to fixed-size pages of one file."""

    def __init__(self, path: Union[str, Path],
                 fault_gate: Optional[FaultGate] = None):
        self.path = Path(path)
        self.journal_path = Path(str(path) + ".journal")
        self._fault_gate = fault_gate
        self._journal = None
        existed = self.path.exists()
        self._fh = open(self.path, "r+b" if existed else "w+b")
        if existed:
            self._recover_journal()
            if os.fstat(self._fh.fileno()).st_size == 0:
                # Creation crashed before the header page was flushed.
                # Nothing can have committed against a file that never
                # made it to disk, so start over (WAL replay above this
                # layer redoes anything the log still holds).
                self.page_count = 1
                self._write_header()
            else:
                self._read_header()
        else:
            self.journal_path.unlink(missing_ok=True)
            self.page_count = 1  # header page
            self._write_header()

    # -- header ---------------------------------------------------------------

    def _read_header(self) -> None:
        self._fh.seek(0)
        raw = self._fh.read(PAGE_SIZE)
        if len(raw) < _HEADER.size:
            raise StorageError(f"{self.path} is not a page file (too short)")
        magic, version, count = _HEADER.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.path} is not a page file (bad magic)")
        if version != _FILE_VERSION:
            raise StorageError(f"{self.path}: unsupported page file version {version}")
        size = os.fstat(self._fh.fileno()).st_size
        full, partial = divmod(size, PAGE_SIZE)
        if partial:
            # A torn write at the tail of the file: the page was being
            # appended or extended when the process died.  Drop the
            # partial page — if it carried committed data, the journal
            # replay above restored it or the WAL replay will.
            self._fh.truncate(full * PAGE_SIZE)
        if full < count:
            # The header claims pages the file does not have.  A crash
            # cannot produce this (page bytes are written before the
            # header that counts them), so treat it as real damage.
            raise StorageError(
                f"{self.path}: header says {count} pages but file has "
                f"{size} bytes"
            )
        if full > count:
            # Trailing full pages beyond the header count: allocated (or
            # journal-restored) by a commit whose header update never
            # became durable.  Adopt them — they are zeroed or carry
            # journaled images, both of which decode cleanly.
            count = full
            self.page_count = count
            self._write_header()
            self._fh.flush()
        self.page_count = count

    def _write_header(self) -> None:
        header = bytearray(PAGE_SIZE)
        _HEADER.pack_into(header, 0, _MAGIC, _FILE_VERSION, self.page_count)
        self._fh.seek(0)
        self._fh.write(header)

    # -- page access --------------------------------------------------------------

    def _check(self, page_no: int) -> None:
        if not 1 <= page_no < self.page_count:
            raise StorageError(
                f"page {page_no} out of range (file has pages 1..{self.page_count - 1})"
            )

    def read_page(self, page_no: int) -> bytes:
        self._check(page_no)
        self._fh.seek(page_no * PAGE_SIZE)
        data = self._fh.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            # The tail of a sparse region journal replay skipped over.
            data = data + bytes(PAGE_SIZE - len(data))
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check(page_no)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page write must be {PAGE_SIZE} bytes, got {len(data)}")
        self._fh.seek(page_no * PAGE_SIZE)
        if self._fault_gate is None:
            self._fh.write(data)
        else:
            self._fault_gate("pagefile.write_page", data, self._write_through)

    def _write_through(self, data: bytes) -> None:
        """Gated write continuation: write *and* flush, so a torn write
        injected by the gate reaches the OS file before the crash."""
        self._fh.write(data)
        self._fh.flush()

    def allocate_page(self) -> int:
        """Append a zeroed page; return its number."""
        page_no = self.page_count
        self._fh.seek(page_no * PAGE_SIZE)
        self._fh.write(bytes(PAGE_SIZE))
        self.page_count += 1
        self._write_header()
        return page_no

    def data_page_numbers(self) -> range:
        return range(1, self.page_count)

    # -- atomic multi-page write-back ---------------------------------------------

    def write_pages_atomic(self, images: Dict[int, bytes]) -> None:
        """Write page images so a crash can never leave a torn page.

        Protocol (the double-write buffer): journal the new images and
        sync the journal; only then overwrite the pages in place; sync;
        empty the journal.  A crash before the journal sync leaves the
        pages untouched; a crash after it is repaired at open by
        replaying the journal.  The journal is emptied *before* the WAL
        checkpoint that follows a flush, so a non-empty journal always
        has its logical operations still in the WAL.
        """
        if not images:
            self.sync()
            return
        for page_no, data in images.items():
            self._check(page_no)
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page write must be {PAGE_SIZE} bytes, got {len(data)}")
        entries = sorted(images.items())
        blob = bytearray(_JOURNAL_MAGIC)
        for page_no, data in entries:
            crc = zlib.crc32(_JENTRY.pack(page_no, 0)[:4] + data)
            blob += _JENTRY.pack(page_no, crc)
            blob += data
        journal = self._open_journal()
        journal.seek(0)
        journal.truncate(0)
        if self._fault_gate is None:
            journal.write(bytes(blob))
        else:
            self._fault_gate("pagefile.journal.write", bytes(blob),
                             self._journal_write_through)
        if self._fault_gate is None:
            self._journal_sync()
        else:
            self._fault_gate("pagefile.journal.sync", None, self._journal_sync)
        for page_no, data in entries:
            self.write_page(page_no, data)
        self.sync()
        journal.seek(0)
        journal.truncate(0)
        journal.flush()

    def _open_journal(self):
        if self._journal is None or self._journal.closed:
            self._journal = open(self.journal_path, "w+b")
        return self._journal

    def _journal_write_through(self, blob: bytes) -> None:
        self._journal.write(blob)
        self._journal.flush()

    def _journal_sync(self) -> None:
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _recover_journal(self) -> None:
        """Replay intact journal entries over the pages, then drop it.

        Entries are validated individually (CRC over page number +
        image); reading stops at the first damaged one.  Replaying a
        *prefix* is safe: journal images are always well-formed whole
        pages whose logical content the WAL still carries.
        """
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return
        applied = False
        offset = len(_JOURNAL_MAGIC)
        if raw.startswith(_JOURNAL_MAGIC):
            while offset + _JENTRY.size + PAGE_SIZE <= len(raw):
                page_no, crc = _JENTRY.unpack_from(raw, offset)
                image = raw[offset + _JENTRY.size:
                            offset + _JENTRY.size + PAGE_SIZE]
                if zlib.crc32(_JENTRY.pack(page_no, 0)[:4] + image) != crc:
                    break
                if page_no < 1:
                    break
                self._fh.seek(page_no * PAGE_SIZE)
                self._fh.write(image)
                applied = True
                offset += _JENTRY.size + PAGE_SIZE
        if applied:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.journal_path.unlink(missing_ok=True)

    # -- lifecycle ---------------------------------------------------------------------

    def sync(self) -> None:
        if self._fault_gate is None:
            self._do_sync()
        else:
            self._fault_gate("pagefile.sync", None, self._do_sync)

    def _do_sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
        if self._journal is not None and not self._journal.closed:
            empty = self._journal.seek(0, os.SEEK_END) == 0
            self._journal.close()
            if empty:
                self.journal_path.unlink(missing_ok=True)

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
