"""The page file: fixed-size pages in one OS file.

Page 0 is a header page (magic, format version, page count); data pages
start at 1.  The file only ever grows; page reuse is handled above this
layer by the store's free-page tracking.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Union

from repro.errors import StorageError
from repro.ode.page import PAGE_SIZE

_MAGIC = b"ODEPAGES"
_FILE_VERSION = 1
_HEADER = struct.Struct(">8sII")


class PageFile:
    """Random access to fixed-size pages of one file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        existed = self.path.exists()
        self._fh = open(self.path, "r+b" if existed else "w+b")
        if existed:
            self._read_header()
        else:
            self.page_count = 1  # header page
            self._write_header()

    # -- header ---------------------------------------------------------------

    def _read_header(self) -> None:
        self._fh.seek(0)
        raw = self._fh.read(PAGE_SIZE)
        if len(raw) < _HEADER.size:
            raise StorageError(f"{self.path} is not a page file (too short)")
        magic, version, count = _HEADER.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.path} is not a page file (bad magic)")
        if version != _FILE_VERSION:
            raise StorageError(f"{self.path}: unsupported page file version {version}")
        size = os.fstat(self._fh.fileno()).st_size
        if size != count * PAGE_SIZE:
            raise StorageError(
                f"{self.path}: header says {count} pages but file has "
                f"{size} bytes"
            )
        self.page_count = count

    def _write_header(self) -> None:
        header = bytearray(PAGE_SIZE)
        _HEADER.pack_into(header, 0, _MAGIC, _FILE_VERSION, self.page_count)
        self._fh.seek(0)
        self._fh.write(header)

    # -- page access --------------------------------------------------------------

    def _check(self, page_no: int) -> None:
        if not 1 <= page_no < self.page_count:
            raise StorageError(
                f"page {page_no} out of range (file has pages 1..{self.page_count - 1})"
            )

    def read_page(self, page_no: int) -> bytes:
        self._check(page_no)
        self._fh.seek(page_no * PAGE_SIZE)
        data = self._fh.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read of page {page_no}")
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check(page_no)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page write must be {PAGE_SIZE} bytes, got {len(data)}")
        self._fh.seek(page_no * PAGE_SIZE)
        self._fh.write(data)

    def allocate_page(self) -> int:
        """Append a zeroed page; return its number."""
        page_no = self.page_count
        self._fh.seek(page_no * PAGE_SIZE)
        self._fh.write(bytes(PAGE_SIZE))
        self.page_count += 1
        self._write_header()
        return page_no

    def data_page_numbers(self) -> range:
        return range(1, self.page_count)

    # -- lifecycle ---------------------------------------------------------------------

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
