"""O++ class definitions.

The O++ object model is the C++ class: data members with public/private
access, member functions, and multiple inheritance (paper §2).  This module
defines the in-memory form of one class; cross-class concerns (inheritance
resolution, the class DAG) live in :mod:`repro.ode.schema`.

Member functions are represented as Python callables over the object's value
mapping.  The paper stresses (§5.1) that public members "may be executable
functions that ... cause side effects", which is why projection is driven by
an explicit ``displaylist`` rather than by reflecting over members; we model
that by tagging each member function with ``side_effects``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AccessError, SchemaError
from repro.ode.types import TypeSpec, type_from_dict


class Access(enum.Enum):
    """C++-style member access."""

    PUBLIC = "public"
    PRIVATE = "private"


@dataclass(frozen=True)
class Attribute:
    """One data member of a class."""

    name: str
    type_spec: TypeSpec
    access: Access = Access.PUBLIC
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not an identifier")
        if not isinstance(self.type_spec, TypeSpec):
            raise SchemaError(f"attribute {self.name!r} needs a TypeSpec")

    @property
    def is_public(self) -> bool:
        return self.access is Access.PUBLIC

    def declare(self) -> str:
        """O++ declarator line for the class-definition window."""
        return f"{self.type_spec.declare(self.name)};"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.type_spec.to_dict(),
            "access": self.access.value,
            "doc": self.doc,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Attribute":
        return cls(
            name=data["name"],
            type_spec=type_from_dict(data["type"]),
            access=Access(data.get("access", "public")),
            doc=data.get("doc", ""),
        )


@dataclass(frozen=True)
class MemberFunction:
    """One member function (method) of a class.

    ``fn`` computes the result from the object's raw value mapping.  Pure
    functions (``side_effects=False``) may be exposed as *computed
    attributes* in a class's displaylist (paper §5.1: "an attribute to be
    displayed may actually be computed using other attributes").
    """

    name: str
    fn: Optional[Callable[[Mapping[str, Any]], Any]] = None
    access: Access = Access.PUBLIC
    side_effects: bool = True
    result_declare: str = "int"
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"member function name {self.name!r} is not an identifier")

    @property
    def is_public(self) -> bool:
        return self.access is Access.PUBLIC

    @property
    def is_pure(self) -> bool:
        return not self.side_effects and self.fn is not None

    def call(self, values: Mapping[str, Any]) -> Any:
        if self.fn is None:
            raise SchemaError(f"member function {self.name!r} has no body bound")
        return self.fn(values)

    def declare(self) -> str:
        return f"{self.result_declare} {self.name}();"

    def to_dict(self) -> dict:
        # Callables are process-local; the catalog stores the signature only
        # and the body is re-bound from the class's registered behaviours.
        return {
            "name": self.name,
            "access": self.access.value,
            "side_effects": self.side_effects,
            "result_declare": self.result_declare,
            "doc": self.doc,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MemberFunction":
        return cls(
            name=data["name"],
            fn=None,
            access=Access(data.get("access", "public")),
            side_effects=data.get("side_effects", True),
            result_declare=data.get("result_declare", "int"),
            doc=data.get("doc", ""),
        )


@dataclass
class OdeClass:
    """One O++ class: name, base classes, own members.

    Inherited members are resolved by :class:`repro.ode.schema.Schema`
    because resolution needs the other classes.  ``display_formats`` names
    the display formats the class's display function offers (paper §3.2:
    "the employee object can be displayed textually or in pictorial form");
    it is advisory — the authoritative list comes from the dynamically
    linked display module.
    """

    name: str
    bases: Tuple[str, ...] = ()
    attributes: Tuple[Attribute, ...] = ()
    methods: Tuple[MemberFunction, ...] = ()
    constraint_sources: Tuple[str, ...] = ()
    trigger_sources: Tuple[str, ...] = ()
    persistent: bool = True
    versioned: bool = False
    display_formats: Tuple[str, ...] = ("text",)
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"class name {self.name!r} is not an identifier")
        if self.name in self.bases:
            raise SchemaError(f"class {self.name!r} cannot inherit from itself")
        if len(set(self.bases)) != len(self.bases):
            raise SchemaError(f"class {self.name!r} lists a duplicate base")
        seen: Dict[str, str] = {}
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"class {self.name!r} declares attribute {attr.name!r} twice"
                )
            seen[attr.name] = "attribute"
        for meth in self.methods:
            if meth.name in seen:
                raise SchemaError(
                    f"class {self.name!r} declares member {meth.name!r} twice"
                )
            seen[meth.name] = "method"

    # -- own-member lookup --------------------------------------------------

    def own_attribute(self, name: str) -> Optional[Attribute]:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def own_method(self, name: str) -> Optional[MemberFunction]:
        for meth in self.methods:
            if meth.name == name:
                return meth
        return None

    def public_attributes(self) -> List[Attribute]:
        return [attr for attr in self.attributes if attr.is_public]

    def private_attributes(self) -> List[Attribute]:
        return [attr for attr in self.attributes if not attr.is_public]

    def pure_methods(self) -> List[MemberFunction]:
        return [meth for meth in self.methods if meth.is_pure and meth.is_public]

    def bind_method(self, name: str, fn: Callable[[Mapping[str, Any]], Any]) -> None:
        """Attach a body to a method declared without one (catalog reload)."""
        for index, meth in enumerate(self.methods):
            if meth.name == name:
                rebound = MemberFunction(
                    name=meth.name,
                    fn=fn,
                    access=meth.access,
                    side_effects=meth.side_effects,
                    result_declare=meth.result_declare,
                    doc=meth.doc,
                )
                methods = list(self.methods)
                methods[index] = rebound
                self.methods = tuple(methods)
                return
        raise SchemaError(f"class {self.name!r} has no member function {name!r}")

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "attributes": [attr.to_dict() for attr in self.attributes],
            "methods": [meth.to_dict() for meth in self.methods],
            "constraint_sources": list(self.constraint_sources),
            "trigger_sources": list(self.trigger_sources),
            "persistent": self.persistent,
            "versioned": self.versioned,
            "display_formats": list(self.display_formats),
            "doc": self.doc,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OdeClass":
        return cls(
            name=data["name"],
            bases=tuple(data.get("bases", ())),
            attributes=tuple(Attribute.from_dict(a) for a in data.get("attributes", ())),
            methods=tuple(MemberFunction.from_dict(m) for m in data.get("methods", ())),
            constraint_sources=tuple(data.get("constraint_sources", ())),
            trigger_sources=tuple(data.get("trigger_sources", ())),
            persistent=data.get("persistent", True),
            versioned=data.get("versioned", False),
            display_formats=tuple(data.get("display_formats", ("text",))),
            doc=data.get("doc", ""),
        )


def check_access(attr: Attribute, privileged: bool) -> None:
    """Enforce encapsulation (paper §4.1 point 3).

    Private data is only visible "in a privileged mode, say for debugging".
    """
    if not attr.is_public and not privileged:
        raise AccessError(
            f"attribute {attr.name!r} is private; privileged mode required"
        )


def c3_linearize(name: str, bases_of: Mapping[str, Sequence[str]]) -> List[str]:
    """C3 linearisation of the inheritance graph rooted at *name*.

    ``bases_of`` maps each class name to its direct bases in declaration
    order.  Raises :class:`SchemaError` on an inconsistent hierarchy (the
    same error C++/Python would reject).
    """

    def merge(sequences: List[List[str]]) -> List[str]:
        result: List[str] = []
        sequences = [list(seq) for seq in sequences if seq]
        while sequences:
            for seq in sequences:
                head = seq[0]
                if not any(head in other[1:] for other in sequences):
                    break
            else:
                raise SchemaError(
                    f"inconsistent inheritance hierarchy while linearising {name!r}"
                )
            result.append(head)
            sequences = [
                [item for item in seq if item != head] for seq in sequences
            ]
            sequences = [seq for seq in sequences if seq]
        return result

    def linearize(cls: str) -> List[str]:
        bases = list(bases_of.get(cls, ()))
        if not bases:
            return [cls]
        return [cls] + merge([linearize(base) for base in bases] + [bases])

    return linearize(name)
