"""Versioned objects.

O++ supports "creating persistent and versioned objects" (paper §1).  For a
class declared ``versioned=True``, every update first snapshots the current
state.  Snapshots are ordinary store records in a shadow cluster named
``<cluster>#v`` — ``#`` cannot appear in a class name, so shadow clusters
can never collide with a real class's cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ObjectNotFoundError
from repro.ode.codec import decode_object, encode_object
from repro.ode.oid import (  # noqa: F401 - re-exported for back-compat
    Oid,
    VERSION_CLUSTER_SUFFIX as _VERSION_SUFFIX,
    is_version_cluster,
    version_cluster,
)
from repro.ode.store import ObjectStore


@dataclass(frozen=True)
class VersionRecord:
    """One historical state of a versioned object."""

    of: Oid
    sequence: int
    state: Mapping[str, Any]


class VersionManager:
    """Snapshot and history queries for versioned objects."""

    def __init__(self, store: ObjectStore, database: str):
        self._store = store
        self._database = database
        self._index: Dict[Oid, List[Oid]] = {}
        self._indexed_clusters: set = set()

    def _ensure_indexed(self, cluster: str) -> None:
        shadow = version_cluster(cluster)
        if shadow in self._indexed_clusters:
            return
        # One snapshot for the whole scan: membership and records come
        # from the same commit epoch, and a concurrent commit cannot
        # slip half its version records into the index.
        with self._store.snapshot() as snap:
            for number in snap.cluster_numbers(shadow):
                vid = Oid(self._database, shadow, number)
                _oid, _cls, values = decode_object(snap.get(vid))
                target = Oid.parse(values["of"])
                self._index.setdefault(target, []).append(vid)
        self._indexed_clusters.add(shadow)

    def snapshot(self, oid: Oid, class_name: str,
                 state: Mapping[str, Any]) -> Oid:
        """Record the current state of *oid* before an update overwrites it."""
        self._ensure_indexed(oid.cluster)
        sequence = len(self._index.get(oid, ()))
        vid = self._store.allocate_oid(self._database, version_cluster(oid.cluster))
        wrapper = {"of": str(oid), "seq": sequence, "state": dict(state)}
        self._store.put(vid, encode_object(vid, class_name, wrapper))
        self._index.setdefault(oid, []).append(vid)
        return vid

    def invalidate(self) -> None:
        """Drop the in-memory index so it is rebuilt from the store.

        ``snapshot()`` indexes the version record as soon as it is
        written; when the surrounding transaction aborts, the record is
        rolled back but the index entry would survive and ``history()``
        would chase an OID that no longer exists.  The object manager
        calls this on abort.
        """
        self._index.clear()
        self._indexed_clusters.clear()

    def history(self, oid: Oid) -> List[VersionRecord]:
        """All snapshots of *oid*, oldest first."""
        self._ensure_indexed(oid.cluster)
        records = []
        for vid in self._index.get(oid, ()):
            _stored, _cls, values = decode_object(self._store.get(vid))
            records.append(
                VersionRecord(of=oid, sequence=values["seq"], state=values["state"])
            )
        records.sort(key=lambda record: record.sequence)
        return records

    def version_count(self, oid: Oid) -> int:
        self._ensure_indexed(oid.cluster)
        return len(self._index.get(oid, ()))

    def get_version(self, oid: Oid, sequence: int) -> VersionRecord:
        for record in self.history(oid):
            if record.sequence == sequence:
                return record
        raise ObjectNotFoundError(f"object {oid} has no version {sequence}")
