"""Pluggable page-replacement policies for the buffer pool.

The pool owns the frames (pages, pins, dirty bits); a policy owns only
the *replacement order*.  The split keeps each policy a pure data
structure over page numbers, exercised the same way by the pool:

* :meth:`EvictionPolicy.on_admit` — a page entered the pool (miss,
  ``new_page`` or prefetch);
* :meth:`EvictionPolicy.on_access` — a cached page was hit;
* :meth:`EvictionPolicy.on_remove` — the pool dropped the page
  (eviction or invalidation), the policy must forget it;
* :meth:`EvictionPolicy.choose_victim` — pick the next page to evict
  among those the supplied predicate allows (unpinned frames).

``choose_victim`` must not mutate assuming the eviction happens — the
pool confirms by calling ``on_remove``.  (CLOCK is the one exception
allowed to clear reference bits while sweeping; that is the algorithm.)

Three policies ship:

``lru``
    Strict least-recently-used; the seed behaviour.
``clock``
    Second-chance ring: one reference bit per page, a sweeping hand —
    the classic cheap LRU approximation.
``2q``
    Segmented LRU (the in-memory half of 2Q): new pages enter a
    probationary FIFO and are promoted to a protected LRU segment only
    on a second access.  A one-pass cluster sweep therefore churns the
    probationary segment and leaves the hot set untouched — the
    scan-pollution resistance Darmont & Gruenwald's clustering study
    says dominates OODB browse latency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Union

from repro.errors import BufferPoolError

#: Predicate the pool passes to ``choose_victim``: may this page go?
Evictable = Callable[[int], bool]

POLICY_NAMES = ("lru", "clock", "2q")


class EvictionPolicy:
    """Replacement-order bookkeeping for one buffer pool."""

    name = "base"

    def on_admit(self, page_no: int) -> None:
        raise NotImplementedError

    def on_access(self, page_no: int) -> None:
        raise NotImplementedError

    def on_remove(self, page_no: int) -> None:
        raise NotImplementedError

    def choose_victim(self, evictable: Evictable) -> Optional[int]:
        """The page to evict next, or ``None`` if nothing may go."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LRUPolicy(EvictionPolicy):
    """Strict least-recently-used."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_admit(self, page_no: int) -> None:
        self._order[page_no] = None
        self._order.move_to_end(page_no)

    def on_access(self, page_no: int) -> None:
        self._order.move_to_end(page_no)

    def on_remove(self, page_no: int) -> None:
        self._order.pop(page_no, None)

    def choose_victim(self, evictable: Evictable) -> Optional[int]:
        for page_no in self._order:
            if evictable(page_no):
                return page_no
        return None


class ClockPolicy(EvictionPolicy):
    """Second-chance: a reference bit per page and a sweeping hand."""

    name = "clock"

    def __init__(self):
        self._ring: list = []          # page numbers, hand order
        self._ref: dict = {}           # page_no -> reference bit
        self._hand = 0

    def on_admit(self, page_no: int) -> None:
        if page_no not in self._ref:
            self._ring.insert(self._hand, page_no)
            self._hand += 1  # the new page sits just behind the hand
        self._ref[page_no] = True

    def on_access(self, page_no: int) -> None:
        if page_no in self._ref:
            self._ref[page_no] = True

    def on_remove(self, page_no: int) -> None:
        if page_no not in self._ref:
            return
        index = self._ring.index(page_no)
        self._ring.pop(index)
        if index < self._hand:
            self._hand -= 1
        if self._ring and self._hand >= len(self._ring):
            self._hand = 0
        del self._ref[page_no]

    def choose_victim(self, evictable: Evictable) -> Optional[int]:
        if not self._ring:
            return None
        # Two full sweeps suffice: the first clears reference bits, the
        # second must find a victim unless every page is protected.
        for _ in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            page_no = self._ring[self._hand]
            if not evictable(page_no):
                self._hand += 1
                continue
            if self._ref[page_no]:
                self._ref[page_no] = False  # second chance
                self._hand += 1
                continue
            return page_no
        return None


class TwoQPolicy(EvictionPolicy):
    """Segmented LRU (2Q's in-memory queues): probation FIFO + protected LRU.

    ``protected_fraction`` of the capacity is reserved for pages proven
    hot by a second access; everything else cycles through probation.
    Victims come from probation first, so a single sweep of cold pages
    cannot displace the protected set.
    """

    name = "2q"

    def __init__(self, capacity: int, protected_fraction: float = 0.75):
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < protected_fraction < 1.0:
            raise BufferPoolError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}")
        self._protected_cap = max(1, int(capacity * protected_fraction))
        self._probation: "OrderedDict[int, None]" = OrderedDict()  # FIFO
        self._protected: "OrderedDict[int, None]" = OrderedDict()  # LRU

    def on_admit(self, page_no: int) -> None:
        if page_no in self._protected:
            self._protected.move_to_end(page_no)
            return
        self._probation[page_no] = None
        self._probation.move_to_end(page_no)

    def on_access(self, page_no: int) -> None:
        if page_no in self._protected:
            self._protected.move_to_end(page_no)
            return
        if page_no not in self._probation:
            return
        # Second access: promote.  If the protected segment is full, its
        # coldest page is demoted to the young end of probation rather
        # than dropped — the pool, not the policy, decides evictions.
        del self._probation[page_no]
        self._protected[page_no] = None
        while len(self._protected) > self._protected_cap:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None
            self._probation.move_to_end(demoted)

    def on_remove(self, page_no: int) -> None:
        self._probation.pop(page_no, None)
        self._protected.pop(page_no, None)

    def choose_victim(self, evictable: Evictable) -> Optional[int]:
        for segment in (self._probation, self._protected):
            for page_no in segment:
                if evictable(page_no):
                    return page_no
        return None


def make_policy(policy: Union[str, EvictionPolicy, None],
                capacity: int) -> EvictionPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if policy is None:
        return LRUPolicy()
    if isinstance(policy, EvictionPolicy):
        return policy
    if not isinstance(policy, str):
        raise BufferPoolError(
            f"eviction policy must be a name or an EvictionPolicy, "
            f"not {type(policy).__name__}")
    name = policy.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "clock":
        return ClockPolicy()
    if name in ("2q", "slru", "segmented-lru"):
        return TwoQPolicy(capacity)
    raise BufferPoolError(
        f"unknown eviction policy {policy!r} (have {', '.join(POLICY_NAMES)})")
