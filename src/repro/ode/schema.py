"""The database schema: classes, structs, and the inheritance DAG.

"The database schema is the collection of class definitions of the objects
that exist in the databases and the inheritance relationship between these
types" (paper §2).  "The hierarchy relationship between classes is a set of
dags" (§3.1) — multiple inheritance makes it a DAG, not a tree, and possibly
a forest of DAGs.

This module owns cross-class concerns: registration order, C3 method
resolution, merged attribute lists, subclass queries used by reference type
checking, and schema evolution (add/drop/replace — the operations OdeView
must survive without recompilation, §4.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import SchemaError
from repro.ode.classdef import Attribute, MemberFunction, OdeClass, c3_linearize
from repro.ode.types import StructType, referenced_classes


class Schema:
    """Registry of struct and class definitions with inheritance queries."""

    def __init__(self) -> None:
        self._structs: Dict[str, StructType] = {}
        self._classes: Dict[str, OdeClass] = {}
        self._order: List[str] = []
        self.version = 0

    # -- structs -------------------------------------------------------------

    def add_struct(self, struct: StructType) -> None:
        if struct.name in self._structs:
            raise SchemaError(f"struct {struct.name!r} already defined")
        if struct.name in self._classes:
            raise SchemaError(f"{struct.name!r} is already a class name")
        self._structs[struct.name] = struct
        self.version += 1

    def get_struct(self, name: str) -> StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise SchemaError(f"unknown struct {name!r}") from None

    def structs(self) -> List[StructType]:
        return list(self._structs.values())

    # -- classes -------------------------------------------------------------

    def add_class(self, cls: OdeClass) -> None:
        """Register a class.  Bases must already be registered.

        Requiring declaration order (as C++ does) makes inheritance cycles
        impossible by construction.
        """
        if cls.name in self._classes:
            raise SchemaError(f"class {cls.name!r} already defined")
        if cls.name in self._structs:
            raise SchemaError(f"{cls.name!r} is already a struct name")
        for base in cls.bases:
            if base not in self._classes:
                raise SchemaError(
                    f"class {cls.name!r} inherits from undefined class {base!r}"
                )
        self._check_member_clashes(cls)
        self._classes[cls.name] = cls
        self._order.append(cls.name)
        self.version += 1

    def drop_class(self, name: str) -> None:
        """Remove a class.  Refuses if any class inherits from or refers to it."""
        self.get_class(name)
        dependants = [sub for sub in self._order if name in self._classes[sub].bases]
        if dependants:
            raise SchemaError(
                f"cannot drop class {name!r}: inherited by {dependants}"
            )
        referrers = [
            other.name
            for other in self._classes.values()
            if other.name != name and name in self._referenced_by(other)
        ]
        if referrers:
            raise SchemaError(
                f"cannot drop class {name!r}: referenced by {referrers}"
            )
        del self._classes[name]
        self._order.remove(name)
        self.version += 1

    def replace_class(self, cls: OdeClass) -> None:
        """Schema evolution: swap in a modified definition of an existing class."""
        if cls.name not in self._classes:
            raise SchemaError(f"cannot replace undefined class {cls.name!r}")
        for base in cls.bases:
            if base not in self._classes:
                raise SchemaError(
                    f"class {cls.name!r} inherits from undefined class {base!r}"
                )
        old = self._classes[cls.name]
        self._classes[cls.name] = cls
        try:
            self._assert_acyclic()
            self._check_member_clashes(cls)
        except SchemaError:
            self._classes[cls.name] = old
            raise
        self.version += 1

    def get_class(self, name: str) -> OdeClass:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_names(self) -> List[str]:
        """Class names in declaration order."""
        return list(self._order)

    def classes(self) -> List[OdeClass]:
        return [self._classes[name] for name in self._order]

    # -- inheritance queries ---------------------------------------------------

    def mro(self, name: str) -> List[str]:
        """C3 linearisation: the class itself first, then its ancestors."""
        self.get_class(name)
        bases_of = {cname: cls.bases for cname, cls in self._classes.items()}
        return c3_linearize(name, bases_of)

    def superclasses(self, name: str) -> List[str]:
        """Direct base classes, in declaration order."""
        return list(self.get_class(name).bases)

    def subclasses(self, name: str) -> List[str]:
        """Direct subclasses, in declaration order."""
        self.get_class(name)
        return [cname for cname in self._order if name in self._classes[cname].bases]

    def ancestors(self, name: str) -> List[str]:
        """All transitive ancestors (excluding the class itself)."""
        return self.mro(name)[1:]

    def descendants(self, name: str) -> List[str]:
        """All transitive subclasses (excluding the class itself)."""
        self.get_class(name)
        found: List[str] = []
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            for sub in self.subclasses(current):
                if sub not in found:
                    found.append(sub)
                    frontier.append(sub)
        return found

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """True if *name* is *ancestor* or inherits from it (reflexive)."""
        if not self.has_class(name) or not self.has_class(ancestor):
            return False
        return ancestor in self.mro(name)

    def roots(self) -> List[str]:
        """Classes with no base class — the DAG sources."""
        return [name for name in self._order if not self._classes[name].bases]

    def edges(self) -> List[Tuple[str, str]]:
        """(base, derived) pairs — the schema window's DAG edges."""
        pairs: List[Tuple[str, str]] = []
        for name in self._order:
            for base in self._classes[name].bases:
                pairs.append((base, name))
        return pairs

    # -- merged member views -----------------------------------------------------

    def all_attributes(self, name: str) -> List[Attribute]:
        """Own + inherited attributes, base-most first, no duplicates."""
        merged: List[Attribute] = []
        seen: Set[str] = set()
        for cname in reversed(self.mro(name)):
            for attr in self._classes[cname].attributes:
                if attr.name not in seen:
                    merged.append(attr)
                    seen.add(attr.name)
        return merged

    def all_methods(self, name: str) -> List[MemberFunction]:
        """Own + inherited member functions; a derived definition overrides."""
        merged: Dict[str, MemberFunction] = {}
        order: List[str] = []
        for cname in reversed(self.mro(name)):
            for meth in self._classes[cname].methods:
                if meth.name not in merged:
                    order.append(meth.name)
                merged[meth.name] = meth
        return [merged[mname] for mname in order]

    def find_attribute(self, class_name: str, attr_name: str) -> Attribute:
        for attr in self.all_attributes(class_name):
            if attr.name == attr_name:
                return attr
        raise SchemaError(f"class {class_name!r} has no attribute {attr_name!r}")

    def reference_attributes(self, name: str) -> List[Attribute]:
        """Attributes whose type mentions a class — the navigation buttons."""
        return [
            attr
            for attr in self.all_attributes(name)
            if any(True for _ in referenced_classes(attr.type_spec))
        ]

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Whole-schema check: every reference target must be a known class."""
        for cls in self._classes.values():
            for target in self._referenced_by(cls):
                if target not in self._classes:
                    raise SchemaError(
                        f"class {cls.name!r} references undefined class {target!r}"
                    )
        self._assert_acyclic()

    def _referenced_by(self, cls: OdeClass) -> Set[str]:
        targets: Set[str] = set()
        for attr in cls.attributes:
            targets.update(referenced_classes(attr.type_spec))
        return targets

    def _assert_acyclic(self) -> None:
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise SchemaError(f"inheritance cycle through class {name!r}")
            visiting.add(name)
            for base in self._classes[name].bases:
                if base in self._classes:
                    visit(base)
            visiting.remove(name)
            done.add(name)

        for name in self._classes:
            visit(name)

    def _check_member_clashes(self, cls: OdeClass) -> None:
        """Reject attributes inherited under one name with different types.

        A diamond (same attribute reached twice from one origin) is fine;
        two *different* attributes with the same name is ambiguous, as in
        C++ without qualification, and we reject it at definition time.
        """
        inherited: Dict[str, Attribute] = {}
        for base in cls.bases:
            for attr in self.all_attributes(base):
                if attr.name in inherited and inherited[attr.name] != attr:
                    raise SchemaError(
                        f"class {cls.name!r} inherits conflicting attributes "
                        f"named {attr.name!r}"
                    )
                inherited[attr.name] = attr
        for attr in cls.attributes:
            if attr.name in inherited and inherited[attr.name] != attr:
                raise SchemaError(
                    f"class {cls.name!r} redeclares inherited attribute "
                    f"{attr.name!r} with a different type"
                )

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "structs": [self._structs[name].to_dict() for name in self._structs],
            "classes": [self._classes[name].to_dict() for name in self._order],
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Schema":
        from repro.ode.types import type_from_dict

        schema = cls()
        for struct_data in data.get("structs", ()):
            struct = type_from_dict(struct_data)
            if not isinstance(struct, StructType):
                raise SchemaError("catalog struct entry is not a struct")
            schema.add_struct(struct)
        for class_data in data.get("classes", ()):
            schema.add_class(OdeClass.from_dict(class_data))
        schema.version = data.get("version", schema.version)
        return schema
