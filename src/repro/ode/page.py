"""Slotted pages.

The object store keeps records in fixed-size slotted pages, the classic
database layout: a small header, a slot directory growing down from the end,
and record payloads growing up from the header.  Records are addressed by
(page number, slot), move within a page under compaction without changing
their slot, and leave a tombstone when deleted.

Layout of a 4096-byte page::

    0..2   slot_count   (u16)  number of slot entries, live or dead
    2..4   free_start   (u16)  offset of first free payload byte
    4..8   reserved
    ...    payloads
    end    slot directory: slot i at PAGE_SIZE - 4*(i+1), (offset u16, len u16)

A slot with offset == 0 is a tombstone (payloads can never start at 0).
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import PageError, PageFullError

PAGE_SIZE = 4096
_HEADER_SIZE = 8
_SLOT_SIZE = 4
_HEADER = struct.Struct(">HHI")
_SLOT = struct.Struct(">HH")
#: More slots than could ever fit means the header bytes are corrupt.
_MAX_SLOTS = (PAGE_SIZE - _HEADER_SIZE) // _SLOT_SIZE


class Page:
    """One mutable slotted page."""

    def __init__(self, data: Optional[bytes] = None):
        if data is None:
            self._buf = bytearray(PAGE_SIZE)
            self._set_header(0, _HEADER_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page must be {PAGE_SIZE} bytes, got {len(data)}")
            self._buf = bytearray(data)
            # An all-zero page (fresh from PageFile.allocate_page, before
            # any writeback) is a valid *empty* page, but its free_start
            # of 0 would place the first payload at offset 0 — which the
            # slot directory cannot address (offset 0 is the tombstone
            # marker).  Normalise so inserts land past the header.
            count, free_start = self._header()
            if count == 0 and free_start < _HEADER_SIZE:
                self._set_header(0, _HEADER_SIZE)
        self.dirty = False

    # -- header --------------------------------------------------------------

    def _header(self) -> tuple:
        count, free_start, _reserved = _HEADER.unpack_from(self._buf, 0)
        return count, free_start

    def _set_header(self, count: int, free_start: int) -> None:
        _HEADER.pack_into(self._buf, 0, count, free_start, 0)

    @property
    def slot_count(self) -> int:
        return self._header()[0]

    # -- slot directory ---------------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return PAGE_SIZE - _SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> tuple:
        count = self.slot_count
        if count > _MAX_SLOTS:
            raise PageError(f"corrupt page header: {count} slots")
        if not 0 <= slot < count:
            raise PageError(f"slot {slot} out of range (page has {count} slots)")
        return _SLOT.unpack_from(self._buf, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buf, self._slot_pos(slot), offset, length)

    # -- space accounting --------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for a new record (payload + one new slot entry)."""
        count, free_start = self._header()
        directory_start = PAGE_SIZE - _SLOT_SIZE * count
        contiguous = directory_start - free_start
        return max(0, contiguous - _SLOT_SIZE)

    def fits(self, length: int) -> bool:
        return length <= self.free_space()

    def is_empty(self) -> bool:
        """True when the page holds no live records."""
        return all(self._read_slot(s)[0] == 0 for s in range(self.slot_count))

    # -- record operations ----------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store *record*, returning its slot number."""
        if not record:
            raise PageError("cannot insert an empty record")
        count, free_start = self._header()
        # Reuse a tombstone slot if one exists (keeps the directory small).
        slot = None
        for candidate in range(count):
            if self._read_slot(candidate)[0] == 0:
                slot = candidate
                break
        needs_new_slot = slot is None
        directory_start = PAGE_SIZE - _SLOT_SIZE * count
        needed = len(record) + (_SLOT_SIZE if needs_new_slot else 0)
        if directory_start - free_start < needed:
            self._compact()
            count, free_start = self._header()
            directory_start = PAGE_SIZE - _SLOT_SIZE * count
            if directory_start - free_start < needed:
                raise PageFullError(
                    f"record of {len(record)} bytes does not fit "
                    f"({directory_start - free_start} free)"
                )
        offset = free_start
        self._buf[offset:offset + len(record)] = record
        if needs_new_slot:
            slot = count
            count += 1
        self._set_header(count, offset + len(record))
        self._write_slot(slot, offset, len(record))
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        offset, length = self._read_slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self._buf[offset:offset + length])

    def delete(self, slot: int) -> None:
        offset, _length = self._read_slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is already deleted")
        self._write_slot(slot, 0, 0)
        self.dirty = True

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record in *slot*, in place when it fits."""
        offset, length = self._read_slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is deleted")
        if len(record) <= length:
            self._buf[offset:offset + len(record)] = record
            self._write_slot(slot, offset, len(record))
            self.dirty = True
            return
        # Grow: tombstone the slot, re-insert, then move back into the
        # original slot so the record's address is stable.  A failed insert
        # may have compacted the page (moving payloads), so on failure the
        # *old* record is re-inserted rather than the stale pointer restored.
        old_record = self.read(slot)
        self._write_slot(slot, 0, 0)
        try:
            temp_slot = self.insert(record)
        except PageFullError:
            temp_slot = self.insert(old_record)
            self._relocate(slot, temp_slot)
            raise
        self._relocate(slot, temp_slot)

    def _relocate(self, slot: int, temp_slot: int) -> None:
        """Move the record in *temp_slot* under the stable *slot* number."""
        new_offset, new_length = self._read_slot(temp_slot)
        if temp_slot != slot:
            self._write_slot(slot, new_offset, new_length)
            self._write_slot(temp_slot, 0, 0)
        self.dirty = True

    def live_slots(self) -> List[int]:
        return [s for s in range(self.slot_count) if self._read_slot(s)[0] != 0]

    def records(self) -> List[bytes]:
        return [self.read(s) for s in self.live_slots()]

    def _compact(self) -> None:
        """Squeeze out dead payload space, preserving slot numbers."""
        live = [(s, self.read(s)) for s in self.live_slots()]
        count = self.slot_count
        self._buf[_HEADER_SIZE:PAGE_SIZE - _SLOT_SIZE * count] = bytes(
            PAGE_SIZE - _SLOT_SIZE * count - _HEADER_SIZE
        )
        offset = _HEADER_SIZE
        for slot, record in live:
            self._buf[offset:offset + len(record)] = record
            self._write_slot(slot, offset, len(record))
            offset += len(record)
        self._set_header(count, offset)
        self.dirty = True

    def to_bytes(self) -> bytes:
        return bytes(self._buf)


#: Largest record a fresh page can hold.
MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE
