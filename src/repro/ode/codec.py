"""Binary object codec.

"To display an object, OdeView calls the Ode object manager to get the
stored representation of the object into an object buffer" (paper §4.2).
This module defines that stored representation: a compact, self-describing
binary encoding of an object's OID, class name, and attribute values.

Self-describing matters: the store can rebuild its object table and cluster
indexes by scanning pages without consulting the schema, and OdeView can
hand a decoded buffer to a display function without knowing the class's
internals — the "principle of separation".

Wire format (all integers big-endian):

* varint  — unsigned LEB128.
* value   — 1 tag byte, then a tag-specific payload.
* object  — magic ``0xOB``, format version varint, OID (string value),
  class name (string value), values (struct value).
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, Dict, Tuple

from repro.errors import CodecError
from repro.ode.oid import Oid

OBJECT_MAGIC = 0xB0
FORMAT_VERSION = 1

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_STRING = 4
_TAG_DATE = 5
_TAG_LIST = 6
_TAG_STRUCT = 7
_TAG_OID = 8
_TAG_BYTES = 9


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint at *offset*; return (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def encode_value(value: Any) -> bytes:
    """Encode one attribute value."""
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + struct.pack(">q", value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_STRING]) + write_varint(len(payload)) + payload
    if isinstance(value, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + write_varint(len(value)) + bytes(value)
    if isinstance(value, datetime.datetime):
        raise CodecError("datetime values are not supported; use datetime.date")
    if isinstance(value, datetime.date):
        return bytes([_TAG_DATE]) + struct.pack(">I", value.toordinal())
    if isinstance(value, Oid):
        payload = str(value).encode("utf-8")
        return bytes([_TAG_OID]) + write_varint(len(payload)) + payload
    if isinstance(value, (list, tuple)):
        out = bytearray([_TAG_LIST])
        out += write_varint(len(value))
        for item in value:
            out += encode_value(item)
        return bytes(out)
    if isinstance(value, dict):
        out = bytearray([_TAG_STRUCT])
        out += write_varint(len(value))
        for key in value:
            if not isinstance(key, str):
                raise CodecError(f"struct keys must be str, got {key!r}")
            key_bytes = key.encode("utf-8")
            out += write_varint(len(key_bytes))
            out += key_bytes
            out += encode_value(value[key])
        return bytes(out)
    raise CodecError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode_value(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value at *offset*; return (value, new offset)."""
    if offset >= len(data):
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_BOOL:
        if offset >= len(data):
            raise CodecError("truncated bool")
        return bool(data[offset]), offset + 1
    if tag == _TAG_INT:
        end = offset + 8
        if end > len(data):
            raise CodecError("truncated int")
        return struct.unpack(">q", data[offset:end])[0], end
    if tag == _TAG_FLOAT:
        end = offset + 8
        if end > len(data):
            raise CodecError("truncated float")
        return struct.unpack(">d", data[offset:end])[0], end
    if tag == _TAG_STRING or tag == _TAG_OID:
        length, offset = read_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated string")
        try:
            text = data[offset:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string payload: {exc}") from exc
        if tag == _TAG_OID:
            return Oid.parse(text), end
        return text, end
    if tag == _TAG_BYTES:
        length, offset = read_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise CodecError("truncated bytes")
        return data[offset:end], end
    if tag == _TAG_DATE:
        end = offset + 4
        if end > len(data):
            raise CodecError("truncated date")
        ordinal = struct.unpack(">I", data[offset:end])[0]
        try:
            return datetime.date.fromordinal(ordinal), end
        except (ValueError, OverflowError) as exc:
            raise CodecError(f"bad date ordinal {ordinal}") from exc
    if tag == _TAG_LIST:
        count, offset = read_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_STRUCT:
        count, offset = read_varint(data, offset)
        record: Dict[str, Any] = {}
        for _ in range(count):
            key_len, offset = read_varint(data, offset)
            end = offset + key_len
            if end > len(data):
                raise CodecError("truncated struct key")
            try:
                key = data[offset:end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"invalid UTF-8 in struct key: {exc}") from exc
            offset = end
            record[key], offset = decode_value(data, offset)
        return record, offset
    raise CodecError(f"unknown value tag {tag}")


def encode_object(oid: Oid, class_name: str, values: Dict[str, Any]) -> bytes:
    """Encode a whole object record (the page-resident form)."""
    out = bytearray([OBJECT_MAGIC])
    out += write_varint(FORMAT_VERSION)
    out += encode_value(str(oid))
    out += encode_value(class_name)
    out += encode_value(values)
    return bytes(out)


def decode_object(data: bytes) -> Tuple[Oid, str, Dict[str, Any]]:
    """Decode a record produced by :func:`encode_object`."""
    if not data or data[0] != OBJECT_MAGIC:
        raise CodecError("not an object record (bad magic)")
    version, offset = read_varint(data, 1)
    if version != FORMAT_VERSION:
        raise CodecError(f"unsupported object format version {version}")
    oid_text, offset = decode_value(data, offset)
    class_name, offset = decode_value(data, offset)
    values, offset = decode_value(data, offset)
    if not isinstance(oid_text, str) or not isinstance(class_name, str):
        raise CodecError("malformed object header")
    if not isinstance(values, dict):
        raise CodecError("object values must decode to a dict")
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after object record")
    return Oid.parse(oid_text), class_name, values
