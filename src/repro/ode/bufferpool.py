"""LRU buffer pool over a :class:`~repro.ode.pagefile.PageFile`.

The object manager never touches the page file directly: it fetches pages
through the pool, which caches a bounded number of decoded
:class:`~repro.ode.page.Page` objects, tracks pins and dirty state, and
writes dirty pages back on eviction or flush.  Hit/miss/eviction counters
feed the storage benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import BufferPoolError
from repro.ode.page import Page
from repro.ode.pagefile import PageFile


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Frame:
    __slots__ = ("page", "pins")

    def __init__(self, page: Page):
        self.page = page
        self.pins = 0


class BufferPool:
    """Fixed-capacity LRU cache of pages, with pin counting."""

    def __init__(self, pagefile: PageFile, capacity: int = 64):
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self._pagefile = pagefile
        self._capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.stats = PoolStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    # -- fetch / pin -----------------------------------------------------------

    def fetch(self, page_no: int, pin: bool = False) -> Page:
        """Return the page, reading it from disk on a miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
        else:
            self.stats.misses += 1
            page = Page(self._pagefile.read_page(page_no))
            frame = _Frame(page)
            self._make_room()
            self._frames[page_no] = frame
        if pin:
            frame.pins += 1
        return frame.page

    def unpin(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is None or frame.pins == 0:
            raise BufferPoolError(f"page {page_no} is not pinned")
        frame.pins -= 1

    def new_page(self) -> int:
        """Allocate a fresh page in the file and cache it."""
        page_no = self._pagefile.allocate_page()
        self._make_room()
        self._frames[page_no] = _Frame(Page())
        self._frames[page_no].page.dirty = True
        return page_no

    def _make_room(self) -> None:
        while len(self._frames) >= self._capacity:
            victim_no = None
            for candidate_no, frame in self._frames.items():
                if frame.pins == 0:
                    victim_no = candidate_no
                    break
            if victim_no is None:
                raise BufferPoolError(
                    f"all {self._capacity} frames pinned; cannot evict"
                )
            frame = self._frames.pop(victim_no)
            if frame.page.dirty:
                self._pagefile.write_page(victim_no, frame.page.to_bytes())
                self.stats.writebacks += 1
            self.stats.evictions += 1

    # -- durability -------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is not None and frame.page.dirty:
            self._pagefile.write_page(page_no, frame.page.to_bytes())
            frame.page.dirty = False
            self.stats.writebacks += 1

    def flush_all(self) -> None:
        for page_no in list(self._frames):
            self.flush_page(page_no)
        self._pagefile.sync()

    def invalidate(self) -> None:
        """Drop all clean cached pages (testing aid; dirty pages flush first)."""
        self.flush_all()
        self._frames.clear()
