"""Policy-driven, instrumented buffer pool over a :class:`~repro.ode.pagefile.PageFile`.

The object manager never touches the page file directly: it fetches pages
through the pool, which caches a bounded number of decoded
:class:`~repro.ode.page.Page` objects, tracks pins and dirty state, and
writes dirty pages back on eviction or flush.

Replacement order is delegated to a pluggable
:class:`~repro.ode.evictionpolicy.EvictionPolicy` (``lru``, ``clock`` or
``2q`` — see that module); the pool keeps the mechanism (frames, pins,
dirty bits, writeback), the policy keeps the ordering.

Two kinds of read-ahead feed cluster scans:

* **explicit hints** — :meth:`prefetch` takes page numbers the store
  already knows a scan will touch (it has the OID → page map);
* **sequential detection** — consecutive miss page numbers trigger a
  bounded read-ahead window (``readahead`` pages), so a raw page sweep
  (e.g. store rebuild at open) streams instead of stuttering.

Prefetched pages are *admitted* (the policy sees ``on_admit``, so under
2Q they land in probation and cannot pollute the protected set) but are
counted as ``stats.prefetches``, not misses; a later fetch of a
prefetched page is an ordinary hit.

Per-pool counters live in :class:`PoolStats` (what the statistics window
shows per database); the same events also feed the process-wide
:mod:`repro.obs` registry (``bufferpool.*``), including a monotonic
page-fetch latency histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, Optional, Union

from repro.errors import BufferPoolError
from repro.obs import Histogram, MetricsRegistry, get_registry
from repro.ode.evictionpolicy import EvictionPolicy, make_policy
from repro.ode.page import Page
from repro.ode.pagefile import PageFile

#: Pages read ahead after two consecutive miss page numbers.
DEFAULT_READAHEAD = 4


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetches: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Frame:
    __slots__ = ("page", "pins", "prefetched")

    def __init__(self, page: Page, prefetched: bool = False):
        self.page = page
        self.pins = 0
        #: Admitted speculatively; the first demand access is the page's
        #: *admission* touch, not a re-reference (see fetch()).
        self.prefetched = prefetched


class BufferPool:
    """Fixed-capacity page cache with pin counting and pluggable eviction.

    ``policy`` is a policy name (``"lru"``, ``"clock"``, ``"2q"``) or an
    :class:`EvictionPolicy` instance; ``readahead`` bounds sequential
    prefetch (0 disables); ``metrics`` overrides the process-wide
    registry (tests isolate with their own).
    """

    def __init__(self, pagefile: PageFile, capacity: int = 64,
                 policy: Union[str, EvictionPolicy, None] = None,
                 readahead: int = DEFAULT_READAHEAD,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        if readahead < 0:
            raise BufferPoolError(f"readahead must be >= 0, got {readahead}")
        self._pagefile = pagefile
        self._capacity = capacity
        self._frames: Dict[int, _Frame] = {}
        self._policy = make_policy(policy, capacity)
        self._readahead = readahead
        self._last_miss: Optional[int] = None
        self.stats = PoolStats()
        registry = metrics if metrics is not None else get_registry()
        self._m_hits = registry.counter("bufferpool.hits")
        self._m_misses = registry.counter("bufferpool.misses")
        self._m_evictions = registry.counter("bufferpool.evictions")
        self._m_writebacks = registry.counter("bufferpool.writebacks")
        self._m_prefetches = registry.counter("bufferpool.prefetches")
        self._m_fetch_time = registry.histogram("bufferpool.fetch_seconds")
        #: Per-pool fetch latency (the registry histogram aggregates all
        #: pools in the process; the statistics window wants this pool's).
        self.fetch_time = Histogram("fetch_seconds")

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy_name(self) -> str:
        return self._policy.name

    @property
    def policy(self) -> EvictionPolicy:
        return self._policy

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._frames

    # -- fetch / pin -----------------------------------------------------------

    def fetch(self, page_no: int, pin: bool = False) -> Page:
        """Return the page, reading it from disk on a miss."""
        start = perf_counter()
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            self._m_hits.inc()
            if frame.prefetched:
                # First demand access of a speculatively-read page is its
                # admission touch — not a re-reference.  Without this, a
                # prefetched scan page would count two accesses (prefetch
                # + read) and 2Q would promote the whole sweep into the
                # protected segment, defeating scan resistance.
                frame.prefetched = False
            else:
                self._policy.on_access(page_no)
        else:
            self.stats.misses += 1
            self._m_misses.inc()
            frame = self._admit(page_no, Page(self._pagefile.read_page(page_no)))
            sequential = (self._last_miss is not None
                          and page_no == self._last_miss + 1)
            self._last_miss = page_no
            if sequential and self._readahead:
                self._prefetch_range(page_no + 1, self._readahead)
        if pin:
            frame.pins += 1
        elapsed = perf_counter() - start
        self.fetch_time.observe(elapsed)
        self._m_fetch_time.observe(elapsed)
        return frame.page

    def unpin(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is None or frame.pins == 0:
            raise BufferPoolError(f"page {page_no} is not pinned")
        frame.pins -= 1

    def new_page(self) -> int:
        """Allocate a fresh page in the file and cache it (dirty).

        The cached frame is dirty from birth: eviction or flush writes a
        well-formed empty page over the zeroes ``allocate_page`` put on
        disk, so a later re-fetch always sees a valid page.
        """
        page_no = self._pagefile.allocate_page()
        page = Page()
        page.dirty = True
        self._admit(page_no, page)
        return page_no

    # -- prefetch ---------------------------------------------------------------

    def prefetch(self, page_nos: Iterable[int]) -> int:
        """Hint: read the given pages into the pool without pinning.

        Out-of-range and already-cached pages are skipped.  Admission
        stops early (without raising) when every frame is pinned, when a
        pool's worth of pages has been read, or when the next admission
        would evict a page prefetched by this very call and not yet
        consumed — read-ahead that cannibalises its own batch is pure
        wasted I/O.  Returns the number of pages actually read.
        """
        loaded = 0
        for page_no in page_nos:
            if loaded >= self._capacity:
                break
            if page_no in self._frames:
                continue
            if not 1 <= page_no < self._pagefile.page_count:
                continue
            if len(self._frames) >= self._capacity:
                victim = self._policy.choose_victim(self._evictable)
                if victim is None or self._frames[victim].prefetched:
                    break
            self._admit(page_no, Page(self._pagefile.read_page(page_no)),
                        prefetched=True)
            self.stats.prefetches += 1
            self._m_prefetches.inc()
            loaded += 1
        return loaded

    def _prefetch_range(self, start: int, window: int) -> None:
        self.prefetch(range(start, start + window))

    # -- admission / eviction -----------------------------------------------------

    def _admit(self, page_no: int, page: Page,
               prefetched: bool = False) -> _Frame:
        self._make_room()
        frame = _Frame(page, prefetched=prefetched)
        self._frames[page_no] = frame
        self._policy.on_admit(page_no)
        return frame

    def _evictable(self, page_no: int) -> bool:
        return self._frames[page_no].pins == 0

    def _make_room(self) -> None:
        while len(self._frames) >= self._capacity:
            victim_no = self._policy.choose_victim(self._evictable)
            if victim_no is None:
                raise BufferPoolError(
                    f"all {self._capacity} frames pinned; cannot evict"
                )
            self._evict(victim_no)

    def _evict(self, page_no: int) -> None:
        frame = self._frames.pop(page_no)
        self._policy.on_remove(page_no)
        if frame.page.dirty:
            # Even a single write-back must be crash-atomic: the victim
            # page can hold committed records that are no longer in the
            # WAL, which a torn in-place overwrite would destroy.
            self._pagefile.write_pages_atomic({page_no: frame.page.to_bytes()})
            self.stats.writebacks += 1
            self._m_writebacks.inc()
        self.stats.evictions += 1
        self._m_evictions.inc()

    # -- durability -------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        frame = self._frames.get(page_no)
        if frame is not None and frame.page.dirty:
            self._pagefile.write_pages_atomic({page_no: frame.page.to_bytes()})
            frame.page.dirty = False
            self.stats.writebacks += 1
            self._m_writebacks.inc()

    def flush_all(self) -> None:
        """Write every dirty page back in one crash-atomic batch.

        All dirty images go through
        :meth:`~repro.ode.pagefile.PageFile.write_pages_atomic`, so a
        crash mid-flush can never leave a torn page: either the
        double-write journal restores the new images at reopen or the
        old images are still intact (and the WAL redoes the logical
        changes).  Frames are marked clean only after the batch lands.
        """
        images = {}
        for page_no, frame in self._frames.items():
            if frame.page.dirty:
                images[page_no] = frame.page.to_bytes()
        self._pagefile.write_pages_atomic(images)
        for page_no in images:
            frame = self._frames.get(page_no)
            if frame is not None:
                frame.page.dirty = False
            self.stats.writebacks += 1
            self._m_writebacks.inc()

    def pinned_pages(self) -> list:
        """Page numbers currently pinned (ascending)."""
        return sorted(no for no, frame in self._frames.items() if frame.pins)

    def invalidate(self) -> int:
        """Drop cached *unpinned* pages after flushing everything.

        Contract: pinned frames are never dropped — a pin is a promise
        that the caller holds a reference to the frame's page object, so
        discarding it would silently corrupt pin accounting (``unpin``
        on a re-read frame would raise).  Pinned frames survive with
        their pin counts intact; everything else (flushed clean first)
        is forgotten.  Returns the number of frames dropped.
        """
        self.flush_all()
        dropped = 0
        for page_no in list(self._frames):
            if self._frames[page_no].pins:
                continue
            del self._frames[page_no]
            self._policy.on_remove(page_no)
            dropped += 1
        self._last_miss = None
        return dropped
