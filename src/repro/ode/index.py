"""Transactional attribute indexes for selection pushdown.

The paper pushes selection predicates down to the object manager (§5.2),
which "uses it to filter objects retrieved from the databases".  A filter
over a cluster is a full scan; Ode's successors added attribute indexes so
common predicates (equality and ranges over scalar attributes) avoid the
scan.  This module provides them:

* :class:`AttributeIndex` — an ordered, *epoch-versioned* index over one
  public scalar attribute of one class.  Every entry carries the commit
  epoch that added it and the commit epoch that removed it, so a probe
  can answer either at head (the live index) or as-of any pinned
  snapshot epoch — a reader inside ``pinned()`` never sees an entry
  newer than its snapshot.
* :class:`IndexManager` — registry + maintenance.  Indexes are NOT
  updated eagerly on object writes: maintenance rides the commit blob.
  The manager registers as the store's apply listener and mutates its
  indexes inside ``_commit_finish`` / ``apply_replicated`` — under the
  store lock, after the pages are applied, *before* the epoch publishes
  — stamping each delta with the commit's epoch.  A transaction that
  aborts (or dies before its fsync) therefore never touches an index,
  and the ``store.commit.index`` fault gate puts the maintenance step
  under the same crash matrix as the pages themselves.  On the rebuild
  paths (recovery, replica resync) the store notifies the manager to
  re-derive everything from committed state.

Entries removed at or below the MVCC watermark (the oldest pinned
epoch) are unreachable by every possible reader and are garbage
collected amortized, mirroring the store's version-chain pruning.

The BENCH_index benchmark measures the scan-vs-probe shape; the
equivalence battery in ``tests/ode/test_index_equivalence.py`` proves
probe ≡ scan at head and under pins.
"""

from __future__ import annotations

import bisect
import datetime
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import SchemaError
from repro.ode.oid import Oid, is_version_cluster
from repro.ode.types import (
    BoolType,
    DateType,
    FloatType,
    IntType,
    StringType,
)

_INDEXABLE_TYPES = (IntType, FloatType, StringType, DateType, BoolType)

#: "Never removed" sentinel epoch; compares above every real epoch.
_LIVE = float("inf")

#: Entry layout: ``[sort_key, number, added_epoch, removed_epoch]``.
#: Mutable on purpose — retiring an entry stamps ``removed_epoch`` in
#: place, which does not disturb the (key, number) sort order.
_KEY = 0
_NUMBER = 1
_ADDED = 2
_REMOVED = 3

_entry_pos = lambda entry: (entry[_KEY], entry[_NUMBER])  # noqa: E731


def _sort_key(value: Any) -> Tuple:
    """A total order over all indexable values (type rank, then value)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, datetime.date):
        return (4, value.toordinal())
    raise SchemaError(f"value {value!r} is not indexable")


class AttributeIndex:
    """Ordered (value, oid-number) index over one attribute of one class.

    Epoch semantics: ``insert``/``remove`` default to epoch 0, which
    makes a hand-built index (unit tests, benchmarks) behave exactly
    like the historical unversioned one — every entry is visible at
    every epoch and at head.  The commit path passes the commit's real
    epoch, and probes pass a snapshot epoch to read as-of.
    """

    #: Compaction thresholds: dead entries are swept only when they are
    #: both numerous and a large fraction of the list, so maintenance
    #: stays amortized O(1) per retired entry.
    _COMPACT_MIN_DEAD = 64

    def __init__(self, class_name: str, attribute: str):
        self.class_name = class_name
        self.attribute = attribute
        #: Readers planning against a pinned snapshot older than the
        #: build cannot use this index: objects deleted before the build
        #: have no entry at all (the build only sees live state), so a
        #: pre-build snapshot would get an incomplete probe.  The
        #: planner falls back to a scan below this epoch.
        self.built_epoch = 0
        self._lock = threading.RLock()
        self._entries: List[list] = []          # sorted by (key, number)
        self._live_of: Dict[int, list] = {}     # number -> live entry
        self._key_counts: Dict[Tuple, int] = {}  # live key -> live entries
        self._dead = 0

    def __len__(self) -> int:
        """Live entries (head cardinality), matching the unversioned API."""
        return len(self._live_of)

    # -- maintenance -----------------------------------------------------------

    def insert(self, number: int, value: Any, epoch: int = 0) -> None:
        key = _sort_key(value)
        with self._lock:
            live = self._live_of.get(number)
            if live is not None:
                if live[_KEY] == key:
                    return  # value unchanged: the existing entry stands
                self._retire(live, epoch)
            entry = [key, number, epoch, _LIVE]
            bisect.insort(self._entries, entry, key=_entry_pos)
            self._live_of[number] = entry
            self._key_counts[key] = self._key_counts.get(key, 0) + 1

    def remove(self, number: int, epoch: int = 0) -> None:
        with self._lock:
            live = self._live_of.get(number)
            if live is not None:
                self._retire(live, epoch)

    def update(self, number: int, value: Any, epoch: int = 0) -> None:
        self.insert(number, value, epoch)

    def _retire(self, entry: list, epoch: int) -> None:
        entry[_REMOVED] = epoch
        del self._live_of[entry[_NUMBER]]
        key = entry[_KEY]
        remaining = self._key_counts.get(key, 0) - 1
        if remaining <= 0:
            self._key_counts.pop(key, None)
        else:
            self._key_counts[key] = remaining
        self._dead += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._live_of.clear()
            self._key_counts.clear()
            self._dead = 0

    def prune(self, watermark: int) -> int:
        """Drop entries no possible reader can see; returns entries freed.

        An entry removed at or below *watermark* (the oldest pinned
        epoch) is invisible to every pin that exists or can still be
        taken.  Compaction is amortized: it only runs when the dead
        entries are both numerous and a big fraction of the list.
        """
        with self._lock:
            if (self._dead < self._COMPACT_MIN_DEAD
                    or self._dead * 2 < len(self._entries)):
                return 0
            before = len(self._entries)
            self._entries = [entry for entry in self._entries
                             if entry[_REMOVED] > watermark]
            self._dead = sum(1 for entry in self._entries
                             if entry[_REMOVED] is not _LIVE)
            return before - len(self._entries)

    # -- probes ----------------------------------------------------------------

    @staticmethod
    def _visible(entry: list, epoch: Optional[int]) -> bool:
        if epoch is None:
            return entry[_REMOVED] is _LIVE
        return entry[_ADDED] <= epoch < entry[_REMOVED]

    def equal(self, value: Any, epoch: Optional[int] = None) -> List[int]:
        """OID numbers whose attribute equals *value*, ascending.

        ``epoch=None`` probes the live index (head); a snapshot epoch
        returns exactly the entries that commit history made visible at
        that epoch.
        """
        key = _sort_key(value)
        with self._lock:
            left = bisect.bisect_left(self._entries, (key, -1),
                                      key=_entry_pos)
            numbers = []
            for entry in self._entries[left:]:
                if entry[_KEY] != key:
                    break
                if self._visible(entry, epoch):
                    numbers.append(entry[_NUMBER])
        return sorted(numbers)

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True,
              epoch: Optional[int] = None) -> List[int]:
        """OID numbers with low <= value <= high (bounds optional)."""
        with self._lock:
            start = 0
            end = len(self._entries)
            if low is not None:
                low_key = _sort_key(low)
                start = (bisect.bisect_left(self._entries, (low_key, -1),
                                            key=_entry_pos)
                         if include_low
                         else bisect.bisect_right(
                             self._entries, (low_key, float("inf")),
                             key=_entry_pos))
            if high is not None:
                high_key = _sort_key(high)
                end = (bisect.bisect_right(self._entries,
                                           (high_key, float("inf")),
                                           key=_entry_pos)
                       if include_high
                       else bisect.bisect_left(self._entries, (high_key, -1),
                                               key=_entry_pos))
            numbers = [entry[_NUMBER] for entry in self._entries[start:end]
                       if self._visible(entry, epoch)]
        return sorted(numbers)

    # -- statistics ------------------------------------------------------------

    def distinct_count(self) -> int:
        """Distinct live keys (head), maintained incrementally."""
        with self._lock:
            return len(self._key_counts)

    def live_bounds(self) -> Optional[Tuple[Tuple, Tuple]]:
        """(min, max) sort keys over live entries, or None when empty.

        Scans inward past dead entries at the ends; pruning keeps that
        amortized short.
        """
        with self._lock:
            lo = hi = None
            for entry in self._entries:
                if entry[_REMOVED] is _LIVE:
                    lo = entry[_KEY]
                    break
            for entry in reversed(self._entries):
                if entry[_REMOVED] is _LIVE:
                    hi = entry[_KEY]
                    break
            if lo is None or hi is None:
                return None
            return lo, hi


class IndexManager:
    """Creates, maintains, and serves attribute indexes for one database.

    Maintenance is commit-driven: the owning :class:`ObjectManager`
    registers :meth:`apply_effects` as the store's apply listener and
    :meth:`on_store_rebuilt` as its rebuild listener.  Nothing here is
    called from the object-write path any more — an uncommitted write
    is invisible to every index.
    """

    def __init__(self, manager):
        self._manager = manager  # ObjectManager; kept loose to avoid a cycle
        self._indexes: Dict[Tuple[str, str], AttributeIndex] = {}
        self._by_cluster: Dict[str, List[AttributeIndex]] = {}
        self._lock = threading.RLock()
        from repro.core.statistics import StatisticsCatalog

        self.statistics = StatisticsCatalog(manager)

    # -- lifecycle ------------------------------------------------------------

    def create_index(self, class_name: str, attribute: str) -> AttributeIndex:
        """Create (and build) an index over a public scalar attribute.

        The build runs under the store lock so it cannot interleave with
        a commit's apply step: the index captures exactly one committed
        state, stamped as its ``built_epoch``.
        """
        key = (class_name, attribute)
        with self._lock:
            if key in self._indexes:
                raise SchemaError(
                    f"index on {class_name}.{attribute} already exists")
        attr = self._manager.schema.find_attribute(class_name, attribute)
        if not attr.is_public:
            raise SchemaError(
                f"cannot index private attribute {class_name}.{attribute}")
        if not isinstance(attr.type_spec, _INDEXABLE_TYPES):
            raise SchemaError(
                f"attribute {class_name}.{attribute} has unindexable type "
                f"{type(attr.type_spec).__name__}")
        index = AttributeIndex(class_name, attribute)
        with self._manager.store.lock:
            with self._lock:
                if key in self._indexes:
                    raise SchemaError(
                        f"index on {class_name}.{attribute} already exists")
                self._indexes[key] = index
                self._by_cluster.setdefault(class_name, []).append(index)
            self.rebuild(class_name, attribute)
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        with self._lock:
            index = self._indexes.pop((class_name, attribute), None)
            if index is None:
                raise SchemaError(f"no index on {class_name}.{attribute}")
            siblings = self._by_cluster.get(class_name, [])
            if index in siblings:
                siblings.remove(index)
            if not siblings:
                self._by_cluster.pop(class_name, None)
            self.statistics.forget_attribute(class_name, attribute)

    def get(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """The index serving (class, attribute), consulting superclasses.

        An index on a base class's attribute does NOT cover subclass
        clusters (clusters are per-class, §2), so only exact class matches
        are served.
        """
        with self._lock:
            return self._indexes.get((class_name, attribute))

    def has_index(self, class_name: str, attribute: str) -> bool:
        with self._lock:
            return (class_name, attribute) in self._indexes

    def indexes(self) -> List[AttributeIndex]:
        with self._lock:
            return list(self._indexes.values())

    def rebuild(self, class_name: str, attribute: str) -> None:
        """Re-derive one index from committed state (under the store lock).

        Entries are stamped epoch 0 — visible at every epoch — and the
        index's ``built_epoch`` advances to the store's current epoch:
        pins older than the rebuild fall back to scans (deletes older
        than the build left no entries to version).
        """
        index = self._indexes[(class_name, attribute)]
        store = self._manager.store
        with store.lock:
            index.clear()
            for buffer in self._manager.select(class_name):
                index.insert(buffer.oid.number, buffer.values.get(attribute))
            index.built_epoch = store.epoch
        self.statistics.observe_index(index)

    # -- commit-driven maintenance (store listeners) ---------------------------

    def apply_effects(self, epoch: int,
                      effects: Dict[Oid, Optional[bytes]],
                      existed: Dict[Oid, bool]) -> None:
        """Apply one commit's net effect to every covering index.

        Runs inside the store's commit path — under the store lock,
        after the pages are applied, before the epoch publishes — so a
        head reader cannot observe the index ahead of the data, and a
        pinned reader filters these entries out by epoch.  *existed*
        says whether each OID was present before this commit (drives
        cardinality statistics).
        """
        from repro.ode.codec import decode_object

        touched: List[AttributeIndex] = []
        with self._lock:
            for oid, payload in effects.items():
                cluster = oid.cluster
                if is_version_cluster(cluster):
                    continue
                was_there = existed.get(oid, False)
                if payload is None:
                    if was_there:
                        self.statistics.adjust_cardinality(cluster, -1)
                elif not was_there:
                    self.statistics.adjust_cardinality(cluster, +1)
                indexes = self._by_cluster.get(cluster)
                if not indexes:
                    continue
                if payload is None:
                    for index in indexes:
                        index.remove(oid.number, epoch)
                else:
                    _oid, _class_name, values = decode_object(payload)
                    for index in indexes:
                        index.insert(oid.number,
                                     values.get(index.attribute), epoch)
                touched.extend(index for index in indexes
                               if index not in touched)
        if touched:
            watermark = self._manager.store.watermark
            for index in touched:
                index.prune(watermark)
                self.statistics.observe_index(index)

    def on_store_rebuilt(self) -> None:
        """Re-derive everything after wholesale state replacement.

        The store calls this after recovery (``_recover_volatile``) and
        replica resync (``install_replicated``): the incremental deltas
        the indexes were built from may describe commits the rebuild
        resolved the other way, so committed state is the only truth
        left.
        """
        self.statistics.invalidate()
        with self._lock:
            keys = list(self._indexes)
        for class_name, attribute in keys:
            self.rebuild(class_name, attribute)

    # -- compatibility shims ---------------------------------------------------

    def definitions(self) -> List[Tuple[str, str]]:
        """(class, attribute) pairs, for snapshot shipping/persistence."""
        with self._lock:
            return sorted(self._indexes)

    def verify_against(self, class_name: str, attribute: str,
                       members: Iterable) -> List[str]:
        """Disagreements between one index and its base cluster (head).

        For the correctness battery: *members* is the committed cluster
        content as ``(number, value)`` pairs; returns human-readable
        mismatch descriptions (empty = exact agreement).
        """
        index = self._indexes[(class_name, attribute)]
        problems: List[str] = []
        expected: Dict[int, Any] = dict(members)
        live = set(index.range())
        missing = sorted(set(expected) - live)
        stray = sorted(live - set(expected))
        problems.extend(f"missing entry for number {n}" for n in missing)
        problems.extend(f"stray entry for number {n}" for n in stray)
        for number, value in expected.items():
            if number in live and number not in set(index.equal(value)):
                problems.append(
                    f"number {number} indexed under the wrong key "
                    f"(expected {value!r})")
        return problems
