"""Attribute indexes for selection pushdown.

The paper pushes selection predicates down to the object manager (§5.2),
which "uses it to filter objects retrieved from the databases".  A filter
over a cluster is a full scan; Ode's successors added attribute indexes so
common predicates (equality and ranges over scalar attributes) avoid the
scan.  This module provides them:

* :class:`AttributeIndex` — an ordered index over one public scalar
  attribute of one class: a sorted list of ``(value, oid number)`` pairs
  supporting equality and range probes via binary search.
* :class:`IndexManager` — registry + maintenance: indexes are updated on
  every object create/update/delete, and can be rebuilt from the cluster.

The ABL-INDEX benchmark measures the scan-vs-probe shape.
"""

from __future__ import annotations

import bisect
import datetime
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SchemaError
from repro.ode.oid import Oid
from repro.ode.types import (
    BoolType,
    DateType,
    FloatType,
    IntType,
    StringType,
)

_INDEXABLE_TYPES = (IntType, FloatType, StringType, DateType, BoolType)


def _sort_key(value: Any) -> Tuple:
    """A total order over all indexable values (type rank, then value)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, datetime.date):
        return (4, value.toordinal())
    raise SchemaError(f"value {value!r} is not indexable")


class AttributeIndex:
    """Ordered (value, oid-number) index over one attribute of one class."""

    def __init__(self, class_name: str, attribute: str):
        self.class_name = class_name
        self.attribute = attribute
        self._entries: List[Tuple[Tuple, int]] = []  # (sort key, number)
        self._value_of: Dict[int, Tuple] = {}        # number -> sort key

    def __len__(self) -> int:
        return len(self._entries)

    # -- maintenance -----------------------------------------------------------

    def insert(self, number: int, value: Any) -> None:
        if number in self._value_of:
            self.remove(number)
        key = _sort_key(value)
        bisect.insort(self._entries, (key, number))
        self._value_of[number] = key

    def remove(self, number: int) -> None:
        key = self._value_of.pop(number, None)
        if key is None:
            return
        position = bisect.bisect_left(self._entries, (key, number))
        if (position < len(self._entries)
                and self._entries[position] == (key, number)):
            self._entries.pop(position)

    def update(self, number: int, value: Any) -> None:
        self.insert(number, value)

    def clear(self) -> None:
        self._entries.clear()
        self._value_of.clear()

    # -- probes ----------------------------------------------------------------

    def equal(self, value: Any) -> List[int]:
        """OID numbers whose attribute equals *value*, ascending."""
        key = _sort_key(value)
        left = bisect.bisect_left(self._entries, (key, -1))
        numbers = []
        for entry_key, number in self._entries[left:]:
            if entry_key != key:
                break
            numbers.append(number)
        return sorted(numbers)

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> List[int]:
        """OID numbers with low <= value <= high (bounds optional)."""
        start = 0
        end = len(self._entries)
        if low is not None:
            low_key = _sort_key(low)
            start = (bisect.bisect_left(self._entries, (low_key, -1))
                     if include_low
                     else bisect.bisect_right(self._entries,
                                              (low_key, float("inf"))))
        if high is not None:
            high_key = _sort_key(high)
            end = (bisect.bisect_right(self._entries,
                                       (high_key, float("inf")))
                   if include_high
                   else bisect.bisect_left(self._entries, (high_key, -1)))
        return sorted(number for _key, number in self._entries[start:end])


class IndexManager:
    """Creates, maintains, and serves attribute indexes for one database."""

    def __init__(self, manager):
        self._manager = manager  # ObjectManager; kept loose to avoid a cycle
        self._indexes: Dict[Tuple[str, str], AttributeIndex] = {}

    # -- lifecycle ------------------------------------------------------------

    def create_index(self, class_name: str, attribute: str) -> AttributeIndex:
        """Create (and build) an index over a public scalar attribute."""
        key = (class_name, attribute)
        if key in self._indexes:
            raise SchemaError(
                f"index on {class_name}.{attribute} already exists")
        attr = self._manager.schema.find_attribute(class_name, attribute)
        if not attr.is_public:
            raise SchemaError(
                f"cannot index private attribute {class_name}.{attribute}")
        if not isinstance(attr.type_spec, _INDEXABLE_TYPES):
            raise SchemaError(
                f"attribute {class_name}.{attribute} has unindexable type "
                f"{type(attr.type_spec).__name__}")
        index = AttributeIndex(class_name, attribute)
        self._indexes[key] = index
        self.rebuild(class_name, attribute)
        return index

    def drop_index(self, class_name: str, attribute: str) -> None:
        if (class_name, attribute) not in self._indexes:
            raise SchemaError(f"no index on {class_name}.{attribute}")
        del self._indexes[(class_name, attribute)]

    def get(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """The index serving (class, attribute), consulting superclasses.

        An index on a base class's attribute does NOT cover subclass
        clusters (clusters are per-class, §2), so only exact class matches
        are served.
        """
        return self._indexes.get((class_name, attribute))

    def has_index(self, class_name: str, attribute: str) -> bool:
        return (class_name, attribute) in self._indexes

    def indexes(self) -> List[AttributeIndex]:
        return list(self._indexes.values())

    def rebuild(self, class_name: str, attribute: str) -> None:
        index = self._indexes[(class_name, attribute)]
        index.clear()
        for buffer in self._manager.select(class_name):
            index.insert(buffer.oid.number, buffer.values[attribute])

    # -- maintenance hooks (called by the object manager) -------------------------

    def on_new_object(self, oid: Oid, values) -> None:
        for (class_name, attribute), index in self._indexes.items():
            if class_name == oid.cluster:
                index.insert(oid.number, values[attribute])

    def on_update(self, oid: Oid, values) -> None:
        for (class_name, attribute), index in self._indexes.items():
            if class_name == oid.cluster:
                index.update(oid.number, values[attribute])

    def on_delete(self, oid: Oid) -> None:
        for (class_name, _attribute), index in self._indexes.items():
            if class_name == oid.cluster:
                index.remove(oid.number)
