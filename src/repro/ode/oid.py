"""Object identifiers.

Every persistent Ode object is identified by an :class:`Oid`: the database it
lives in, the cluster (named after the object's class — paper §2), and a
monotonically increasing number unique within the cluster.  OIDs are
immutable, hashable, orderable (cluster iteration order is OID order), and
round-trip through a compact string form used by buttons of window kind
``OID`` (paper §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OdeError


#: Suffix marking a shadow cluster that stores snapshots of versioned
#: objects (see :mod:`repro.ode.versions`).  Shadow clusters are an
#: implementation detail: public listings filter them out.
VERSION_CLUSTER_SUFFIX = "#v"


def version_cluster(class_name: str) -> str:
    """Name of the shadow cluster holding versions of ``class_name``."""
    return class_name + VERSION_CLUSTER_SUFFIX


def is_version_cluster(cluster: str) -> bool:
    """True when ``cluster`` is a shadow version cluster."""
    return cluster.endswith(VERSION_CLUSTER_SUFFIX)


@dataclass(frozen=True, order=True)
class Oid:
    """Identity of one persistent object."""

    database: str
    cluster: str
    number: int

    def __post_init__(self) -> None:
        if not self.database or not self.cluster:
            raise OdeError(f"Oid needs non-empty database and cluster: {self!r}")
        if self.number < 0:
            raise OdeError(f"Oid number must be non-negative: {self!r}")
        if ":" in self.database or ":" in self.cluster:
            raise OdeError(f"Oid parts must not contain ':': {self!r}")

    def __str__(self) -> str:
        return f"{self.database}:{self.cluster}:{self.number}"

    @classmethod
    def parse(cls, text: str) -> "Oid":
        """Inverse of ``str(oid)``."""
        parts = text.split(":")
        if len(parts) != 3:
            raise OdeError(f"malformed OID string {text!r}")
        database, cluster, number = parts
        try:
            return cls(database, cluster, int(number))
        except ValueError as exc:
            raise OdeError(f"malformed OID string {text!r}") from exc
