"""Clusters and cluster cursors.

"Persistent objects of the same type are grouped together into a cluster;
the name of a cluster is the same as that of the corresponding type" (paper
§2).  The object-set window's control panel — ``reset`` / ``next`` /
``previous`` (§3.2) — is a cursor over a cluster, optionally filtered by a
selection predicate pushed down from OdeView (§5.2).

The cursor walks OIDs lazily in OID order; a predicate is evaluated per
object during the walk, so non-matching objects are skipped without being
surfaced (the object manager supplies the evaluation callback, keeping this
module free of schema knowledge).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional

from repro.errors import StorageError
from repro.ode.oid import Oid
from repro.ode.store import ObjectStore

MatchFn = Callable[[Oid], bool]


class Cluster:
    """Read view of one class's persistent extent."""

    def __init__(self, store: ObjectStore, database: str, class_name: str):
        self._store = store
        self.database = database
        self.class_name = class_name

    def __len__(self) -> int:
        return self._store.cluster_size(self.class_name)

    def numbers(self) -> List[int]:
        return self._store.cluster_numbers(self.class_name)

    def oid(self, number: int) -> Oid:
        return Oid(self.database, self.class_name, number)

    def oids(self) -> List[Oid]:
        return [self.oid(n) for n in self.numbers()]

    def first(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[0]) if numbers else None

    def last(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[-1]) if numbers else None

    def after(self, number: int) -> Optional[Oid]:
        """The next live OID strictly after *number*, if any."""
        numbers = self.numbers()
        index = bisect.bisect_right(numbers, number)
        return self.oid(numbers[index]) if index < len(numbers) else None

    def before(self, number: int) -> Optional[Oid]:
        """The previous live OID strictly before *number*, if any."""
        numbers = self.numbers()
        index = bisect.bisect_left(numbers, number) - 1
        return self.oid(numbers[index]) if index >= 0 else None


class ClusterCursor:
    """Sequencing cursor: the semantics behind reset/next/previous buttons.

    A fresh (or reset) cursor sits *before* the first object; ``next`` then
    yields the first match.  ``previous`` at the front and ``next`` past the
    end return ``None`` and leave the position unchanged, matching how the
    paper's control panel behaves at cluster boundaries.
    """

    def __init__(self, cluster: Cluster, matches: Optional[MatchFn] = None):
        self._cluster = cluster
        self._matches = matches
        self._position: Optional[int] = None  # current OID number

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    def reset(self) -> None:
        self._position = None

    def current(self) -> Optional[Oid]:
        if self._position is None:
            return None
        return self._cluster.oid(self._position)

    def _accept(self, oid: Oid) -> bool:
        if self._matches is None:
            return True
        return self._matches(oid)

    def next(self) -> Optional[Oid]:
        """Advance to the next matching object; ``None`` at the end."""
        candidate = (
            self._cluster.first()
            if self._position is None
            else self._cluster.after(self._position)
        )
        while candidate is not None:
            if self._accept(candidate):
                self._position = candidate.number
                return candidate
            candidate = self._cluster.after(candidate.number)
        return None

    def previous(self) -> Optional[Oid]:
        """Step back to the previous matching object; ``None`` at the front."""
        if self._position is None:
            return None
        candidate = self._cluster.before(self._position)
        while candidate is not None:
            if self._accept(candidate):
                self._position = candidate.number
                return candidate
            candidate = self._cluster.before(candidate.number)
        return None

    def seek(self, oid: Oid) -> None:
        """Position the cursor on a specific object (used by tests/joins)."""
        if oid.cluster != self._cluster.class_name:
            raise StorageError(
                f"cursor over {self._cluster.class_name!r} cannot seek to {oid}"
            )
        self._position = oid.number
