"""Clusters and cluster cursors.

"Persistent objects of the same type are grouped together into a cluster;
the name of a cluster is the same as that of the corresponding type" (paper
§2).  The object-set window's control panel — ``reset`` / ``next`` /
``previous`` (§3.2) — is a cursor over a cluster, optionally filtered by a
selection predicate pushed down from OdeView (§5.2).

The cursor walks OIDs lazily in OID order; a predicate is evaluated per
object during the walk, so non-matching objects are skipped without being
surfaced (the object manager supplies the evaluation callback, keeping this
module free of schema knowledge).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Union

from repro.errors import StorageError
from repro.ode.oid import Oid
from repro.ode.store import ObjectStore, Snapshot

MatchFn = Callable[[Oid], bool]

#: Anything a cluster can read its membership through: the live store
#: (a *live* view that sees every commit as it lands) or a pinned
#: :class:`~repro.ode.store.Snapshot` (one consistent epoch).
ClusterReader = Union[ObjectStore, Snapshot]


class Cluster:
    """Read view of one class's persistent extent.

    Constructed over the store itself the view is live; constructed over
    a snapshot it is frozen at the snapshot's epoch — same interface,
    the object manager picks whichever the caller asked for.
    """

    def __init__(self, store: ClusterReader, database: str, class_name: str):
        self._store = store
        self.database = database
        self.class_name = class_name

    def __len__(self) -> int:
        return self._store.cluster_size(self.class_name)

    def numbers(self) -> List[int]:
        return self._store.cluster_numbers(self.class_name)

    def oid(self, number: int) -> Oid:
        return Oid(self.database, self.class_name, number)

    def oids(self) -> List[Oid]:
        return [self.oid(n) for n in self.numbers()]

    def first(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[0]) if numbers else None

    def last(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[-1]) if numbers else None

    def after(self, number: int) -> Optional[Oid]:
        """The next live OID strictly after *number*, if any."""
        numbers = self.numbers()
        index = bisect.bisect_right(numbers, number)
        return self.oid(numbers[index]) if index < len(numbers) else None

    def before(self, number: int) -> Optional[Oid]:
        """The previous live OID strictly before *number*, if any."""
        numbers = self.numbers()
        index = bisect.bisect_left(numbers, number) - 1
        return self.oid(numbers[index]) if index >= 0 else None


class ClusterCursor:
    """Sequencing cursor: the semantics behind reset/next/previous buttons.

    A fresh (or reset) cursor sits *before* the first object; ``next`` then
    yields the first match.  ``previous`` at the front and ``next`` past the
    end return ``None`` and leave the position unchanged, matching how the
    paper's control panel behaves at cluster boundaries.
    """

    def __init__(self, cluster: Cluster, matches: Optional[MatchFn] = None):
        self._cluster = cluster
        self._matches = matches
        self._position: Optional[int] = None  # current OID number

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    def reset(self) -> None:
        self._position = None

    def current(self) -> Optional[Oid]:
        if self._position is None:
            return None
        return self._cluster.oid(self._position)

    def _accept(self, oid: Oid) -> bool:
        if self._matches is None:
            return True
        return self._matches(oid)

    def next(self) -> Optional[Oid]:
        """Advance to the next matching object; ``None`` at the end."""
        candidate = (
            self._cluster.first()
            if self._position is None
            else self._cluster.after(self._position)
        )
        while candidate is not None:
            if self._accept(candidate):
                self._position = candidate.number
                return candidate
            candidate = self._cluster.after(candidate.number)
        return None

    def previous(self) -> Optional[Oid]:
        """Step back to the previous matching object; ``None`` at the front."""
        if self._position is None:
            return None
        candidate = self._cluster.before(self._position)
        while candidate is not None:
            if self._accept(candidate):
                self._position = candidate.number
                return candidate
            candidate = self._cluster.before(candidate.number)
        return None

    def seek(self, oid: Oid) -> None:
        """Position the cursor on a specific object (used by tests/joins)."""
        if oid.cluster != self._cluster.class_name:
            raise StorageError(
                f"cursor over {self._cluster.class_name!r} cannot seek to {oid}"
            )
        self._position = oid.number

    def close(self) -> None:
        """Release cursor resources (no-op for a live-view cursor)."""


class SnapshotCursor(ClusterCursor):
    """A sequencing cursor that owns the snapshot it walks.

    The whole ``next``/``previous`` walk renders one commit epoch —
    concurrent commits never make an in-progress walk skip or repeat.
    ``reset`` additionally slides the snapshot forward to the current
    epoch, matching the paper's reset button: back to the top, seeing
    the database as it is now.  ``close`` releases the pinned epoch
    (an abandoned cursor's snapshot unpins itself on collection).
    """

    def __init__(self, cluster: Cluster, matches: Optional[MatchFn] = None,
                 snapshot: Optional[Snapshot] = None):
        super().__init__(cluster, matches)
        self._snapshot = snapshot

    @property
    def epoch(self) -> Optional[int]:
        return self._snapshot.epoch if self._snapshot is not None else None

    def reset(self) -> None:
        if self._snapshot is not None and not self._snapshot.closed:
            self._snapshot.refresh()
        super().reset()

    def close(self) -> None:
        if self._snapshot is not None:
            self._snapshot.close()
