"""Write-ahead log.

The store logs logical operations (object put/delete) per transaction,
forces the log at commit, applies the changes to pages, and truncates the
log at checkpoint.  On open, any transactions that committed in the log but
were not checkpointed are replayed — so a crash between commit and page
write-back loses nothing, and a crash mid-transaction leaves no trace.

Record format: ``length u32 | crc32 u32 | payload``, where the payload is a
self-describing codec struct.  A torn final record (crash during append) is
detected by the CRC and everything from it onward is ignored.

Flush contract.  ``append`` returns with the frame *flushed to the OS*
(``file.flush``, not ``fsync``): the bytes are visible to any reader of
the file — including :meth:`WriteAheadLog.records` and a simulated
crash, which preserves everything flushed — but they are **not durable**
against a real power loss until :meth:`sync` or :meth:`group_sync` runs.
Callers passing ``sync=False`` may therefore rely on *ordering* (earlier
appends are never reordered after later ones; the log is written by one
handle under one lock) but must not rely on durability until a sync
covers their append.  The group-commit coordinator below is built on
exactly this contract: operation records are appended unsynced as they
happen, and only the batched COMMIT records pay an fsync.

Fault injection.  Like :class:`~repro.ode.pagefile.PageFile`, the log
takes an optional ``fault_gate`` (see :mod:`repro.faultsim.plan` for
the contract) consulted at its stable-storage sites: ``wal.append``
(the frame bytes about to be written — a gate can tear the frame at any
byte, which is how the torn-tail recovery path is tortured; a batched
group-commit append crosses this site once with the whole batch blob),
``wal.sync`` (checkpoint/recovery syncs) and ``wal.group.sync`` (the
single fsync that makes a group-commit batch durable).  ``None`` (the
default) costs one ``is None`` test.
"""

from __future__ import annotations

import contextlib
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import GroupCommitError, StorageError, WalError
from repro.obs import get_registry
from repro.obs.metrics import Histogram
from repro.ode.codec import decode_value, encode_value

_FRAME = struct.Struct(">II")

OP_BEGIN = "begin"
OP_PUT = "put"
OP_DELETE = "delete"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_CHECKPOINT = "checkpoint"
OP_TERM = "term"

_KNOWN_OPS = {OP_BEGIN, OP_PUT, OP_DELETE, OP_COMMIT, OP_ABORT, OP_CHECKPOINT,
              OP_TERM}


@dataclass(frozen=True)
class WalRecord:
    """One logical log record.

    ``epoch`` is meaningful on COMMIT and CHECKPOINT records: the
    store's commit epoch as of that record, used to recover the epoch
    counter on reopen.  Logs written before MVCC carry no epoch field
    and decode as epoch 0.

    ``term`` is the fenced primary term: minted durably by a TERM
    record at promotion, stamped on every COMMIT (the term the commit
    was accepted under — this is what replication units carry on the
    wire) and on CHECKPOINT records (so the counter survives log
    truncation).  Logs written before promotion existed decode as
    term 0, which the store treats as term 1.
    """

    op: str
    txid: int
    oid: str = ""
    payload: bytes = b""
    epoch: int = 0
    term: int = 0

    def to_value(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "txid": self.txid,
            "oid": self.oid,
            "payload": self.payload,
            "epoch": self.epoch,
            "term": self.term,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "WalRecord":
        op = value.get("op", "")
        if op not in _KNOWN_OPS:
            raise WalError(f"unknown WAL op {op!r}")
        payload = value.get("payload", b"")
        if isinstance(payload, str):
            # logs written before the codec grew a native bytes tag carried
            # the payload as latin-1 text
            payload = payload.encode("latin-1")
        return cls(
            op=op,
            txid=int(value.get("txid", 0)),
            oid=value.get("oid", ""),
            payload=payload,
            epoch=int(value.get("epoch", 0)),
            term=int(value.get("term", 0)),
        )


class WriteAheadLog:
    """Append-only log with CRC framing and torn-tail recovery."""

    def __init__(self, path: Union[str, Path],
                 fault_gate: Optional[Callable[..., Any]] = None):
        self.path = Path(path)
        self._fault_gate = fault_gate
        self._fh = open(self.path, "a+b")
        # One handle, one writer at a time: concurrent committers go
        # through the group-commit coordinator, but operation records
        # from a staging writer can race the leader's batch append, so
        # every file-touching method serializes here.  Reentrant:
        # checkpoint() appends its own CHECKPOINT record.
        self._io = threading.RLock()
        self._fh.seek(0, os.SEEK_END)
        # Cached log size, maintained at every append/truncate.  It
        # exists so size_bytes() — polled by every committer to drive
        # checkpoint scheduling — never takes the I/O lock: that lock is
        # held across the group-commit fsync, and a seek-to-end behind
        # it was a measurable stall for every waiting writer.
        self._size = self._fh.tell()

    # -- append ------------------------------------------------------------------

    @staticmethod
    def encode_frame(record: WalRecord) -> bytes:
        """The exact on-disk frame (header + CRC + codec payload) for a record."""
        payload = encode_value(record.to_value())
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, record: WalRecord, sync: bool = False) -> None:
        """Append one record.

        Returns with the frame flushed to the OS — immediately visible
        to :meth:`records` and preserved by a simulated crash — but not
        durable until a :meth:`sync`/:meth:`group_sync` covers it (see
        the module docstring's flush contract).  ``sync=True`` pays that
        fsync before returning.
        """
        frame = self.encode_frame(record)
        with self._io:
            self._fh.seek(0, os.SEEK_END)
            if self._fault_gate is None:
                self._fh.write(frame)
                self._fh.flush()
            else:
                self._fault_gate("wal.append", frame, self._append_through)
            self._size += len(frame)
            if sync:
                self.sync()

    def append_batch(self, records: List[WalRecord]) -> None:
        """Append several records as one contiguous write.

        The frames are concatenated and cross the ``wal.append`` fault
        gate as a *single* blob — one write, one crash point — which is
        what makes a group-commit batch tear like one record sequence: a
        fault can cut the blob at any byte, and recovery keeps exactly
        the intact frame prefix.  Flushed on return, durable only after
        :meth:`group_sync`.
        """
        if not records:
            return
        blob = b"".join(self.encode_frame(record) for record in records)
        with self._io:
            self._fh.seek(0, os.SEEK_END)
            if self._fault_gate is None:
                self._fh.write(blob)
                self._fh.flush()
            else:
                self._fault_gate("wal.append", blob, self._append_through)
            self._size += len(blob)

    def _append_through(self, frame: bytes) -> None:
        """Gated append continuation: write and flush, so a torn frame
        injected by the gate is on disk when the simulated crash hits."""
        self._fh.write(frame)
        self._fh.flush()

    def sync(self) -> None:
        with self._io:
            if self._fault_gate is None:
                self._do_sync()
            else:
                self._fault_gate("wal.sync", None, self._do_sync)

    def group_sync(self) -> None:
        """The group-commit fsync: same effect as :meth:`sync`, its own
        fault-gate site (``wal.group.sync``) so crash schedules can
        target the instant a whole batch becomes durable."""
        with self._io:
            if self._fault_gate is None:
                self._do_sync()
            else:
                self._fault_gate("wal.group.sync", None, self._do_sync)

    def _do_sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def size_bytes(self) -> int:
        """Current log size (appended bytes; drives checkpoint scheduling).

        Deliberately lock-free: reads the cached counter (a plain int —
        atomic to read in CPython) so committers polling for the
        checkpoint threshold never queue behind a leader's fsync.
        """
        return self._size

    # -- replay --------------------------------------------------------------------

    def records(self) -> Iterator[WalRecord]:
        """Yield every intact record; stop silently at a torn tail.

        Reading is a pure function of the on-disk file: ``append`` flushes
        as it writes, so iteration never needs to touch (or flush) the
        writer handle as a side effect.
        """
        with self._io:
            with open(self.path, "rb") as fh:
                data = fh.read()
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                return  # torn tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # torn/corrupt tail
            value, consumed = decode_value(payload, 0)
            if consumed != length or not isinstance(value, dict):
                raise WalError("corrupt WAL record body")
            yield WalRecord.from_value(value)
            offset = end

    def committed_operations(self) -> List[WalRecord]:
        """PUT/DELETE records of committed transactions since the last checkpoint."""
        pending: Dict[int, List[WalRecord]] = {}
        committed: List[WalRecord] = []
        for record in self.records():
            if record.op == OP_CHECKPOINT:
                pending.clear()
                committed.clear()
            elif record.op == OP_BEGIN:
                pending[record.txid] = []
            elif record.op in (OP_PUT, OP_DELETE):
                pending.setdefault(record.txid, []).append(record)
            elif record.op == OP_COMMIT:
                committed.extend(pending.pop(record.txid, ()))
            elif record.op == OP_ABORT:
                pending.pop(record.txid, None)
        return committed

    def committed_units(
            self, after_epoch: int,
    ) -> Tuple[List[Tuple[int, List[WalRecord]]], Optional[int]]:
        """Whole committed transactions newer than *after_epoch*, from disk.

        This is the replication catch-up reader: each returned *unit* is
        one commit's full frame sequence (BEGIN, ops, COMMIT) exactly as
        the group-commit leader appended it, keyed by its commit epoch,
        in file order — which is epoch order.

        The second value is the *floor*: the epoch stamped in the head
        CHECKPOINT record, i.e. the point up to which the log has been
        truncated.  The returned units are provably every committed
        epoch in ``(after_epoch, tail]`` **iff** ``after_epoch >=
        floor``; a caller further behind than the floor has lost its
        window into the log and must resync from a snapshot.  ``None``
        means the log has no head checkpoint (a pre-MVCC log) and
        contiguity cannot be proven at all.
        """
        floor: Optional[int] = None
        first = True
        pending: Dict[int, List[WalRecord]] = {}
        units: List[Tuple[int, List[WalRecord]]] = []
        for record in self.records():
            if first:
                first = False
                if record.op == OP_CHECKPOINT:
                    floor = record.epoch
            if record.op in (OP_CHECKPOINT, OP_TERM):
                continue
            if record.op == OP_BEGIN:
                pending[record.txid] = [record]
            elif record.op in (OP_PUT, OP_DELETE):
                pending.setdefault(
                    record.txid,
                    [WalRecord(op=OP_BEGIN, txid=record.txid)],
                ).append(record)
            elif record.op == OP_COMMIT:
                frames = pending.pop(record.txid, None)
                if frames is not None and record.epoch > after_epoch:
                    units.append((record.epoch, frames + [record]))
            elif record.op == OP_ABORT:
                pending.pop(record.txid, None)
        return units, floor

    def max_epoch(self) -> int:
        """Highest commit epoch recorded in the log (0 for pre-MVCC logs).

        COMMIT records carry the epoch their transaction published;
        CHECKPOINT records carry the epoch current at truncation time,
        so the counter survives a checkpoint that empties the log.
        """
        highest = 0
        for record in self.records():
            if record.op in (OP_COMMIT, OP_CHECKPOINT):
                highest = max(highest, record.epoch)
        return highest

    def max_term(self) -> int:
        """Highest primary term recorded in the log (0 for older logs).

        TERM records are the durable mint at promotion; COMMIT records
        carry the term each commit was accepted under (including
        replicated commits, whose frames land here verbatim — so a
        replica's adopted term survives its own restarts); CHECKPOINT
        records carry the term current at truncation, so the counter
        survives a checkpoint that empties the log.
        """
        highest = 0
        for record in self.records():
            if record.op in (OP_TERM, OP_COMMIT, OP_CHECKPOINT):
                highest = max(highest, record.term)
        return highest

    def mint_term(self, term: int) -> None:
        """Durably record a newly minted (or adopted) primary term.

        The TERM record is appended and fsynced before this returns —
        the term is the fence, so it must never be weaker than the
        writes it fences.
        """
        self.append(WalRecord(op=OP_TERM, txid=0, term=term), sync=True)

    # -- checkpoint ------------------------------------------------------------------

    def checkpoint(self, epoch: int = 0, term: int = 0) -> None:
        """Truncate the log once all committed work is safely in the pages.

        ``epoch`` (the store's current commit epoch) and ``term`` (its
        fenced primary term) are stamped into the CHECKPOINT record so
        neither counter regresses across a reopen, even when the
        checkpoint removed every COMMIT and TERM record.

        Atomic: the one-record replacement log is written and fsynced to
        a side file, then renamed over the live log.  A crash at any
        instant therefore leaves either the complete old log (every
        committed record still replayable, epoch recoverable) or the new
        checkpointed log — never the empty/torn-head log that an
        in-place truncate-then-append leaves when the crash lands
        between the truncate and the CHECKPOINT record's fsync.  That
        window used to reset the epoch counter to zero at reopen, which
        replication cannot tolerate: a replica would see its primary
        travel back in time.

        Holds the I/O lock across the swap, so a concurrent group-commit
        batch lands entirely in the old log (and is dropped with it) or
        entirely after the CHECKPOINT — never half.
        """
        frame = self.encode_frame(
            WalRecord(op=OP_CHECKPOINT, txid=0, epoch=epoch, term=term))
        side_path = self.path.with_name(self.path.name + ".ckpt")
        with self._io:
            with open(side_path, "wb") as side:
                def write_through(payload: bytes = frame) -> None:
                    side.write(payload)
                    side.flush()

                def sync_through() -> None:
                    os.fsync(side.fileno())

                # Crossed under the existing WAL gate sites: a fault
                # here tears/loses only the side file, and the live log
                # — still holding everything — wins at recovery.
                if self._fault_gate is None:
                    write_through()
                    sync_through()
                else:
                    self._fault_gate("wal.append", frame, write_through)
                    self._fault_gate("wal.sync", None, sync_through)
            self._fh.close()
            os.replace(side_path, self.path)
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
            self._fh = open(self.path, "a+b")
            self._fh.seek(0, os.SEEK_END)
            self._size = self._fh.tell()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        with self._io:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Batch-size histogram buckets: powers of two up to a generous cap.
_BATCH_BOUNDS = [float(2 ** i) for i in range(11)]


class GroupCommit:
    """The commit barrier: many writers, one fsync per batch.

    Writers *stage* a commit (mint an epoch, submit the transaction's
    buffered WAL frames — BEGIN, operations, COMMIT — here) and then
    *wait*.  The frames never touch the log before this point: the store
    buffers them in memory, so the serialized stage path does no file
    I/O at all.  The first waiter to find no leader becomes
    the leader for everything pending: it optionally dallies up to
    ``window_ms`` for more committers to arrive (only when at least two
    are already queued — a lone writer never pays the window), appends
    every queued transaction's frames as one epoch-ordered blob, issues a single
    ``wal.group.sync`` fsync, and then runs each commit's ``on_durable``
    callback **in epoch order** — the store's callback applies the
    commit's pages and publishes its epoch, so visibility is granted
    strictly after durability, oldest first.  Followers wake when the
    durable watermark passes their epoch.

    ``window_ms == 0`` is the escape hatch that reproduces per-commit
    syncing exactly: each queued commit is flushed and fsynced on its
    own, one ``wal.group.sync`` per commit.

    Failure protocol: a *transient* ``Exception`` during a flush fails
    the whole batch **and** everything still pending (the store recovers
    from stable storage, which truncates their operation records); each
    failed epoch's waiter receives the error.  A ``BaseException``
    (e.g. a simulated process crash) marks the coordinator dead — the
    leader re-raises its own crash, every other waiter gets
    :class:`~repro.errors.GroupCommitError`, and no in-process recovery
    is attempted.
    """

    def __init__(self, wal: WriteAheadLog, window_ms: float = 0.0,
                 max_batch: int = 64,
                 finish_lock: Optional[threading.RLock] = None):
        self._wal = wal
        self.window_ms = max(0.0, float(window_ms))
        self.max_batch = max(1, int(max_batch))
        # Held across a whole batch's finish callbacks (the store passes
        # its own lock).  Each callback takes the same lock anyway; one
        # hold per batch instead of one per commit stops the convoy
        # where every release hands the lock to a staging writer and the
        # leader re-queues behind it B times per flush.
        self._finish_lock = finish_lock
        # Two conditions, one mutex: submitters signal *arrivals* (at
        # most one waiter — a dallying leader), the leader signals
        # *_cond* when durability or leadership changes.  Keeping them
        # separate means staging a commit wakes one thread, not every
        # parked follower — at 16 writers that stampede was a measurable
        # slice of the serialized commit path.
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._arrivals = threading.Condition(self._mutex)
        # epoch-ascending (epoch, frames, on_durable) triples; *frames*
        # is one transaction's full record sequence (BEGIN, ops, COMMIT)
        self._pending: List[
            Tuple[int, List[WalRecord], Optional[Callable[[], None]]]] = []
        self._durable = 0
        self._leader = False
        self._dead: Optional[BaseException] = None
        self._cancelled: Optional[str] = None
        self._failed: Dict[int, BaseException] = {}
        # per-coordinator counters for stats(); the registry mirrors are
        # process-global (shared by every store in the process)
        self._batches = 0
        self._commits = 0
        self._syncs = 0
        self._largest_batch = 0
        # Commit subscribers: called by the leader, per commit, in epoch
        # order, strictly after the commit is durable *and* finished
        # (its on_durable ran).  This is the replication shipping hook.
        self._subscribers: List[Callable[[int, List[WalRecord]], None]] = []
        self._wait_hist = Histogram("group_commit.wait_seconds")
        registry = get_registry()
        self._m_batches = registry.counter("wal.group.batches")
        self._m_commits = registry.counter("wal.group.commits")
        self._m_syncs = registry.counter("wal.group.syncs")
        self._m_batch_size = registry.histogram("wal.group.batch_size",
                                                bounds=_BATCH_BOUNDS)
        self._m_wait = registry.histogram("wal.group.wait_seconds")

    # -- the writer-facing protocol ---------------------------------------------

    def submit(self, epoch: int, frames: List[WalRecord],
               on_durable: Optional[Callable[[], None]] = None) -> None:
        """Queue one commit's buffered WAL frames (called at stage, under
        the store lock; epochs therefore arrive in ascending order)."""
        with self._cond:
            if self._dead is not None:
                raise GroupCommitError(
                    "group-commit coordinator is dead (leader crashed)")
            if self._cancelled is not None:
                raise GroupCommitError(
                    f"commit group cancelled: {self._cancelled}")
            self._pending.append((epoch, frames, on_durable))
            # Wake a dallying leader, if any.  Followers do not need
            # this signal: a waiter only parks while a leader is active,
            # and the leader's exit broadcasts on _cond.
            self._arrivals.notify()

    def subscribe(self, listener: Callable[[int, List[WalRecord]], None]) -> None:
        """Register ``listener(epoch, frames)`` for every finished commit.

        The leader notifies in epoch order, after the commit's fsync and
        ``on_durable`` callback — so a listener only ever sees commits
        that are durable and published, which is exactly what may be
        shipped to a replica.  Listeners run under the finish lock (the
        store lock) and must be fast and exception-free; a listener
        error is counted (``wal.group.notify_errors``) and swallowed so
        it can never fail a batch that is already durable.
        """
        with self._cond:
            self._subscribers.append(listener)

    def unsubscribe(self, listener: Callable[[int, List[WalRecord]], None]) -> None:
        """Remove a listener registered by :meth:`subscribe` (idempotent)."""
        with self._cond:
            self._subscribers = [
                entry for entry in self._subscribers if entry is not listener
            ]

    def _notify(self, epoch: int, frames: List[WalRecord]) -> None:
        for listener in self._subscribers:
            try:
                listener(epoch, frames)
            except Exception:
                get_registry().counter("wal.group.notify_errors").inc()

    def wait_durable(self, epoch: int) -> None:
        """Block until *epoch* is durable and finished (its ``on_durable``
        ran), leading a flush if no leader is active.  Raises the batch's
        error if the flush failed."""
        start = time.perf_counter()
        try:
            self._settle(epoch)
        finally:
            elapsed = time.perf_counter() - start
            self._wait_hist.observe(elapsed)
            self._m_wait.observe(elapsed)

    def drain(self) -> None:
        """Flush everything pending and return once idle (close/vacuum).
        Propagates a flush failure instead of recording it silently —
        the caller must not truncate the log after a failed flush."""
        while True:
            with self._cond:
                if self._dead is not None:
                    raise GroupCommitError(
                        "group-commit coordinator is dead (leader crashed)")
                if not self._pending and not self._leader:
                    return
                if self._leader:
                    self._cond.wait(0.05)
                    continue
                self._leader = True
            try:
                self._lead_once(use_window=False)
            finally:
                with self._cond:
                    self._leader = False
                    self._cond.notify_all()

    def abort_pending(self, exc: BaseException) -> None:
        """Fail every queued commit (store recovery is about to truncate
        their operation records).  Waits out an active leader first; must
        NOT be called holding the store lock — the leader's callbacks
        take it."""
        with self._cond:
            while self._leader:
                self._cond.wait(0.05)
            for epoch, _frames, _cb in self._pending:
                if epoch > self._durable:
                    self._failed[epoch] = StorageError(
                        f"commit epoch {epoch} aborted by store recovery: {exc}")
            self._pending.clear()
            self._cond.notify_all()

    def reset(self, durable: int) -> None:
        """Advance the durable watermark after a store recovery replayed
        the log (never regresses it)."""
        with self._cond:
            if durable > self._durable:
                self._durable = durable
            self._cond.notify_all()

    def shutdown_cancel(self, message: str) -> None:
        """Cancel every parked waiter with a clean error (server shutdown).

        Commits that are already durable stay durable — their waiters
        return normally — but anything still queued is failed with a
        :class:`~repro.errors.GroupCommitError` naming *message*, and
        from here on new submits and waits fail fast.  This is what lets
        a draining server release commit-barrier waiters instead of
        leaking their sessions past the drain deadline.
        """
        with self._cond:
            self._cancelled = message
            for epoch, _frames, _cb in self._pending:
                if epoch > self._durable:
                    self._failed.setdefault(epoch, GroupCommitError(
                        f"commit epoch {epoch} cancelled: {message}"))
            self._pending.clear()
            self._cond.notify_all()
            self._arrivals.notify_all()

    def idle(self) -> bool:
        """True when nothing is queued and no leader is flushing."""
        with self._cond:
            return not self._pending and not self._leader

    def stats(self) -> Dict[str, Any]:
        """This coordinator's batching behaviour (process-local metrics
        mirror these under ``wal.group.*``)."""
        with self._cond:
            batches, commits = self._batches, self._commits
            syncs, largest = self._syncs, self._largest_batch
        wait = self._wait_hist
        return {
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "batches": batches,
            "commits": commits,
            "syncs": syncs,
            "batch_size_mean": (commits / batches) if batches else 0.0,
            "batch_size_max": largest,
            "wait_count": wait.count,
            "wait_mean_ms": wait.mean * 1e3,
            "wait_p95_ms": wait.percentile(95) * 1e3,
        }

    # -- leader internals --------------------------------------------------------

    def _settle(self, epoch: int) -> None:
        while True:
            with self._cond:
                if epoch in self._failed:
                    raise self._failed.pop(epoch)
                if epoch <= self._durable:
                    return
                if self._dead is not None:
                    raise GroupCommitError(
                        f"group-commit leader crashed; epoch {epoch} "
                        f"outcome unknown until reopen")
                if self._cancelled is not None:
                    raise GroupCommitError(
                        f"commit epoch {epoch} cancelled: {self._cancelled}")
                if self._leader:
                    self._cond.wait(0.05)
                    continue
                if not self._pending:
                    # not durable, not failed, not queued, nobody flushing
                    raise StorageError(
                        f"commit epoch {epoch} was lost by the commit group")
                self._leader = True
            try:
                self._lead_once(use_window=True)
            except Exception:
                # already recorded per-epoch in _failed; our own epoch
                # resolves on the next loop iteration
                pass
            finally:
                with self._cond:
                    self._leader = False
                    self._cond.notify_all()

    def _lead_once(self, use_window: bool) -> None:
        with self._cond:
            if (use_window and self.window_ms > 0.0
                    and len(self._pending) >= 2):
                # Dally for stragglers — but only when a batch is already
                # forming; a solo committer flushes immediately.  The
                # window is a *ceiling*: the leader waits in short
                # sixteenth-window slices and flushes on the first quiet
                # one, so the dally costs roughly one arrival gap, not
                # the whole window, and batching stays driven by actual
                # concurrency rather than the timer.
                deadline = time.monotonic() + self.window_ms / 1e3
                while 0 < len(self._pending) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    before = len(self._pending)
                    self._arrivals.wait(min(remaining, self.window_ms / 16e3))
                    if len(self._pending) == before:
                        break
                    # woke to new arrivals: keep dallying until deadline/full
            batch = self._pending[:self.max_batch]
            del self._pending[:len(batch)]
        if not batch:
            return
        try:
            if self.window_ms > 0.0:
                self._flush_group(batch)
            else:
                # window 0: per-commit append + fsync, the exact
                # pre-group-commit write path
                for entry in batch:
                    self._flush_group([entry])
        except Exception as exc:
            with self._cond:
                for failed_epoch, _frames, _cb in (*batch, *self._pending):
                    if failed_epoch > self._durable:
                        self._failed[failed_epoch] = exc
                self._pending.clear()
                self._cond.notify_all()
            raise
        except BaseException as exc:
            with self._cond:
                self._dead = exc
                self._cond.notify_all()
            raise

    def _flush_group(
            self,
            batch: List[Tuple[int, List[WalRecord],
                              Optional[Callable[[], None]]]],
    ) -> None:
        """Make one batch durable, then finish its commits in epoch order.

        The blob holds every transaction's full frame sequence (BEGIN,
        ops, COMMIT) back to back in epoch order, so a torn write keeps
        an epoch-ordered prefix of whole commits — a transaction cut
        mid-frames is missing its COMMIT and replays as nothing.

        The durable watermark advances per commit as its callback
        completes, so a callback failure mid-batch fails exactly the
        unfinished suffix (`_lead_once` records epochs above the
        watermark).
        """
        self._wal.append_batch([record for _epoch, frames, _cb in batch
                                for record in frames])
        self._wal.group_sync()
        with self._cond:
            self._batches += 1
            self._syncs += 1
            self._commits += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        self._m_batches.inc()
        self._m_syncs.inc()
        self._m_commits.inc(len(batch))
        self._m_batch_size.observe(float(len(batch)))
        # Advance the watermark per commit (a callback failure mid-batch
        # must fail exactly the unfinished suffix) but wake the waiters
        # once per *batch*: a notify_all per commit would stampede every
        # parked follower through the condition B times per flush.
        hold = (self._finish_lock if self._finish_lock is not None
                else contextlib.nullcontext())
        try:
            with hold:
                for epoch, frames, on_durable in batch:
                    if on_durable is not None:
                        on_durable()
                    with self._cond:
                        if epoch > self._durable:
                            self._durable = epoch
                    self._notify(epoch, frames)
        finally:
            with self._cond:
                self._cond.notify_all()
