"""Write-ahead log.

The store logs logical operations (object put/delete) per transaction,
forces the log at commit, applies the changes to pages, and truncates the
log at checkpoint.  On open, any transactions that committed in the log but
were not checkpointed are replayed — so a crash between commit and page
write-back loses nothing, and a crash mid-transaction leaves no trace.

Record format: ``length u32 | crc32 u32 | payload``, where the payload is a
self-describing codec struct.  A torn final record (crash during append) is
detected by the CRC and everything from it onward is ignored.

Fault injection.  Like :class:`~repro.ode.pagefile.PageFile`, the log
takes an optional ``fault_gate`` (see :mod:`repro.faultsim.plan` for
the contract) consulted at its two stable-storage sites, ``wal.append``
(the frame bytes about to be written — a gate can tear the frame at any
byte, which is how the torn-tail recovery path is tortured) and
``wal.sync``.  ``None`` (the default) costs one ``is None`` test.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.errors import WalError
from repro.ode.codec import decode_value, encode_value

_FRAME = struct.Struct(">II")

OP_BEGIN = "begin"
OP_PUT = "put"
OP_DELETE = "delete"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_CHECKPOINT = "checkpoint"

_KNOWN_OPS = {OP_BEGIN, OP_PUT, OP_DELETE, OP_COMMIT, OP_ABORT, OP_CHECKPOINT}


@dataclass(frozen=True)
class WalRecord:
    """One logical log record.

    ``epoch`` is meaningful on COMMIT and CHECKPOINT records: the
    store's commit epoch as of that record, used to recover the epoch
    counter on reopen.  Logs written before MVCC carry no epoch field
    and decode as epoch 0.
    """

    op: str
    txid: int
    oid: str = ""
    payload: bytes = b""
    epoch: int = 0

    def to_value(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "txid": self.txid,
            "oid": self.oid,
            "payload": self.payload,
            "epoch": self.epoch,
        }

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "WalRecord":
        op = value.get("op", "")
        if op not in _KNOWN_OPS:
            raise WalError(f"unknown WAL op {op!r}")
        payload = value.get("payload", b"")
        if isinstance(payload, str):
            # logs written before the codec grew a native bytes tag carried
            # the payload as latin-1 text
            payload = payload.encode("latin-1")
        return cls(
            op=op,
            txid=int(value.get("txid", 0)),
            oid=value.get("oid", ""),
            payload=payload,
            epoch=int(value.get("epoch", 0)),
        )


class WriteAheadLog:
    """Append-only log with CRC framing and torn-tail recovery."""

    def __init__(self, path: Union[str, Path],
                 fault_gate: Optional[Callable[..., Any]] = None):
        self.path = Path(path)
        self._fault_gate = fault_gate
        self._fh = open(self.path, "a+b")

    # -- append ------------------------------------------------------------------

    def append(self, record: WalRecord, sync: bool = False) -> None:
        payload = encode_value(record.to_value())
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.seek(0, os.SEEK_END)
        if self._fault_gate is None:
            self._fh.write(frame)
            self._fh.flush()
        else:
            self._fault_gate("wal.append", frame, self._append_through)
        if sync:
            self.sync()

    def _append_through(self, frame: bytes) -> None:
        """Gated append continuation: write and flush, so a torn frame
        injected by the gate is on disk when the simulated crash hits."""
        self._fh.write(frame)
        self._fh.flush()

    def sync(self) -> None:
        if self._fault_gate is None:
            self._do_sync()
        else:
            self._fault_gate("wal.sync", None, self._do_sync)

    def _do_sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay --------------------------------------------------------------------

    def records(self) -> Iterator[WalRecord]:
        """Yield every intact record; stop silently at a torn tail.

        Reading is a pure function of the on-disk file: ``append`` flushes
        as it writes, so iteration never needs to touch (or flush) the
        writer handle as a side effect.
        """
        with open(self.path, "rb") as fh:
            data = fh.read()
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                return  # torn tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # torn/corrupt tail
            value, consumed = decode_value(payload, 0)
            if consumed != length or not isinstance(value, dict):
                raise WalError("corrupt WAL record body")
            yield WalRecord.from_value(value)
            offset = end

    def committed_operations(self) -> List[WalRecord]:
        """PUT/DELETE records of committed transactions since the last checkpoint."""
        pending: Dict[int, List[WalRecord]] = {}
        committed: List[WalRecord] = []
        for record in self.records():
            if record.op == OP_CHECKPOINT:
                pending.clear()
                committed.clear()
            elif record.op == OP_BEGIN:
                pending[record.txid] = []
            elif record.op in (OP_PUT, OP_DELETE):
                pending.setdefault(record.txid, []).append(record)
            elif record.op == OP_COMMIT:
                committed.extend(pending.pop(record.txid, ()))
            elif record.op == OP_ABORT:
                pending.pop(record.txid, None)
        return committed

    def max_epoch(self) -> int:
        """Highest commit epoch recorded in the log (0 for pre-MVCC logs).

        COMMIT records carry the epoch their transaction published;
        CHECKPOINT records carry the epoch current at truncation time,
        so the counter survives a checkpoint that empties the log.
        """
        highest = 0
        for record in self.records():
            if record.op in (OP_COMMIT, OP_CHECKPOINT):
                highest = max(highest, record.epoch)
        return highest

    # -- checkpoint ------------------------------------------------------------------

    def checkpoint(self, epoch: int = 0) -> None:
        """Truncate the log once all committed work is safely in the pages.

        ``epoch`` (the store's current commit epoch) is stamped into the
        CHECKPOINT record so the epoch counter never regresses across a
        reopen, even when the checkpoint removed every COMMIT record.
        """
        self._fh.seek(0)
        self._fh.truncate(0)
        self.append(WalRecord(op=OP_CHECKPOINT, txid=0, epoch=epoch), sync=True)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
