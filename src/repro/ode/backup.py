"""Logical backup and restore.

``export_database`` serialises a whole database — schema and objects — to
one portable JSON document; ``import_database`` rebuilds an equivalent
database from it.  This is a *logical* dump (like ``pg_dump``), independent
of the page format, so it doubles as the migration path if the storage
layout ever changes.

Display modules, behaviours, figures, and icons are files next to the
database; ``export_database(include_files=True)`` carries them too.
"""

from __future__ import annotations

import base64
import datetime
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import StorageError
from repro.ode.database import CATALOG_FILE, Database
from repro.ode.oid import Oid

FORMAT = "odeview-backup"
FORMAT_VERSION = 1

#: Files (relative to the database directory) carried by include_files.
_CARRIED_GLOBS = ("display/*.py", "behaviours.py", "icon.txt",
                  "figures/*", "indexes.json")


def _encode_value(value: Any) -> Any:
    """JSON-safe encoding with type tags for dates and OIDs."""
    if isinstance(value, Oid):
        return {"$oid": str(value)}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$oid"}:
            return Oid.parse(value["$oid"])
        if set(value) == {"$date"}:
            return datetime.date.fromisoformat(value["$date"])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def export_database(database: Database,
                    include_files: bool = True) -> Dict[str, Any]:
    """The portable dict form of *database*."""
    objects: List[Dict[str, Any]] = []
    for oid in database.store.oids():
        from repro.ode.codec import decode_object

        stored_oid, class_name, values = decode_object(database.store.get(oid))
        objects.append({
            "oid": str(stored_oid),
            "class": class_name,
            "values": _encode_value(values),
        })
    document: Dict[str, Any] = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "name": database.name,
        "schema": database.schema.to_dict(),
        "objects": objects,
    }
    if include_files:
        files: Dict[str, str] = {}
        for pattern in _CARRIED_GLOBS:
            for path in sorted(database.directory.glob(pattern)):
                if path.is_file():
                    relative = str(path.relative_to(database.directory))
                    files[relative] = base64.b64encode(
                        path.read_bytes()).decode("ascii")
        document["files"] = files
    return document


def dump_to_file(database: Database, path: Union[str, Path],
                 include_files: bool = True) -> None:
    document = export_database(database, include_files=include_files)
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True),
                          encoding="utf-8")


def import_database(document: Dict[str, Any],
                    directory: Union[str, Path]) -> Database:
    """Rebuild a database from an exported document; returns it open.

    Files are restored *before* the database opens so behaviours bind and
    display modules resolve on first use; object records are replayed
    through the store so OIDs (and therefore references) are preserved
    bit-for-bit.
    """
    if document.get("format") != FORMAT:
        raise StorageError("not an odeview backup document")
    if document.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported backup version {document.get('version')!r}")
    directory = Path(directory)
    if (directory / CATALOG_FILE).exists():
        raise StorageError(f"refusing to restore over {directory}")
    directory.mkdir(parents=True, exist_ok=True)
    (directory / CATALOG_FILE).write_text(
        json.dumps(document["schema"], indent=2, sort_keys=True),
        encoding="utf-8")
    for relative, payload in document.get("files", {}).items():
        target = directory / relative
        if ".." in Path(relative).parts:
            raise StorageError(f"unsafe path in backup: {relative!r}")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(base64.b64decode(payload))

    database = Database.open(directory)
    from repro.ode.codec import encode_object

    database.objects.begin()
    for entry in document["objects"]:
        oid = Oid.parse(entry["oid"])
        # restored OIDs keep their database component from the source; the
        # new directory may carry a different name, so rewrite it
        oid = Oid(database.name, oid.cluster, oid.number)
        values = _decode_value(entry["values"])
        values = _rewrite_refs(values, database.name)
        database.store.put(oid, encode_object(oid, entry["class"], values))
    database.objects.commit()
    database._rebuild_persistent_indexes_after_restore()
    return database


def _rewrite_refs(value: Any, database_name: str) -> Any:
    if isinstance(value, Oid):
        return Oid(database_name, value.cluster, value.number)
    if isinstance(value, list):
        return [_rewrite_refs(item, database_name) for item in value]
    if isinstance(value, dict):
        return {key: _rewrite_refs(item, database_name)
                for key, item in value.items()}
    return value


def load_from_file(path: Union[str, Path],
                   directory: Union[str, Path]) -> Database:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return import_database(document, directory)
