"""Resolution and static checking for the O++ subset.

Two jobs:

* Turn a parsed :class:`~repro.ode.opp.ast.Program` into real schema
  objects — :class:`~repro.ode.types.TypeSpec`, :class:`Attribute`,
  :class:`OdeClass` — registered into a :class:`~repro.ode.schema.Schema`.
* Check a selection predicate against a class before it is pushed down to
  the object manager (paper §5.2), so a typo fails in the condition box
  rather than deep in a scan.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TypeCheckError
from repro.ode.classdef import Access, Attribute, MemberFunction, OdeClass
from repro.ode.opp import ast
from repro.ode.schema import Schema
from repro.ode.types import (
    ArrayType,
    BoolType,
    DateType,
    FloatType,
    IntType,
    RefType,
    SetType,
    StringType,
    StructType,
    TypeSpec,
)


class _NullMarker(TypeSpec):
    """Type of the ``null`` literal: comparable (==, !=) with references."""

    tag = "null"

    def _key(self):
        return ()

    def declare(self, varname):
        return f"null {varname}"


NULL = _NullMarker()
#: Sentinel meaning "statically unknown" (e.g. a computed attribute).
UNKNOWN: Optional[TypeSpec] = None


def resolve_type(type_name: ast.TypeName, schema: Schema) -> TypeSpec:
    """Resolve a parsed type expression against *schema*."""
    if type_name.base == "set":
        assert type_name.set_of is not None
        element = resolve_type(type_name.set_of, schema)
        spec: TypeSpec = SetType(element)
        return _wrap_arrays(spec, type_name.array_lengths)
    if type_name.base == "char":
        if type_name.pointer:
            spec = StringType(None)
            return _wrap_arrays(spec, type_name.array_lengths)
        if type_name.array_lengths:
            # char name[30] is a bounded string; extra dimensions nest arrays.
            spec = StringType(type_name.array_lengths[-1])
            return _wrap_arrays(spec, type_name.array_lengths[:-1])
        raise TypeCheckError("bare 'char' members are not supported; use char[n]")
    builtin = {
        "int": IntType(),
        "bool": BoolType(),
        "double": FloatType(),
        "float": FloatType(),
        "Date": DateType(),
        "String": StringType(None),
    }.get(type_name.base)
    if builtin is not None:
        if type_name.pointer:
            raise TypeCheckError(
                f"pointers to builtin type {type_name.base!r} are not supported"
            )
        return _wrap_arrays(builtin, type_name.array_lengths)
    # struct or class
    name = type_name.base
    if type_name.pointer:
        # Forward references are legal, as in C++ with a forward declaration:
        # the whole-schema validate() pass catches targets that never appear.
        return _wrap_arrays(RefType(name), type_name.array_lengths)
    try:
        struct = schema.get_struct(name)
    except Exception:
        if schema.has_class(name):
            raise TypeCheckError(
                f"embedded class object {name!r} not supported; "
                f"declare a pointer ({name} *x) instead"
            ) from None
        raise TypeCheckError(f"unknown type {name!r}") from None
    return _wrap_arrays(struct, type_name.array_lengths)


def _wrap_arrays(spec: TypeSpec, lengths) -> TypeSpec:
    for length in reversed(tuple(lengths)):
        spec = ArrayType(spec, length)
    return spec


def build_class(class_def: ast.ClassDef, schema: Schema) -> OdeClass:
    """Turn one parsed class definition into an :class:`OdeClass`."""
    attributes = []
    for fdecl in class_def.fields:
        attributes.append(
            Attribute(
                name=fdecl.name,
                type_spec=resolve_type(fdecl.type_name, schema),
                access=Access.PUBLIC if fdecl.access == "public" else Access.PRIVATE,
            )
        )
    methods = []
    for mdecl in class_def.methods:
        result = mdecl.result
        result_declare = result.base + (" *" if result.pointer else "")
        methods.append(
            MemberFunction(
                name=mdecl.name,
                fn=None,
                access=Access.PUBLIC if mdecl.access == "public" else Access.PRIVATE,
                side_effects=not mdecl.is_const,
                result_declare=result_declare,
            )
        )
    return OdeClass(
        name=class_def.name,
        bases=class_def.bases,
        attributes=tuple(attributes),
        methods=tuple(methods),
        constraint_sources=tuple(c.source for c in class_def.constraints),
        trigger_sources=tuple(t.source for t in class_def.triggers),
        persistent=class_def.persistent,
        versioned=class_def.versioned,
    )


def build_schema(program: ast.Program, schema: Optional[Schema] = None) -> Schema:
    """Register every struct and class of *program* into a schema.

    Definition order matters, exactly as in C++: a struct or class must be
    defined before it is used as a member type or base.
    """
    schema = schema or Schema()
    for struct_def in program.structs:
        fields = [
            (fdecl.name, resolve_type(fdecl.type_name, schema))
            for fdecl in struct_def.fields
        ]
        schema.add_struct(StructType(struct_def.name, fields))
    for class_def in program.classes:
        schema.add_class(build_class(class_def, schema))
    schema.validate()
    return schema


# ---------------------------------------------------------------------------
# Predicate checking
# ---------------------------------------------------------------------------

_NUMERIC = (IntType, FloatType)


def _is_numeric(spec: Optional[TypeSpec]) -> bool:
    return spec is UNKNOWN or isinstance(spec, _NUMERIC)


def _is_bool(spec: Optional[TypeSpec]) -> bool:
    return spec is UNKNOWN or isinstance(spec, BoolType)


def check_predicate(expr: ast.Expr, class_name: str, schema: Schema,
                    privileged: bool = False) -> Optional[TypeSpec]:
    """Type-check a predicate against *class_name*; returns the result type.

    A valid selection predicate must check out as boolean; call sites should
    verify ``isinstance(result, BoolType)`` (or UNKNOWN) after this returns.
    Raises :class:`TypeCheckError` on any inconsistency.
    """

    def attr_type(cname: str, attr_name: str) -> Optional[TypeSpec]:
        for attr in schema.all_attributes(cname):
            if attr.name == attr_name:
                if not attr.is_public and not privileged:
                    raise TypeCheckError(
                        f"attribute {attr_name!r} of {cname!r} is private"
                    )
                return attr.type_spec
        for method in schema.all_methods(cname):
            if method.name == attr_name and method.is_public and not method.side_effects:
                return UNKNOWN  # computed attribute; result type not declared
        raise TypeCheckError(f"class {cname!r} has no attribute {attr_name!r}")

    def visit(node: ast.Expr) -> Optional[TypeSpec]:
        if isinstance(node, ast.Literal):
            value = node.value
            if value is None:
                return NULL
            if isinstance(value, bool):
                return BoolType()
            if isinstance(value, int):
                return IntType()
            if isinstance(value, float):
                return FloatType()
            if isinstance(value, str):
                return StringType(None)
            raise TypeCheckError(f"unsupported literal {value!r}")
        if isinstance(node, ast.Name):
            return attr_type(class_name, node.ident)
        if isinstance(node, ast.FieldAccess):
            base = visit(node.base)
            if node.arrow:
                if base is UNKNOWN:
                    return UNKNOWN
                if not isinstance(base, RefType):
                    raise TypeCheckError(
                        f"'->' requires a reference, got {type(base).__name__}"
                    )
                return attr_type(base.class_name, node.field_name)
            if base is UNKNOWN:
                return UNKNOWN
            if not isinstance(base, StructType):
                raise TypeCheckError(
                    f"'.' requires a struct, got {type(base).__name__}"
                )
            return base.field_type(node.field_name)
        if isinstance(node, ast.Index):
            base = visit(node.base)
            subscript = visit(node.subscript)
            if not _is_numeric(subscript):
                raise TypeCheckError("array subscript must be numeric")
            if base is UNKNOWN:
                return UNKNOWN
            if isinstance(base, ArrayType):
                return base.element
            raise TypeCheckError(
                f"subscript requires an array, got {type(base).__name__}"
            )
        if isinstance(node, ast.Call):
            return _check_call(node, visit)
        if isinstance(node, ast.Unary):
            operand = visit(node.operand)
            if node.op == "!":
                if not _is_bool(operand):
                    raise TypeCheckError("'!' requires a boolean operand")
                return BoolType()
            if not _is_numeric(operand):
                raise TypeCheckError("unary '-' requires a numeric operand")
            return operand if operand is not UNKNOWN else UNKNOWN
        if isinstance(node, ast.Binary):
            left = visit(node.left)
            right = visit(node.right)
            if node.op in ast.LOGICAL_OPS:
                if not (_is_bool(left) and _is_bool(right)):
                    raise TypeCheckError(f"{node.op!r} requires boolean operands")
                return BoolType()
            if node.op in ast.COMPARISON_OPS:
                _check_comparable(node.op, left, right)
                return BoolType()
            # arithmetic
            if not (_is_numeric(left) and _is_numeric(right)):
                if (node.op == "+" and isinstance(left, StringType)
                        and isinstance(right, StringType)):
                    return StringType(None)
                raise TypeCheckError(f"{node.op!r} requires numeric operands")
            if isinstance(left, FloatType) or isinstance(right, FloatType):
                return FloatType()
            if left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            return IntType()
        raise TypeCheckError(f"unsupported expression node {type(node).__name__}")

    def _check_call(node: ast.Call, recurse) -> Optional[TypeSpec]:
        args = [recurse(arg) for arg in node.args]

        def need(count: int) -> None:
            if len(args) != count:
                raise TypeCheckError(
                    f"{node.func}() takes {count} argument(s), got {len(args)}"
                )

        if node.func == "size":
            need(1)
            if args[0] is not UNKNOWN and not isinstance(
                    args[0], (SetType, ArrayType, StringType)):
                raise TypeCheckError("size() requires a set, array, or string")
            return IntType()
        if node.func == "contains":
            need(2)
            if args[0] is not UNKNOWN and not isinstance(args[0], SetType):
                raise TypeCheckError("contains() requires a set first argument")
            return BoolType()
        if node.func in ("lower", "upper"):
            need(1)
            if args[0] is not UNKNOWN and not isinstance(args[0], StringType):
                raise TypeCheckError(f"{node.func}() requires a string")
            return StringType(None)
        if node.func in ("year", "month", "day"):
            need(1)
            if args[0] is not UNKNOWN and not isinstance(args[0], DateType):
                raise TypeCheckError(f"{node.func}() requires a Date")
            return IntType()
        if node.func == "abs":
            need(1)
            if not _is_numeric(args[0]):
                raise TypeCheckError("abs() requires a number")
            return args[0] if args[0] is not UNKNOWN else UNKNOWN
        if node.func in ("min", "max"):
            need(2)
            if not (_is_numeric(args[0]) and _is_numeric(args[1])):
                raise TypeCheckError(f"{node.func}() requires numbers")
            if isinstance(args[0], FloatType) or isinstance(args[1], FloatType):
                return FloatType()
            return IntType()
        raise TypeCheckError(f"unknown function {node.func!r}")

    def _check_comparable(op: str, left, right) -> None:
        if left is UNKNOWN or right is UNKNOWN:
            return
        if isinstance(left, _NullMarker) or isinstance(right, _NullMarker):
            other = right if isinstance(left, _NullMarker) else left
            if op not in ("==", "!="):
                raise TypeCheckError("null only supports == and != comparisons")
            if not isinstance(other, (RefType, _NullMarker)):
                raise TypeCheckError("null can only be compared with a reference")
            return
        if _is_numeric(left) and _is_numeric(right):
            return
        if isinstance(left, StringType) and isinstance(right, StringType):
            return
        if isinstance(left, DateType) and isinstance(right, DateType):
            return
        if isinstance(left, BoolType) and isinstance(right, BoolType):
            if op not in ("==", "!="):
                raise TypeCheckError("booleans only support == and !=")
            return
        if isinstance(left, RefType) and isinstance(right, RefType):
            if op not in ("==", "!="):
                raise TypeCheckError("references only support == and !=")
            return
        raise TypeCheckError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )

    return visit(expr)


def check_selection_predicate(expr: ast.Expr, class_name: str, schema: Schema,
                              privileged: bool = False) -> None:
    """Reject a predicate whose result is not (possibly) boolean."""
    result = check_predicate(expr, class_name, schema, privileged)
    if result is not UNKNOWN and not isinstance(result, BoolType):
        raise TypeCheckError(
            f"selection predicate must be boolean, got {type(result).__name__}"
        )
