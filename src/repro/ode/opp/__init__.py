"""The O++ language front end: lexer, parser, checker, evaluator, printer."""

from repro.ode.opp import ast
from repro.ode.opp.lexer import Token, tokenize
from repro.ode.opp.parser import parse_expression, parse_program
from repro.ode.opp.predicate import PredicateEvaluator
from repro.ode.opp.printer import class_definition_source, expr_to_source, schema_source
from repro.ode.opp.typecheck import (
    build_class,
    build_schema,
    check_predicate,
    check_selection_predicate,
    resolve_type,
)

__all__ = [
    "PredicateEvaluator",
    "Token",
    "ast",
    "build_class",
    "build_schema",
    "check_predicate",
    "check_selection_predicate",
    "class_definition_source",
    "expr_to_source",
    "parse_expression",
    "parse_program",
    "resolve_type",
    "schema_source",
    "tokenize",
]
