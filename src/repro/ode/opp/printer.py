"""Canonical O++ source generation.

The class-definition window (Figure 4) shows a class as O++ source; this
module renders an :class:`~repro.ode.classdef.OdeClass` (and expression
ASTs) back to canonical text.  ``parse → build → print`` is idempotent,
which the round-trip tests rely on.
"""

from __future__ import annotations

from typing import List

from repro.ode.classdef import Access
from repro.ode.opp import ast
from repro.ode.schema import Schema

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}
_UNARY_PRECEDENCE = 7
_POSTFIX_PRECEDENCE = 8


def expr_to_source(expr: ast.Expr) -> str:
    """Render an expression with minimal parentheses."""
    text, _prec = _render(expr)
    return text


def _render(node: ast.Expr):
    if isinstance(node, ast.Literal):
        value = node.value
        if value is None:
            return "null", _POSTFIX_PRECEDENCE
        if isinstance(value, bool):
            return ("true" if value else "false"), _POSTFIX_PRECEDENCE
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"', _POSTFIX_PRECEDENCE
        return repr(value), _POSTFIX_PRECEDENCE
    if isinstance(node, ast.Name):
        return node.ident, _POSTFIX_PRECEDENCE
    if isinstance(node, ast.FieldAccess):
        base, prec = _render(node.base)
        if prec < _POSTFIX_PRECEDENCE:
            base = f"({base})"
        joiner = "->" if node.arrow else "."
        return f"{base}{joiner}{node.field_name}", _POSTFIX_PRECEDENCE
    if isinstance(node, ast.Index):
        base, prec = _render(node.base)
        if prec < _POSTFIX_PRECEDENCE:
            base = f"({base})"
        return f"{base}[{expr_to_source(node.subscript)}]", _POSTFIX_PRECEDENCE
    if isinstance(node, ast.Call):
        args = ", ".join(expr_to_source(arg) for arg in node.args)
        return f"{node.func}({args})", _POSTFIX_PRECEDENCE
    if isinstance(node, ast.Unary):
        operand, prec = _render(node.operand)
        if prec < _UNARY_PRECEDENCE:
            operand = f"({operand})"
        return f"{node.op}{operand}", _UNARY_PRECEDENCE
    if isinstance(node, ast.Binary):
        my_prec = _PRECEDENCE[node.op]
        left, left_prec = _render(node.left)
        right, right_prec = _render(node.right)
        if left_prec < my_prec:
            left = f"({left})"
        # left-associative: right operand needs parens at equal precedence
        if right_prec <= my_prec:
            right = f"({right})"
        return f"{left} {node.op} {right}", my_prec
    raise TypeError(f"cannot render node {type(node).__name__}")


def class_definition_source(schema: Schema, class_name: str) -> str:
    """The text of the class-definition window (Figure 4) for one class."""
    cls = schema.get_class(class_name)
    lines: List[str] = []
    qualifiers = []
    if cls.persistent:
        qualifiers.append("persistent")
    if cls.versioned:
        qualifiers.append("versioned")
    head = " ".join(qualifiers + ["class", cls.name])
    if cls.bases:
        head += " : " + ", ".join(f"public {base}" for base in cls.bases)
    lines.append(head + " {")

    def section(access: Access, label: str) -> None:
        attrs = [a for a in cls.attributes if a.access is access]
        meths = [m for m in cls.methods if m.access is access]
        if not attrs and not meths:
            return
        lines.append(f"  {label}:")
        for attr in attrs:
            lines.append(f"    {attr.declare()}")
        for meth in meths:
            const = " const" if not meth.side_effects else ""
            lines.append(f"    {meth.result_declare} {meth.name}(){const};")

    section(Access.PUBLIC, "public")
    section(Access.PRIVATE, "private")
    if cls.constraint_sources:
        lines.append("  constraint:")
        for source in cls.constraint_sources:
            lines.append(f"    {source};")
    if cls.trigger_sources:
        lines.append("  trigger:")
        for source in cls.trigger_sources:
            lines.append(f"    {source};")
    lines.append("};")
    return "\n".join(lines)


def schema_source(schema: Schema) -> str:
    """The whole schema as one O++ source unit (structs then classes)."""
    parts = [struct.opp_definition() for struct in schema.structs()]
    parts += [class_definition_source(schema, name) for name in schema.class_names()]
    return "\n\n".join(parts)
