"""Compiling O++ ``constraint:`` sections into enforced constraints.

A class definition may carry a constraint section (paper §1: O++ provides
"facilities for ... associating constraints and triggers with objects")::

    persistent class employee {
      public:
        int id;
      constraint:
        id >= 0;
    };

The parser stores the sources in :attr:`OdeClass.constraint_sources`; this
module compiles them into executable :class:`~repro.ode.constraints.
Constraint` objects that the object manager enforces on every create and
update — no manual behaviour binding required.

Constraints run *inside* the class, so they may read private attributes
(privileged evaluation) but they see stored attributes only, not computed
member functions (which could recurse into the object manager mid-write).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ObjectNotFoundError, TypeCheckError
from repro.ode.constraints import Constraint, Trigger
from repro.ode.opp.parser import parse_expression, parse_trigger
from repro.ode.opp.predicate import PredicateEvaluator
from repro.ode.schema import Schema


class _RawValuesBuffer:
    """Adapter: lets the predicate evaluator read a plain values dict."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]):
        self._values = values

    def value(self, name: str, privileged: bool = False) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise ObjectNotFoundError(
                f"constraint references unknown attribute {name!r}"
            ) from None


def compile_constraint(source: str, class_name: str,
                       schema: Schema) -> Constraint:
    """Compile one constraint source string for *class_name*."""
    expr = parse_expression(source)
    from repro.ode.opp.typecheck import check_selection_predicate

    # Constraints are class-internal: private members are fair game.
    check_selection_predicate(expr, class_name, schema, privileged=True)
    evaluator = PredicateEvaluator(manager=None, privileged=True)

    def check(values: Mapping[str, Any]) -> bool:
        return evaluator.matches(expr, _RawValuesBuffer(values))

    return Constraint(name=f"opp:{source}", check=check, source=source)


def compile_trigger(source: str, class_name: str, schema: Schema) -> Trigger:
    """Compile one ``trigger:`` declaration for *class_name*.

    ``[once] name : condition ==> attr = expr, ...`` — the condition is a
    boolean predicate over the object's values; each assignment target must
    be a stored attribute of the class.  Assignment values are type-checked
    again at fire time by the object manager's update path.
    """
    decl = parse_trigger(source)
    from repro.ode.opp.typecheck import check_predicate, check_selection_predicate

    check_selection_predicate(decl.condition, class_name, schema,
                              privileged=True)
    for target, expr in decl.assignments:
        schema.find_attribute(class_name, target)  # SchemaError if unknown
        check_predicate(expr, class_name, schema, privileged=True)
    evaluator = PredicateEvaluator(manager=None, privileged=True)

    def condition(values: Mapping[str, Any]) -> bool:
        return evaluator.matches(decl.condition, _RawValuesBuffer(values))

    def action(values: Mapping[str, Any]) -> Dict[str, Any]:
        buffer = _RawValuesBuffer(values)
        return {
            target: evaluator.evaluate(expr, buffer)
            for target, expr in decl.assignments
        }

    return Trigger(
        name=decl.name,
        condition=condition,
        action=action,
        perpetual=not decl.once,
        source=source,
    )


class CompiledConstraintCache:
    """Per-class compiled constraints, invalidated on schema evolution."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._cache: Dict[str, Tuple[int, List[Constraint]]] = {}

    def constraints_for(self, mro: List[str]) -> List[Constraint]:
        """Compiled constraints of a class and its ancestors."""
        compiled: List[Constraint] = []
        for class_name in mro:
            compiled.extend(self._class_constraints(class_name))
        return compiled

    def _class_constraints(self, class_name: str) -> List[Constraint]:
        cached = self._cache.get(class_name)
        if cached is not None and cached[0] == self._schema.version:
            return cached[1]
        cls = self._schema.get_class(class_name)
        compiled: List[Constraint] = []
        for source in cls.constraint_sources:
            try:
                compiled.append(
                    compile_constraint(source, class_name, self._schema))
            except TypeCheckError:
                # A constraint referencing a computed member can't be
                # compiled statically; Ode would enforce it in compiled
                # code.  Skip rather than block every write.
                continue
        self._cache[class_name] = (self._schema.version, compiled)
        return compiled


class CompiledTriggerCache:
    """Per-class compiled triggers.

    Trigger instances are kept stable across calls so ``once`` triggers
    stay deactivated after firing; schema evolution recompiles (and hence
    re-arms) them, as redefining the class would in Ode.
    """

    def __init__(self, schema: Schema):
        self._schema = schema
        self._cache: Dict[str, Tuple[int, List[Trigger]]] = {}

    def triggers_for(self, mro: List[str]) -> List[Trigger]:
        compiled: List[Trigger] = []
        for class_name in mro:
            compiled.extend(self._class_triggers(class_name))
        return compiled

    def _class_triggers(self, class_name: str) -> List[Trigger]:
        cached = self._cache.get(class_name)
        if cached is not None and cached[0] == self._schema.version:
            return cached[1]
        cls = self._schema.get_class(class_name)
        compiled: List[Trigger] = []
        for source in cls.trigger_sources:
            try:
                compiled.append(
                    compile_trigger(source, class_name, self._schema))
            except TypeCheckError:
                continue
        self._cache[class_name] = (self._schema.version, compiled)
        return compiled
