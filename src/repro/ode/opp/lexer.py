"""Tokeniser for the O++ subset.

O++ is an upward-compatible extension of C++ (paper §1).  OdeView needs to
*read* O++ in two places: class definitions (the class-definition window,
Figure 4, shows textual O++ source) and selection predicates (the QBE-style
condition box of §5.2 accepts "the selection condition as a string").  This
lexer covers the token set both uses need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexError

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
FLOATNUM = "FLOATNUM"
STRING = "STRING"
PUNCT = "PUNCT"
KEYWORD = "KEYWORD"
EOF = "EOF"

KEYWORDS = {
    "class", "struct", "persistent", "versioned", "public", "private",
    "constraint", "trigger", "once", "set", "int", "double", "float",
    "char", "bool", "Date", "String", "const", "true", "false", "null",
    "nil",
}

# Longest first so '==>' beats '==', '->' beats '-', etc.
_PUNCTUATION = [
    "==>",
    "->", "==", "!=", "<=", ">=", "&&", "||", "::",
    "{", "}", "(", ")", "[", "]", "<", ">", ";", ":", ",", ".",
    "*", "+", "-", "/", "%", "=", "!", "&", "|",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenise *source*; raises :class:`LexError` on invalid input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        # whitespace
        if char in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", index):
            end = source.find("\n", index)
            advance((end if end != -1 else length) - index)
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise LexError("unterminated comment", line, column)
            advance(end + 2 - index)
            continue
        # strings
        if char in "\"'":
            quote = char
            start_line, start_column = line, column
            end = index + 1
            text_chars: List[str] = []
            while True:
                if end >= length or source[end] == "\n":
                    raise LexError("unterminated string literal", start_line, start_column)
                if source[end] == "\\":
                    if end + 1 >= length:
                        raise LexError("bad escape", line, column)
                    escape = source[end + 1]
                    text_chars.append(
                        {"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape)
                    )
                    end += 2
                    continue
                if source[end] == quote:
                    break
                text_chars.append(source[end])
                end += 1
            token_text = "".join(text_chars)
            advance(end + 1 - index)
            yield Token(STRING, token_text, start_line, start_column)
            continue
        # numbers
        if char.isdigit():
            start_line, start_column = line, column
            end = index
            while end < length and source[end].isdigit():
                end += 1
            is_float = False
            if end < length and source[end] == "." and end + 1 < length and source[end + 1].isdigit():
                is_float = True
                end += 1
                while end < length and source[end].isdigit():
                    end += 1
            if end < length and source[end] in "eE":
                peek = end + 1
                if peek < length and source[peek] in "+-":
                    peek += 1
                if peek < length and source[peek].isdigit():
                    is_float = True
                    end = peek
                    while end < length and source[end].isdigit():
                        end += 1
            text = source[index:end]
            advance(end - index)
            yield Token(FLOATNUM if is_float else NUMBER, text, start_line, start_column)
            continue
        # identifiers / keywords
        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            advance(end - index)
            kind = KEYWORD if text in KEYWORDS else IDENT
            yield Token(kind, text, start_line, start_column)
            continue
        # punctuation
        for punct in _PUNCTUATION:
            if source.startswith(punct, index):
                start_line, start_column = line, column
                advance(len(punct))
                yield Token(PUNCT, punct, start_line, start_column)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column)
    yield Token(EOF, "", line, column)
