"""Abstract syntax for the O++ subset.

Two families of nodes:

* *Declarations* — struct and class definitions, as shown in the
  class-definition window (Figure 4).
* *Expressions* — selection predicates typed into the condition box or
  assembled from menus (paper §5.2).

All nodes are frozen dataclasses so they can be hashed, compared in tests,
and safely shared between the parser, checker, evaluator, and printer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    """An int, float, string, bool, or null literal."""

    value: Any

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass(frozen=True)
class Name(Expr):
    """A bare identifier — an attribute of the object under test."""

    ident: str


@dataclass(frozen=True)
class FieldAccess(Expr):
    """``base.field`` (struct field) or ``base->field`` (follow reference)."""

    base: Expr
    field_name: str
    arrow: bool = False


@dataclass(frozen=True)
class Index(Expr):
    """``base[subscript]`` on an array."""

    base: Expr
    subscript: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A builtin function call, e.g. ``size(members)``."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Unary(Expr):
    """``!operand`` or ``-operand``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Arithmetic, comparison, or logical binary operation."""

    op: str
    left: Expr
    right: Expr


COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TypeName:
    """A parsed type expression, before resolution against the schema.

    ``base`` is a builtin name (``int``, ``double``, ``char``, ``Date``,
    ``String``, ``bool``) or a struct/class identifier.  ``pointer`` marks a
    ``*`` declarator, ``set_of`` wraps the element type of a ``set<...>``,
    and ``array_lengths`` records ``[n]`` suffixes outermost-first.
    """

    base: str
    pointer: bool = False
    set_of: Optional["TypeName"] = None
    array_lengths: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FieldDecl:
    """One data-member declaration."""

    name: str
    type_name: TypeName
    access: str  # "public" | "private"
    line: int = 0


@dataclass(frozen=True)
class MethodDecl:
    """One member-function declaration; ``const`` marks it side-effect free."""

    name: str
    result: TypeName
    access: str
    is_const: bool = False
    line: int = 0


@dataclass(frozen=True)
class ConstraintDecl:
    """One expression from a ``constraint:`` section."""

    expr: Expr
    source: str


@dataclass(frozen=True)
class TriggerDecl:
    """One declaration from a ``trigger:`` section.

    ``name : condition ==> attr = expr, attr = expr`` — when the condition
    holds after an update, the assignments are applied.  ``once`` triggers
    deactivate after their first firing (O++ offers both flavours).
    """

    name: str
    condition: Expr
    assignments: Tuple[Tuple[str, Expr], ...]
    once: bool = False
    source: str = ""


@dataclass(frozen=True)
class StructDef:
    name: str
    fields: Tuple[FieldDecl, ...]


@dataclass(frozen=True)
class ClassDef:
    name: str
    bases: Tuple[str, ...]
    fields: Tuple[FieldDecl, ...]
    methods: Tuple[MethodDecl, ...]
    constraints: Tuple[ConstraintDecl, ...]
    triggers: Tuple[TriggerDecl, ...] = ()
    persistent: bool = False
    versioned: bool = False


@dataclass(frozen=True)
class Program:
    """A parsed O++ source unit: structs and classes, declaration order."""

    structs: Tuple[StructDef, ...] = ()
    classes: Tuple[ClassDef, ...] = ()
