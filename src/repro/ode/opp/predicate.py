"""Predicate evaluation against object buffers.

This is the pushdown half of §5.2: "Once OdeView has obtained the selection
predicate, it passes the selection predicate to the object manager which
uses it to filter objects retrieved from the databases."  A compiled
predicate is a callable over :class:`~repro.ode.objectmanager.ObjectBuffer`;
the object manager applies it during cluster scans.

Semantics notes:

* ``->`` dereferences a reference by fetching the target buffer through the
  object manager (so cross-object predicates like
  ``dept->dname == "research"`` work).
* Following a *null* reference makes the predicate **false** rather than an
  error — the natural filter semantics (an employee with no department does
  not match ``dept->dname == ...``).
* Integer division truncates toward zero (C semantics); division by zero
  raises :class:`PredicateError`.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Optional

from repro.errors import PredicateError
from repro.ode.oid import Oid
from repro.ode.opp import ast
from repro.ode.opp.parser import parse_expression


class _NullReference(Exception):
    """Internal: a null reference was dereferenced; predicate is false."""


class PredicateEvaluator:
    """Evaluates expression ASTs against object buffers."""

    def __init__(self, manager=None, privileged: bool = False):
        self._manager = manager
        self._privileged = privileged

    # -- public API -----------------------------------------------------------

    def evaluate(self, expr: ast.Expr, buffer) -> Any:
        """Raw evaluation; may raise on type errors or null dereference."""
        try:
            return self._eval(expr, buffer)
        except _NullReference:
            raise PredicateError("null reference dereferenced") from None

    def matches(self, expr: ast.Expr, buffer) -> bool:
        """Filter semantics: boolean result; null-dereference means False."""
        try:
            result = self._eval(expr, buffer)
        except _NullReference:
            return False
        if not isinstance(result, bool):
            raise PredicateError(
                f"predicate evaluated to {type(result).__name__}, not bool"
            )
        return result

    def compile(self, expr: ast.Expr) -> Callable[[Any], bool]:
        """A reusable buffer -> bool callable (what cursors consume)."""
        def predicate(buffer) -> bool:
            return self.matches(expr, buffer)
        return predicate

    def compile_source(self, source: str) -> Callable[[Any], bool]:
        """Parse and compile a condition-box string."""
        return self.compile(parse_expression(source))

    # -- evaluation -----------------------------------------------------------

    def _eval(self, node: ast.Expr, buffer) -> Any:
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Name):
            return buffer.value(node.ident, privileged=self._privileged)
        if isinstance(node, ast.FieldAccess):
            base = self._eval(node.base, buffer)
            if node.arrow:
                if base is None:
                    raise _NullReference()
                if not isinstance(base, Oid):
                    raise PredicateError(
                        f"'->' applied to non-reference value {base!r}"
                    )
                if self._manager is None:
                    raise PredicateError(
                        "'->' requires an object manager to follow references"
                    )
                target = self._manager.get_buffer(base)
                return target.value(node.field_name, privileged=self._privileged)
            if not isinstance(base, dict):
                raise PredicateError(f"'.' applied to non-struct value {base!r}")
            if node.field_name not in base:
                raise PredicateError(f"struct has no field {node.field_name!r}")
            return base[node.field_name]
        if isinstance(node, ast.Index):
            base = self._eval(node.base, buffer)
            subscript = self._eval(node.subscript, buffer)
            if not isinstance(base, (list, tuple)):
                raise PredicateError(f"subscript applied to {type(base).__name__}")
            if not isinstance(subscript, int) or isinstance(subscript, bool):
                raise PredicateError("array subscript must be an integer")
            if not 0 <= subscript < len(base):
                raise PredicateError(
                    f"subscript {subscript} out of range 0..{len(base) - 1}"
                )
            return base[subscript]
        if isinstance(node, ast.Call):
            return self._eval_call(node, buffer)
        if isinstance(node, ast.Unary):
            if node.op == "!":
                operand = self._eval(node.operand, buffer)
                if not isinstance(operand, bool):
                    raise PredicateError("'!' requires a boolean")
                return not operand
            operand = self._eval(node.operand, buffer)
            self._require_number(operand, "unary '-'")
            return -operand
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, buffer)
        raise PredicateError(f"cannot evaluate node {type(node).__name__}")

    def _eval_call(self, node: ast.Call, buffer) -> Any:
        args = [self._eval(arg, buffer) for arg in node.args]
        func = node.func
        if func == "size":
            (value,) = self._arity(func, args, 1)
            if isinstance(value, (list, tuple, str)):
                return len(value)
            raise PredicateError("size() requires a set, array, or string")
        if func == "contains":
            collection, element = self._arity(func, args, 2)
            if not isinstance(collection, (list, tuple)):
                raise PredicateError("contains() requires a set")
            return element in collection
        if func in ("lower", "upper"):
            (value,) = self._arity(func, args, 1)
            if not isinstance(value, str):
                raise PredicateError(f"{func}() requires a string")
            return value.lower() if func == "lower" else value.upper()
        if func in ("year", "month", "day"):
            (value,) = self._arity(func, args, 1)
            if not isinstance(value, datetime.date):
                raise PredicateError(f"{func}() requires a Date")
            return getattr(value, func)
        if func == "abs":
            (value,) = self._arity(func, args, 1)
            self._require_number(value, "abs()")
            return abs(value)
        if func in ("min", "max"):
            first, second = self._arity(func, args, 2)
            self._require_number(first, f"{func}()")
            self._require_number(second, f"{func}()")
            return min(first, second) if func == "min" else max(first, second)
        raise PredicateError(f"unknown function {func!r}")

    @staticmethod
    def _arity(func: str, args, count: int):
        if len(args) != count:
            raise PredicateError(
                f"{func}() takes {count} argument(s), got {len(args)}"
            )
        return args

    @staticmethod
    def _require_number(value, context: str) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise PredicateError(f"{context} requires a number, got {value!r}")

    def _eval_binary(self, node: ast.Binary, buffer) -> Any:
        op = node.op
        if op == "&&":
            left = self._eval(node.left, buffer)
            if not isinstance(left, bool):
                raise PredicateError("'&&' requires booleans")
            if not left:
                return False
            right = self._eval(node.right, buffer)
            if not isinstance(right, bool):
                raise PredicateError("'&&' requires booleans")
            return right
        if op == "||":
            left = self._eval(node.left, buffer)
            if not isinstance(left, bool):
                raise PredicateError("'||' requires booleans")
            if left:
                return True
            right = self._eval(node.right, buffer)
            if not isinstance(right, bool):
                raise PredicateError("'||' requires booleans")
            return right

        left = self._eval(node.left, buffer)
        right = self._eval(node.right, buffer)

        if op in ast.COMPARISON_OPS:
            return self._compare(op, left, right)

        # arithmetic
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        self._require_number(left, f"'{op}'")
        self._require_number(right, f"'{op}'")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise PredicateError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)  # C-style truncation toward zero
            return left / right
        if op == "%":
            if not isinstance(left, int) or not isinstance(right, int):
                raise PredicateError("'%' requires integers")
            if right == 0:
                raise PredicateError("modulo by zero")
            return left - int(left / right) * right  # C-style remainder
        raise PredicateError(f"unknown operator {op!r}")

    @staticmethod
    def _compare(op: str, left, right) -> bool:
        def same_family() -> bool:
            if left is None or right is None:
                return True
            numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
            if numeric(left) and numeric(right):
                return True
            for family in (str, bool, datetime.date, Oid):
                if isinstance(left, family) and isinstance(right, family):
                    return True
            return False

        if not same_family():
            raise PredicateError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}"
            )
        if left is None or right is None or isinstance(left, (bool, Oid)) \
                or isinstance(right, (bool, Oid)):
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            raise PredicateError(
                f"operator {op!r} not supported for this operand type"
            )
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise PredicateError(f"unknown comparison {op!r}")
