"""Recursive-descent parser for the O++ subset.

Grammar (see :mod:`repro.ode.opp.ast` for the node meanings)::

    program        := (struct_def | class_def)* EOF
    struct_def     := "struct" IDENT "{" field_decl* "}" ";"
    class_def      := ("persistent" | "versioned")* "class" IDENT
                      [":" base ("," base)*] "{" section* "}" ";"
    base           := ["public" | "private"] IDENT
    section        := ("public" | "private" | "constraint") ":" member*
                    | member*                         -- default private
    member         := field_decl | method_decl | constraint_expr ";"
    field_decl     := type_expr declarator ("," declarator)* ";"
    method_decl    := type_expr "*"? IDENT "(" ")" ["const"] ";"
    type_expr      := builtin | "set" "<" type_expr "*"? ">" | IDENT
    declarator     := "*"? IDENT ("[" NUMBER "]")*

    expression     := or_expr
    or_expr        := and_expr ("||" and_expr)*
    and_expr       := not_expr ("&&" not_expr)*
    not_expr       := "!" not_expr | comparison
    comparison     := additive (cmp_op additive)?
    additive       := term (("+" | "-") term)*
    term           := unary (("*" | "/" | "%") unary)*
    unary          := "-" unary | postfix
    postfix        := primary ("." IDENT | "->" IDENT | "[" expression "]")*
    primary        := literal | IDENT | IDENT "(" args ")" | "(" expression ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.ode.opp import ast
from repro.ode.opp.lexer import (
    EOF,
    FLOATNUM,
    IDENT,
    KEYWORD,
    NUMBER,
    PUNCT,
    STRING,
    Token,
    tokenize,
)

_BUILTIN_TYPES = {"int", "double", "float", "char", "bool", "Date", "String"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.peek()
        return ParseError(f"{message} (got {token.text!r})", token.line, token.column)

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        token = self.peek()
        if not token.is_keyword(text):
            raise self.error(f"expected keyword {text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != IDENT:
            raise self.error("expected identifier")
        return self.advance()

    # -- declarations ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        structs: List[ast.StructDef] = []
        classes: List[ast.ClassDef] = []
        while self.peek().kind != EOF:
            token = self.peek()
            if token.is_keyword("struct"):
                structs.append(self.parse_struct())
            elif token.kind == KEYWORD and token.text in ("class", "persistent", "versioned"):
                classes.append(self.parse_class())
            else:
                raise self.error("expected 'struct' or 'class' definition")
        return ast.Program(structs=tuple(structs), classes=tuple(classes))

    def parse_struct(self) -> ast.StructDef:
        self.expect_keyword("struct")
        name = self.expect_ident().text
        self.expect_punct("{")
        fields: List[ast.FieldDecl] = []
        while not self.peek().is_punct("}"):
            fields.extend(self.parse_field_decl("public"))
        self.expect_punct("}")
        self.expect_punct(";")
        return ast.StructDef(name=name, fields=tuple(fields))

    def parse_class(self) -> ast.ClassDef:
        persistent = False
        versioned = False
        while True:
            token = self.peek()
            if token.is_keyword("persistent"):
                persistent = True
                self.advance()
            elif token.is_keyword("versioned"):
                versioned = True
                self.advance()
            else:
                break
        self.expect_keyword("class")
        name = self.expect_ident().text
        bases: List[str] = []
        if self.peek().is_punct(":"):
            self.advance()
            while True:
                token = self.peek()
                if token.kind == KEYWORD and token.text in ("public", "private"):
                    self.advance()  # inheritance access ignored, as in the paper
                bases.append(self.expect_ident().text)
                if self.peek().is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct("{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        constraints: List[ast.ConstraintDecl] = []
        triggers: List[ast.TriggerDecl] = []
        access = "private"  # C++ default for class members
        while not self.peek().is_punct("}"):
            token = self.peek()
            if (token.kind == KEYWORD
                    and token.text in ("public", "private", "constraint",
                                       "trigger")
                    and self.peek(1).is_punct(":")):
                section = token.text
                self.advance()
                self.advance()
                if section == "constraint":
                    while not self._at_section_boundary():
                        constraints.append(self.parse_constraint_expr())
                elif section == "trigger":
                    while not self._at_section_boundary():
                        triggers.append(self.parse_trigger_decl())
                else:
                    access = section
                continue
            member = self.parse_member(access)
            if isinstance(member, ast.MethodDecl):
                methods.append(member)
            else:
                fields.extend(member)
        self.expect_punct("}")
        self.expect_punct(";")
        return ast.ClassDef(
            name=name,
            bases=tuple(bases),
            fields=tuple(fields),
            methods=tuple(methods),
            constraints=tuple(constraints),
            triggers=tuple(triggers),
            persistent=persistent,
            versioned=versioned,
        )

    def _at_section_boundary(self) -> bool:
        token = self.peek()
        if token.is_punct("}") or token.kind == EOF:
            return True
        return (token.kind == KEYWORD
                and token.text in ("public", "private", "constraint",
                                   "trigger")
                and self.peek(1).is_punct(":"))

    def parse_constraint_expr(self) -> ast.ConstraintDecl:
        start = self.position
        expr = self.parse_expression()
        end = self.position
        self.expect_punct(";")
        source = " ".join(
            token.text if token.kind != STRING else f'"{token.text}"'
            for token in self.tokens[start:end]
        )
        return ast.ConstraintDecl(expr=expr, source=source)

    def parse_trigger_decl(self) -> ast.TriggerDecl:
        """``[once] name : condition ==> attr = expr (, attr = expr)* ;``"""
        start = self.position
        once = False
        if self.peek().is_keyword("once"):
            once = True
            self.advance()
        name = self.expect_ident().text
        self.expect_punct(":")
        condition = self.parse_expression()
        self.expect_punct("==>")
        assignments: List = []
        while True:
            target = self.expect_ident().text
            self.expect_punct("=")
            assignments.append((target, self.parse_expression()))
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        end = self.position
        self.expect_punct(";")
        source = " ".join(
            token.text if token.kind != STRING else f'"{token.text}"'
            for token in self.tokens[start:end]
        )
        return ast.TriggerDecl(
            name=name,
            condition=condition,
            assignments=tuple(assignments),
            once=once,
            source=source,
        )

    def parse_member(self, access: str):
        """A field declaration (list) or a method declaration."""
        save = self.position
        type_name = self.parse_type_expr()
        pointer = False
        if self.peek().is_punct("*"):
            pointer = True
            self.advance()
        name_token = self.expect_ident()
        if self.peek().is_punct("("):
            # method declaration
            self.advance()
            self.expect_punct(")")
            is_const = False
            if self.peek().is_keyword("const"):
                is_const = True
                self.advance()
            self.expect_punct(";")
            result = ast.TypeName(
                base=type_name.base, pointer=pointer, set_of=type_name.set_of
            )
            return ast.MethodDecl(
                name=name_token.text,
                result=result,
                access=access,
                is_const=is_const,
                line=name_token.line,
            )
        # field declaration(s)
        self.position = save
        return self.parse_field_decl(access)

    def parse_field_decl(self, access: str) -> List[ast.FieldDecl]:
        type_name = self.parse_type_expr()
        fields: List[ast.FieldDecl] = []
        while True:
            pointer = False
            if self.peek().is_punct("*"):
                pointer = True
                self.advance()
            name_token = self.expect_ident()
            lengths: List[int] = []
            while self.peek().is_punct("["):
                self.advance()
                size_token = self.peek()
                if size_token.kind != NUMBER:
                    raise self.error("expected array length")
                self.advance()
                lengths.append(int(size_token.text))
                self.expect_punct("]")
            declared = ast.TypeName(
                base=type_name.base,
                pointer=pointer or type_name.pointer,
                set_of=type_name.set_of,
                array_lengths=tuple(lengths),
            )
            fields.append(
                ast.FieldDecl(
                    name=name_token.text,
                    type_name=declared,
                    access=access,
                    line=name_token.line,
                )
            )
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(";")
        return fields

    def parse_type_expr(self) -> ast.TypeName:
        token = self.peek()
        if token.is_keyword("set"):
            self.advance()
            self.expect_punct("<")
            element = self.parse_type_expr()
            if self.peek().is_punct("*"):
                element = ast.TypeName(
                    base=element.base, pointer=True, set_of=element.set_of
                )
                self.advance()
            self.expect_punct(">")
            return ast.TypeName(base="set", set_of=element)
        if token.kind == KEYWORD and token.text in _BUILTIN_TYPES:
            self.advance()
            return ast.TypeName(base=token.text)
        if token.kind == IDENT:
            self.advance()
            return ast.TypeName(base=token.text)
        raise self.error("expected a type")

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.peek().is_punct("||"):
            self.advance()
            left = ast.Binary("||", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.peek().is_punct("&&"):
            self.advance()
            left = ast.Binary("&&", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.peek().is_punct("!"):
            self.advance()
            return ast.Unary("!", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == PUNCT and token.text in _CMP_OPS:
            self.advance()
            return ast.Binary(token.text, left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_term()
        while self.peek().kind == PUNCT and self.peek().text in ("+", "-"):
            op = self.advance().text
            left = ast.Binary(op, left, self.parse_term())
        return left

    def parse_term(self) -> ast.Expr:
        left = self.parse_unary()
        while self.peek().kind == PUNCT and self.peek().text in ("*", "/", "%"):
            op = self.advance().text
            left = ast.Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.peek().is_punct("-"):
            self.advance()
            return ast.Unary("-", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("."):
                self.advance()
                expr = ast.FieldAccess(expr, self.expect_ident().text, arrow=False)
            elif token.is_punct("->"):
                self.advance()
                expr = ast.FieldAccess(expr, self.expect_ident().text, arrow=True)
            elif token.is_punct("["):
                self.advance()
                subscript = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(expr, subscript)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(int(token.text))
        if token.kind == FLOATNUM:
            self.advance()
            return ast.Literal(float(token.text))
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.text)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("null") or token.is_keyword("nil"):
            self.advance()
            return ast.Literal(None)
        if token.kind == IDENT:
            self.advance()
            if self.peek().is_punct("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    while True:
                        args.append(self.parse_expression())
                        if self.peek().is_punct(","):
                            self.advance()
                            continue
                        break
                self.expect_punct(")")
                return ast.Call(token.text, tuple(args))
            return ast.Name(token.text)
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error("expected an expression")


def parse_program(source: str) -> ast.Program:
    """Parse a full O++ source unit (structs and class definitions)."""
    parser = _Parser(source)
    return parser.parse_program()


def parse_trigger(source: str) -> ast.TriggerDecl:
    """Parse one trigger declaration (without the trailing semicolon)."""
    parser = _Parser(source if source.rstrip().endswith(";")
                     else source + " ;")
    decl = parser.parse_trigger_decl()
    trailing = parser.peek()
    if trailing.kind != EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return decl


def parse_expression(source: str) -> ast.Expr:
    """Parse one selection predicate (the condition-box string, §5.2)."""
    parser = _Parser(source)
    expr = parser.parse_expression()
    trailing = parser.peek()
    if trailing.kind != EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return expr
