"""The O++ type lattice.

Ode objects are not simple tuples (paper §4.1): attribute values may be
integers, floats, booleans, strings, dates, fixed-size arrays, sets, nested
structures, references to other persistent objects, and sets of references.
This module defines one :class:`TypeSpec` subclass per type constructor.

Each type knows how to

* ``validate`` a Python value against itself,
* produce a ``default`` value,
* print itself as an O++ declarator (``declare``) — used by the class
  definition window,
* round-trip through a plain-dict form (``to_dict`` / ``from_dict``) — used
  by the persistent schema catalog.

Type objects are immutable and hashable, so they can be shared freely and
used as dict keys.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, TypeError_
from repro.ode.oid import Oid


class TypeSpec:
    """Abstract base for all O++ types."""

    #: short tag used in dict round-tripping; subclasses override.
    tag: str = "abstract"

    def validate(self, value: Any, schema: Optional["SchemaLike"] = None) -> None:
        """Raise :class:`TypeError_` unless *value* conforms to this type.

        *schema*, when provided, enables reference-target checking (a
        ``RefType`` value must point into the named class's cluster or one
        of its subclasses).
        """
        raise NotImplementedError

    def default(self) -> Any:
        """A freshly constructed zero value of this type."""
        raise NotImplementedError

    def declare(self, varname: str) -> str:
        """O++ declarator for an attribute of this type named *varname*."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """Plain-dict form for catalog persistence."""
        raise NotImplementedError

    # -- identity ----------------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.declare('_')!r})"


class SchemaLike:
    """Minimal protocol the type checker needs from a schema.

    Defined here to avoid a circular import with :mod:`repro.ode.schema`.
    """

    def has_class(self, name: str) -> bool:  # pragma: no cover - protocol
        raise NotImplementedError

    def is_subclass(self, name: str, ancestor: str) -> bool:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------

class IntType(TypeSpec):
    """A 64-bit signed integer."""

    tag = "int"
    MIN = -(2 ** 63)
    MAX = 2 ** 63 - 1

    def validate(self, value, schema=None):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError_(f"expected int, got {value!r}")
        if not (self.MIN <= value <= self.MAX):
            raise TypeError_(f"int out of 64-bit range: {value!r}")

    def default(self):
        return 0

    def declare(self, varname):
        return f"int {varname}"

    def to_dict(self):
        return {"tag": self.tag}

    def _key(self):
        return ()


class FloatType(TypeSpec):
    """A double-precision float."""

    tag = "float"

    def validate(self, value, schema=None):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"expected float, got {value!r}")

    def default(self):
        return 0.0

    def declare(self, varname):
        return f"double {varname}"

    def to_dict(self):
        return {"tag": self.tag}

    def _key(self):
        return ()


class BoolType(TypeSpec):
    """A boolean."""

    tag = "bool"

    def validate(self, value, schema=None):
        if not isinstance(value, bool):
            raise TypeError_(f"expected bool, got {value!r}")

    def default(self):
        return False

    def declare(self, varname):
        return f"int {varname} /* bool */"

    def to_dict(self):
        return {"tag": self.tag}

    def _key(self):
        return ()


class StringType(TypeSpec):
    """A text string, optionally bounded in length.

    O++ strings are ``char*`` / ``Name`` values; a bounded string prints as a
    ``char`` array declarator.
    """

    tag = "string"

    def __init__(self, max_length: Optional[int] = None):
        if max_length is not None and max_length <= 0:
            raise SchemaError(f"string max_length must be positive, got {max_length}")
        self.max_length = max_length

    def validate(self, value, schema=None):
        if not isinstance(value, str):
            raise TypeError_(f"expected str, got {value!r}")
        if self.max_length is not None and len(value) > self.max_length:
            raise TypeError_(
                f"string of length {len(value)} exceeds max_length {self.max_length}"
            )

    def default(self):
        return ""

    def declare(self, varname):
        if self.max_length is None:
            return f"char *{varname}"
        return f"char {varname}[{self.max_length}]"

    def to_dict(self):
        return {"tag": self.tag, "max_length": self.max_length}

    def _key(self):
        return (self.max_length,)


class DateType(TypeSpec):
    """A calendar date (``datetime.date``)."""

    tag = "date"
    EPOCH = datetime.date(1970, 1, 1)

    def validate(self, value, schema=None):
        if not isinstance(value, datetime.date) or isinstance(value, datetime.datetime):
            raise TypeError_(f"expected datetime.date, got {value!r}")

    def default(self):
        return self.EPOCH

    def declare(self, varname):
        return f"Date {varname}"

    def to_dict(self):
        return {"tag": self.tag}

    def _key(self):
        return ()


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

class ArrayType(TypeSpec):
    """A fixed-length array of a single element type."""

    tag = "array"

    def __init__(self, element: TypeSpec, length: int):
        if not isinstance(element, TypeSpec):
            raise SchemaError(f"array element must be a TypeSpec, got {element!r}")
        if length <= 0:
            raise SchemaError(f"array length must be positive, got {length}")
        self.element = element
        self.length = length

    def validate(self, value, schema=None):
        if not isinstance(value, (list, tuple)):
            raise TypeError_(f"expected list/tuple, got {value!r}")
        if len(value) != self.length:
            raise TypeError_(
                f"array of length {self.length} expected, got {len(value)} elements"
            )
        for item in value:
            self.element.validate(item, schema)

    def default(self):
        return [self.element.default() for _ in range(self.length)]

    def declare(self, varname):
        inner = self.element.declare(varname)
        return f"{inner}[{self.length}]"

    def to_dict(self):
        return {"tag": self.tag, "element": self.element.to_dict(), "length": self.length}

    def _key(self):
        return (self.element, self.length)


class SetType(TypeSpec):
    """An unordered collection without duplicates.

    Values are represented as Python lists preserving insertion order (so
    renderings are deterministic) but validated for uniqueness.  Use
    ``SetType(RefType(cls))`` for Ode's set-of-references.
    """

    tag = "set"

    def __init__(self, element: TypeSpec):
        if not isinstance(element, TypeSpec):
            raise SchemaError(f"set element must be a TypeSpec, got {element!r}")
        self.element = element

    def validate(self, value, schema=None):
        if not isinstance(value, (list, tuple)):
            raise TypeError_(f"expected list/tuple for set value, got {value!r}")
        seen = []
        for item in value:
            self.element.validate(item, schema)
            if item in seen:
                raise TypeError_(f"duplicate element in set: {item!r}")
            seen.append(item)

    def default(self):
        return []

    def declare(self, varname):
        element_decl = self.element.declare("")
        return f"set<{element_decl.strip()}> {varname}"

    def to_dict(self):
        return {"tag": self.tag, "element": self.element.to_dict()}

    def _key(self):
        return (self.element,)


class StructType(TypeSpec):
    """A named record of (field name, type) pairs, e.g. an ``Address``."""

    tag = "struct"

    def __init__(self, name: str, fields: Sequence[Tuple[str, TypeSpec]]):
        if not name:
            raise SchemaError("struct must be named")
        names = [fname for fname, _ in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in struct {name!r}")
        for fname, ftype in fields:
            if not isinstance(ftype, TypeSpec):
                raise SchemaError(f"field {fname!r} of struct {name!r} is not a TypeSpec")
        self.name = name
        self.fields: Tuple[Tuple[str, TypeSpec], ...] = tuple(fields)

    def field_type(self, fname: str) -> TypeSpec:
        for name, ftype in self.fields:
            if name == fname:
                return ftype
        raise SchemaError(f"struct {self.name!r} has no field {fname!r}")

    def validate(self, value, schema=None):
        if not isinstance(value, Mapping):
            raise TypeError_(f"expected mapping for struct {self.name!r}, got {value!r}")
        field_names = {fname for fname, _ in self.fields}
        extra = set(value) - field_names
        if extra:
            raise TypeError_(f"unknown fields for struct {self.name!r}: {sorted(extra)}")
        missing = field_names - set(value)
        if missing:
            raise TypeError_(f"missing fields for struct {self.name!r}: {sorted(missing)}")
        for fname, ftype in self.fields:
            ftype.validate(value[fname], schema)

    def default(self):
        return {fname: ftype.default() for fname, ftype in self.fields}

    def declare(self, varname):
        return f"{self.name} {varname}"

    def opp_definition(self) -> str:
        """Full textual O++ definition of the struct."""
        lines = [f"struct {self.name} {{"]
        for fname, ftype in self.fields:
            lines.append(f"    {ftype.declare(fname)};")
        lines.append("};")
        return "\n".join(lines)

    def to_dict(self):
        return {
            "tag": self.tag,
            "name": self.name,
            "fields": [[fname, ftype.to_dict()] for fname, ftype in self.fields],
        }

    def _key(self):
        return (self.name, self.fields)


class RefType(TypeSpec):
    """A reference to a persistent object of a named class (or subclass).

    The runtime value is an :class:`~repro.ode.oid.Oid` or ``None`` (a null
    reference).
    """

    tag = "ref"

    def __init__(self, class_name: str):
        if not class_name:
            raise SchemaError("reference must name a class")
        self.class_name = class_name

    def validate(self, value, schema=None):
        if value is None:
            return
        if not isinstance(value, Oid):
            raise TypeError_(f"expected Oid or None, got {value!r}")
        if schema is not None:
            if not schema.has_class(self.class_name):
                raise TypeError_(f"reference target class {self.class_name!r} unknown")
            if not schema.is_subclass(value.cluster, self.class_name):
                raise TypeError_(
                    f"reference of type {self.class_name!r} cannot point at an "
                    f"object in cluster {value.cluster!r}"
                )

    def default(self):
        return None

    def declare(self, varname):
        return f"{self.class_name} *{varname}"

    def to_dict(self):
        return {"tag": self.tag, "class_name": self.class_name}

    def _key(self):
        return (self.class_name,)


# ---------------------------------------------------------------------------
# Dict round-tripping
# ---------------------------------------------------------------------------

_SCALARS = {
    IntType.tag: IntType,
    FloatType.tag: FloatType,
    BoolType.tag: BoolType,
    DateType.tag: DateType,
}


def type_from_dict(data: Mapping) -> TypeSpec:
    """Inverse of :meth:`TypeSpec.to_dict`."""
    tag = data.get("tag")
    if tag in _SCALARS:
        return _SCALARS[tag]()
    if tag == StringType.tag:
        return StringType(data.get("max_length"))
    if tag == ArrayType.tag:
        return ArrayType(type_from_dict(data["element"]), data["length"])
    if tag == SetType.tag:
        return SetType(type_from_dict(data["element"]))
    if tag == StructType.tag:
        fields = [(fname, type_from_dict(fdata)) for fname, fdata in data["fields"]]
        return StructType(data["name"], fields)
    if tag == RefType.tag:
        return RefType(data["class_name"])
    raise SchemaError(f"unknown type tag {tag!r}")


def referenced_classes(spec: TypeSpec) -> Iterable[str]:
    """Yield every class name referenced (transitively) by *spec*.

    Used by the schema checker to ensure reference targets exist and by the
    object browser to decide which navigation buttons a panel needs.
    """
    if isinstance(spec, RefType):
        yield spec.class_name
    elif isinstance(spec, (ArrayType, SetType)):
        yield from referenced_classes(spec.element)
    elif isinstance(spec, StructType):
        for _, ftype in spec.fields:
            yield from referenced_classes(ftype)
