"""The Ode object manager.

OdeView never reads pages: "OdeView calls the Ode object manager to get the
stored representation of the object into an object buffer" (paper §4.2).
The object manager is the single gateway between the front end and storage:

* creating, updating, and deleting persistent objects, with type checking,
  constraint enforcement, and trigger firing;
* fetching :class:`ObjectBuffer` s — the decoded, self-contained form a
  display function receives;
* cluster cursors with selection-predicate pushdown (paper §5.2: OdeView
  "passes the selection predicate to the object manager which uses it to
  filter objects retrieved from the databases");
* version snapshots for versioned classes.

An :class:`ObjectBuffer` deliberately carries everything a display function
needs (values, the public-attribute list, computed attributes) so display
code never imports the schema — the "principle of separation".
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import (
    AccessError,
    ObjectNotFoundError,
    SchemaError,
)
from repro.ode.classdef import OdeClass
from repro.ode.cluster import Cluster, ClusterCursor, SnapshotCursor
from repro.ode.codec import decode_object, encode_object
from repro.ode.constraints import BehaviourRegistry
from repro.ode.oid import Oid
from repro.ode.schema import Schema
from repro.ode.store import ObjectStore, Snapshot

Predicate = Callable[["ObjectBuffer"], bool]

#: Maximum rounds of trigger-produced updates applied per update call.
_MAX_TRIGGER_ROUNDS = 8


@dataclass(frozen=True)
class ObjectBuffer:
    """The in-memory copy of one object, as handed to display functions.

    ``values`` holds every stored attribute (public and private);
    ``public_names`` says which of them encapsulation exposes; ``computed``
    holds the results of the class's pure public member functions, already
    evaluated (paper §5.1: displayed attributes "may actually be computed
    using other attributes").
    """

    oid: Oid
    class_name: str
    values: Mapping[str, Any]
    public_names: tuple
    computed: Mapping[str, Any] = field(default_factory=dict)

    def value(self, name: str, privileged: bool = False) -> Any:
        """Read one attribute, honouring encapsulation (paper §4.1 point 3)."""
        if name in self.computed:
            return self.computed[name]
        if name not in self.values:
            raise ObjectNotFoundError(
                f"object {self.oid} has no attribute {name!r}"
            )
        if name not in self.public_names and not privileged:
            raise AccessError(
                f"attribute {name!r} of {self.class_name} is private; "
                "privileged mode required"
            )
        return self.values[name]

    def public_view(self) -> Dict[str, Any]:
        """Public stored attributes plus computed attributes."""
        view = {name: self.values[name] for name in self.public_names}
        view.update(self.computed)
        return view

    def attribute_names(self, privileged: bool = False) -> List[str]:
        names = list(self.public_names) + list(self.computed)
        if privileged:
            names += [n for n in self.values if n not in self.public_names]
        return names


class ObjectManager:
    """Typed object operations over one database's store and schema."""

    def __init__(self, store: ObjectStore, schema: Schema, database: str,
                 behaviours: Optional[BehaviourRegistry] = None):
        self._store = store
        self.schema = schema
        self.database = database
        self.behaviours = behaviours or BehaviourRegistry()
        self._version_manager = None  # created lazily to avoid an import cycle
        from repro.ode.index import IndexManager
        from repro.ode.opp.bindings import (
            CompiledConstraintCache,
            CompiledTriggerCache,
        )

        self.indexes = IndexManager(self)
        # Index maintenance rides the commit blob: the store calls back
        # between page apply and epoch publish, so index entries become
        # visible atomically with the data they index (and are re-derived
        # wholesale after a recovery or resync).
        store.add_apply_listener(self.indexes.apply_effects)
        store.add_rebuild_listener(self.indexes.on_store_rebuilt)
        self._compiled_constraints = CompiledConstraintCache(schema)
        self._compiled_triggers = CompiledTriggerCache(schema)
        from repro.obs import get_registry

        registry = get_registry()
        self._m_buffers = registry.counter("objectmanager.buffers")
        self._m_buffer_time = registry.histogram(
            "objectmanager.get_buffer_seconds")
        # Per-thread stack of pinned snapshots (see pinned()): reads on
        # a thread with a pin in effect come from that snapshot, so a
        # multi-step operation renders one commit epoch.
        self._pin_stack = threading.local()

    # -- helpers ------------------------------------------------------------

    @property
    def store(self) -> ObjectStore:
        return self._store

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the store's current epoch (see :meth:`ObjectStore.snapshot`)."""
        return self._store.snapshot()

    @contextmanager
    def pinned(self) -> Iterator[Snapshot]:
        """Run the body against one pinned epoch.

        Every read this thread makes inside the ``with`` — buffers,
        clusters, counts, selects — comes from the same snapshot, so a
        subtree refresh (``core/sync.sequence``) renders one consistent
        state instead of interleaving with concurrent commits.  Nests;
        the innermost pin wins.
        """
        stack = getattr(self._pin_stack, "stack", None)
        if stack is None:
            stack = self._pin_stack.stack = []
        with self._store.snapshot() as snap:
            stack.append(snap)
            try:
                yield snap
            finally:
                stack.pop()

    def _current_snapshot(self) -> Optional[Snapshot]:
        stack = getattr(self._pin_stack, "stack", None)
        return stack[-1] if stack else None

    def ambient_snapshot(self) -> Optional[Snapshot]:
        """The innermost :meth:`pinned` snapshot on this thread, if any.

        The planner uses this to probe indexes at the reader's epoch
        instead of at head, so a pinned select never sees index entries
        newer than its snapshot.
        """
        return self._current_snapshot()

    @property
    def statistics(self):
        """The per-cluster/per-attribute statistics catalog the planner
        costs plans against (see :mod:`repro.core.statistics`)."""
        return self.indexes.statistics

    def _read_record(self, oid: Oid,
                     snapshot: Optional[Snapshot] = None) -> bytes:
        reader = snapshot or self._current_snapshot()
        if reader is not None:
            return reader.get(oid)
        # No pin: read through the store, which honours the open
        # transaction's overlay (read-your-writes).
        return self._store.get(oid)

    def _versions(self):
        if self._version_manager is None:
            from repro.ode.versions import VersionManager

            self._version_manager = VersionManager(self._store, self.database)
        return self._version_manager

    @property
    def versions(self):
        """The version manager (histories of versioned objects)."""
        return self._versions()

    def _class(self, class_name: str) -> OdeClass:
        return self.schema.get_class(class_name)

    def _full_values(self, class_name: str, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Fill defaults, reject unknown attributes, type-check everything."""
        attributes = {a.name: a for a in self.schema.all_attributes(class_name)}
        unknown = set(values) - set(attributes)
        if unknown:
            raise SchemaError(
                f"class {class_name!r} has no attributes {sorted(unknown)}"
            )
        complete: Dict[str, Any] = {}
        for name, attr in attributes.items():
            value = values.get(name, attr.type_spec.default())
            attr.type_spec.validate(value, self.schema)
            complete[name] = value
        return complete

    def _enforce_constraints(self, class_name: str, values: Mapping[str, Any]) -> None:
        mro = self.schema.mro(class_name)
        for constraint in self.behaviours.constraints_for(mro):
            constraint.enforce(class_name, values)
        # constraints declared in the class's O++ source (paper §1)
        for constraint in self._compiled_constraints.constraints_for(mro):
            constraint.enforce(class_name, values)

    def _fire_triggers(self, class_name: str,
                       values: Dict[str, Any]) -> Dict[str, Any]:
        """Run after-update triggers; apply their updates, bounded rounds."""
        mro = self.schema.mro(class_name)
        triggers = (self.behaviours.triggers_for(mro)
                    + self._compiled_triggers.triggers_for(mro))
        if not triggers:
            return values
        for _round in range(_MAX_TRIGGER_ROUNDS):
            changed = False
            for trigger in triggers:
                updates = trigger.maybe_fire(class_name, values)
                if updates:
                    values = dict(values)
                    values.update(self._check_updates(class_name, updates))
                    changed = True
            if not changed:
                return values
        return values

    def _check_updates(self, class_name: str,
                       updates: Mapping[str, Any]) -> Dict[str, Any]:
        checked: Dict[str, Any] = {}
        for name, value in updates.items():
            attr = self.schema.find_attribute(class_name, name)
            attr.type_spec.validate(value, self.schema)
            checked[name] = value
        return checked

    # -- object lifecycle --------------------------------------------------------

    def new_object(self, class_name: str, values: Optional[Mapping[str, Any]] = None,
                   oid: Optional[Oid] = None) -> Oid:
        """Create a persistent object; returns its OID."""
        cls = self._class(class_name)
        if not cls.persistent:
            raise SchemaError(f"class {class_name!r} is not persistent")
        complete = self._full_values(class_name, values or {})
        self._enforce_constraints(class_name, complete)
        if oid is None:
            oid = self._store.allocate_oid(self.database, class_name)
        elif oid.cluster != class_name:
            raise SchemaError(
                f"OID cluster {oid.cluster!r} does not match class {class_name!r}"
            )
        self._store.put(oid, encode_object(oid, class_name, complete))
        return oid

    def get_buffer(self, oid: Oid,
                   snapshot: Optional[Snapshot] = None) -> ObjectBuffer:
        """Fetch the object into an object buffer (paper §4.2)."""
        self._m_buffers.inc()
        with self._m_buffer_time.time():
            return self._build_buffer(oid, snapshot)

    def _build_buffer(self, oid: Oid,
                      snapshot: Optional[Snapshot] = None) -> ObjectBuffer:
        data = self._read_record(oid, snapshot)
        stored_oid, class_name, values = decode_object(data)
        if stored_oid != oid:
            raise ObjectNotFoundError(
                f"record under {oid} claims identity {stored_oid}"
            )
        public_names = tuple(
            attr.name
            for attr in self.schema.all_attributes(class_name)
            if attr.is_public
        )
        computed: Dict[str, Any] = {}
        bound = self.behaviours.methods.get(class_name, {})
        for method in self.schema.all_methods(class_name):
            if not (method.is_public and not method.side_effects):
                continue
            fn = method.fn or bound.get(method.name)
            if fn is not None:
                computed[method.name] = fn(values)
        return ObjectBuffer(
            oid=oid,
            class_name=class_name,
            values=values,
            public_names=public_names,
            computed=computed,
        )

    def update(self, oid: Oid, updates: Mapping[str, Any]) -> ObjectBuffer:
        """Apply attribute updates; enforce constraints; fire triggers."""
        buffer = self.get_buffer(oid)
        cls = self._class(buffer.class_name)
        if cls.versioned:
            self._versions().snapshot(oid, buffer.class_name, dict(buffer.values))
        values = dict(buffer.values)
        values.update(self._check_updates(buffer.class_name, updates))
        self._enforce_constraints(buffer.class_name, values)
        values = self._fire_triggers(buffer.class_name, values)
        self._enforce_constraints(buffer.class_name, values)
        self._store.put(oid, encode_object(oid, buffer.class_name, values))
        return self.get_buffer(oid)

    def delete(self, oid: Oid) -> None:
        self._store.get(oid)  # raises ObjectNotFoundError if absent
        self._store.delete(oid)

    def exists(self, oid: Oid) -> bool:
        snapshot = self._current_snapshot()
        if snapshot is not None:
            return snapshot.exists(oid)
        return self._store.exists(oid)

    # -- clusters and sequencing --------------------------------------------------

    def cluster(self, class_name: str) -> Cluster:
        self._class(class_name)
        reader = self._current_snapshot() or self._store
        return Cluster(reader, self.database, class_name)

    def count(self, class_name: str) -> int:
        return len(self.cluster(class_name))

    def cursor(self, class_name: str,
               predicate: Optional[Predicate] = None) -> ClusterCursor:
        """A sequencing cursor, optionally filtered by a pushed-down
        predicate.

        The cursor owns a snapshot pinned at creation: the whole walk
        sees one commit epoch, ``reset()`` refreshes to the current one,
        and ``close()`` releases the pin.  Inside :meth:`pinned`, the
        ambient snapshot is shared instead (and stays pinned by the
        context, not the cursor).
        """
        self._class(class_name)
        ambient = self._current_snapshot()
        snapshot = ambient if ambient is not None else self._store.snapshot()
        matcher = None
        if predicate is not None:
            def matcher(oid: Oid, _predicate=predicate,
                        _snapshot=snapshot) -> bool:
                return bool(_predicate(self.get_buffer(oid, _snapshot)))
        cluster = Cluster(snapshot, self.database, class_name)
        return SnapshotCursor(
            cluster, matcher,
            snapshot=None if ambient is not None else snapshot)

    def select(self, class_name: str,
               predicate: Optional[Predicate] = None) -> Iterator[ObjectBuffer]:
        """All (matching) buffers of a cluster, in sequencing order, all
        from one snapshot — a select never observes half a concurrent
        commit.

        The whole cluster will be touched, so the scan's page footprint
        is hinted to the buffer pool up front (sequential prefetch).
        """
        self._store.prefetch_cluster(class_name)
        ambient = self._current_snapshot()
        if ambient is not None:
            yield from self._select_from(ambient, class_name, predicate)
        else:
            with self.pinned() as snapshot:
                yield from self._select_from(snapshot, class_name, predicate)

    def _select_from(self, snapshot: Snapshot, class_name: str,
                     predicate: Optional[Predicate]) -> Iterator[ObjectBuffer]:
        for number in snapshot.cluster_numbers(class_name):
            oid = Oid(self.database, class_name, number)
            buffer = self.get_buffer(oid, snapshot)
            if predicate is None or predicate(buffer):
                yield buffer

    # -- transactions -----------------------------------------------------------------

    def begin(self) -> int:
        return self._store.begin()

    def commit(self) -> None:
        self._store.commit()

    def commit_stage(self) -> int:
        """Queue the open transaction on the group-commit barrier and
        return its minted epoch; :meth:`commit_wait` makes it durable.
        Splitting the two lets a caller release its own write lock while
        the batch fsync happens on the shared barrier."""
        return self._store.commit_stage()

    def commit_wait(self, epoch: int) -> None:
        self._store.commit_wait(epoch)

    def abort(self) -> None:
        self._store.abort()
        if self._version_manager is not None:
            # snapshot() may have indexed version records the abort just
            # rolled back; rebuild the index from committed state.
            self._version_manager.invalidate()
