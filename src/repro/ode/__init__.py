"""The Ode substrate: object model, schema, storage, object manager.

This subpackage is a from-scratch reproduction of the parts of the Ode
object database (Agrawal & Gehani, SIGMOD 1989) that OdeView sits on.
"""

from repro.ode.backup import dump_to_file, export_database, import_database, load_from_file
from repro.ode.bufferpool import BufferPool
from repro.ode.classdef import Access, Attribute, MemberFunction, OdeClass
from repro.ode.evictionpolicy import (
    ClockPolicy,
    EvictionPolicy,
    LRUPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.ode.index import AttributeIndex, IndexManager
from repro.ode.cluster import Cluster, ClusterCursor
from repro.ode.constraints import BehaviourRegistry, Constraint, Trigger
from repro.ode.database import Database, discover_databases
from repro.ode.objectmanager import ObjectBuffer, ObjectManager
from repro.ode.oid import Oid
from repro.ode.schema import Schema
from repro.ode.store import ObjectStore
from repro.ode.types import (
    ArrayType,
    BoolType,
    DateType,
    FloatType,
    IntType,
    RefType,
    SetType,
    StringType,
    StructType,
    TypeSpec,
    type_from_dict,
)
from repro.ode.versions import VersionManager, VersionRecord

__all__ = [
    "Access",
    "AttributeIndex",
    "ArrayType",
    "Attribute",
    "BehaviourRegistry",
    "BoolType",
    "BufferPool",
    "ClockPolicy",
    "Cluster",
    "ClusterCursor",
    "Constraint",
    "EvictionPolicy",
    "LRUPolicy",
    "TwoQPolicy",
    "Database",
    "DateType",
    "FloatType",
    "IndexManager",
    "IntType",
    "MemberFunction",
    "ObjectBuffer",
    "ObjectManager",
    "ObjectStore",
    "OdeClass",
    "Oid",
    "RefType",
    "Schema",
    "SetType",
    "StringType",
    "StructType",
    "Trigger",
    "TypeSpec",
    "VersionManager",
    "VersionRecord",
    "discover_databases",
    "dump_to_file",
    "export_database",
    "import_database",
    "load_from_file",
    "make_policy",
    "type_from_dict",
]
