"""An Ode database on disk.

A database is a directory::

    lab.odb/
      catalog.json    the persistent schema (structs + class definitions)
      data.pages      slotted pages (objects)
      wal.log         write-ahead log
      display/        dynamically linked display modules, one per class
      icon.txt        optional ASCII icon shown in the database window

The catalog stores class *definitions*; behaviour (method bodies,
constraints, triggers) is re-bound at open time through the
:class:`~repro.ode.constraints.BehaviourRegistry` — the same split as Ode,
where method bodies live in compiled object files outside the catalog.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.errors import SchemaError, StorageError
from repro.ode.classdef import OdeClass
from repro.ode.constraints import BehaviourRegistry
from repro.ode.objectmanager import ObjectManager
from repro.ode.schema import Schema
from repro.ode.store import ObjectStore
from repro.ode.types import StructType

CATALOG_FILE = "catalog.json"
DISPLAY_DIR = "display"
ICON_FILE = "icon.txt"
BEHAVIOURS_FILE = "behaviours.py"
LOCK_FILE = "lock"
INDEXES_FILE = "indexes.json"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


#: Directories currently open *in this process* (same-pid double opens).
_OPEN_DIRECTORIES: set = set()

DEFAULT_ICON = "[db]"


class Database:
    """One open Ode database: schema + store + object manager."""

    def __init__(self, directory: Union[str, Path], create: bool = False,
                 pool_capacity: int = 64, eviction_policy: str = "lru",
                 group_commit_window_ms: float = 0.0,
                 group_commit_max_batch: int = 64,
                 fault_gate=None):
        self.directory = Path(directory)
        catalog_path = self.directory / CATALOG_FILE
        if create:
            if catalog_path.exists():
                raise StorageError(f"database already exists at {self.directory}")
            self.directory.mkdir(parents=True, exist_ok=True)
            self.schema = Schema()
            self._save_catalog()
        else:
            if not catalog_path.exists():
                raise StorageError(f"no database at {self.directory} (missing catalog)")
            with open(catalog_path, "r", encoding="utf-8") as fh:
                self.schema = Schema.from_dict(json.load(fh))
        self.name = self.directory.name.removesuffix(".odb")
        self._acquire_lock()
        try:
            self.behaviours = BehaviourRegistry()
            self.store = ObjectStore(
                self.directory,
                pool_capacity=pool_capacity,
                eviction_policy=eviction_policy,
                group_commit_window_ms=group_commit_window_ms,
                group_commit_max_batch=group_commit_max_batch,
                fault_gate=fault_gate)
            self.objects = ObjectManager(
                self.store, self.schema, self.name, self.behaviours
            )
            (self.directory / DISPLAY_DIR).mkdir(exist_ok=True)
            self._load_behaviours()
            self._rebuild_persistent_indexes()
        except BaseException:
            # A failed open must not leave the single-writer lock behind,
            # or the database stays unopenable for the rest of the process.
            store = getattr(self, "store", None)
            if store is not None:
                try:
                    store.close()
                except Exception:
                    pass
            self._release_lock()
            raise

    # -- creation helpers ---------------------------------------------------

    @classmethod
    def create(cls, directory: Union[str, Path], **kwargs) -> "Database":
        return cls(directory, create=True, **kwargs)

    @classmethod
    def open(cls, directory: Union[str, Path], **kwargs) -> "Database":
        return cls(directory, create=False, **kwargs)

    # -- single-writer lock ----------------------------------------------------

    def _lock_path(self) -> Path:
        return self.directory / LOCK_FILE

    def _acquire_lock(self) -> None:
        """One process per database: the store has no concurrency control.

        A stale lock (its pid no longer runs) is stolen silently, so a
        crashed session never bricks the database.
        """
        resolved = self.directory.resolve()
        if resolved in _OPEN_DIRECTORIES:
            raise StorageError(
                f"database {self.name!r} is already open in this process"
            )
        lock = self._lock_path()
        if lock.exists():
            try:
                holder = int(lock.read_text().strip())
            except ValueError:
                holder = -1
            if holder > 0 and holder != os.getpid() and _pid_alive(holder):
                raise StorageError(
                    f"database {self.name!r} is locked by running "
                    f"process {holder}"
                )
        lock.write_text(str(os.getpid()))
        _OPEN_DIRECTORIES.add(resolved)
        self._locked = True

    def _release_lock(self) -> None:
        if getattr(self, "_locked", False):
            try:
                self._lock_path().unlink(missing_ok=True)
            finally:
                _OPEN_DIRECTORIES.discard(self.directory.resolve())
                self._locked = False

    # -- persistent index definitions --------------------------------------------

    def _indexes_path(self) -> Path:
        return self.directory / INDEXES_FILE

    def _saved_index_definitions(self) -> List[List[str]]:
        path = self._indexes_path()
        if not path.exists():
            return []
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt index definitions file: {exc}") from exc

    def _save_index_definitions(self, definitions: List[List[str]]) -> None:
        self._indexes_path().write_text(
            json.dumps(definitions, indent=2), encoding="utf-8")

    def _rebuild_persistent_indexes(self) -> None:
        for class_name, attribute in self._saved_index_definitions():
            if self.schema.has_class(class_name):
                self.objects.indexes.create_index(class_name, attribute)

    def _rebuild_persistent_indexes_after_restore(self) -> None:
        """Re-run index builds once restored objects are in the store."""
        for class_name, attribute in self._saved_index_definitions():
            if self.schema.has_class(class_name):
                if self.objects.indexes.has_index(class_name, attribute):
                    self.objects.indexes.rebuild(class_name, attribute)
                else:
                    self.objects.indexes.create_index(class_name, attribute)

    def create_index(self, class_name: str, attribute: str) -> None:
        """Create an attribute index that persists across opens.

        The index *definition* is durable; entries are rebuilt from the
        cluster at open (the same strategy as the object table itself).
        """
        self.objects.indexes.create_index(class_name, attribute)
        definitions = self._saved_index_definitions()
        if [class_name, attribute] not in definitions:
            definitions.append([class_name, attribute])
            self._save_index_definitions(definitions)

    def drop_index(self, class_name: str, attribute: str) -> None:
        self.objects.indexes.drop_index(class_name, attribute)
        definitions = [
            pair for pair in self._saved_index_definitions()
            if pair != [class_name, attribute]
        ]
        self._save_index_definitions(definitions)

    def vacuum(self) -> int:
        """Rewrite the page file densely; returns pages reclaimed.

        OID numbers are stable under vacuum, so attribute indexes and any
        OIDs held by open browsers stay valid.
        """
        return self.store.vacuum()

    def _load_behaviours(self) -> None:
        """Dynamically load the database's behaviour module, if present.

        Ode keeps method bodies, constraints, and triggers in compiled
        object files outside the catalog; our analogue is an optional
        ``behaviours.py`` next to the database.  It must define
        ``bind(database)``, which re-attaches callables to the schema via
        ``database.behaviours``.
        """
        import importlib.util

        path = self.directory / BEHAVIOURS_FILE
        if not path.exists():
            return
        module_name = f"_ode_behaviours_{abs(hash(str(self.directory)))}"
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            raise StorageError(f"cannot load behaviours from {path}")
        module = importlib.util.module_from_spec(spec)
        try:
            spec.loader.exec_module(module)
            module.bind(self)
        except Exception as exc:
            raise StorageError(
                f"behaviour module {path} failed to bind: {exc}"
            ) from exc

    # -- catalog ---------------------------------------------------------------

    def _save_catalog(self) -> None:
        path = self.directory / CATALOG_FILE
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.schema.to_dict(), fh, indent=2, sort_keys=True)
        tmp.replace(path)

    def define_struct(self, struct: StructType) -> None:
        self.schema.add_struct(struct)
        self._save_catalog()

    def define_class(self, cls: OdeClass) -> None:
        """Register a class and persist the catalog.

        This is the schema-change operation OdeView must survive without
        recompilation (paper §4.5): nothing in the front end is touched.
        """
        self.schema.add_class(cls)
        self._save_catalog()

    def define_from_source(self, source: str) -> None:
        """Define structs and classes from O++ source text.

        Parses the source, resolves it against the current schema, persists
        the catalog — the textual path to the same place
        :meth:`define_class` reaches programmatically.
        """
        from repro.ode.opp.parser import parse_program
        from repro.ode.opp.typecheck import build_schema

        build_schema(parse_program(source), self.schema)
        self._save_catalog()

    def drop_class(self, name: str) -> None:
        if self.store.cluster_size(name):
            raise SchemaError(
                f"cannot drop class {name!r}: its cluster is not empty"
            )
        self.schema.drop_class(name)
        self._save_catalog()

    def evolve_class(self, cls: OdeClass) -> None:
        self.schema.replace_class(cls)
        self._save_catalog()

    # -- per-database paths --------------------------------------------------------

    @property
    def display_dir(self) -> Path:
        return self.directory / DISPLAY_DIR

    @property
    def icon(self) -> str:
        """ASCII icon for the database window (Figure 1)."""
        icon_path = self.directory / ICON_FILE
        if icon_path.exists():
            return icon_path.read_text(encoding="utf-8").strip() or DEFAULT_ICON
        return DEFAULT_ICON

    def set_icon(self, icon: str) -> None:
        (self.directory / ICON_FILE).write_text(icon, encoding="utf-8")

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        self.store.close()
        self._release_lock()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Database({self.name!r} at {self.directory})"


def discover_databases(root: Union[str, Path]) -> List[Path]:
    """Find Ode databases under *root* — what the initial 'database' window
    lists (Figure 1).  A database is any directory holding a catalog file."""
    root = Path(root)
    if not root.exists():
        return []
    found = [
        path for path in sorted(root.iterdir())
        if path.is_dir() and (path / CATALOG_FILE).exists()
    ]
    return found
