"""An interactive terminal front end for OdeView.

Run ``python -m repro <root-directory>`` to browse the Ode databases under
a directory from a command prompt.  Every command maps onto the same
public API the windowed session driver uses, so the CLI is a third
"version of OdeView" in the paper's sense — a different interface over the
identical display protocol.

Commands::

  help                       this text
  databases                  list databases (the Figure 1 window)
  open <db>                  open a database (schema window appears)
  close <db>                 close a database
  schema <db>                redraw the schema window
  zoom <db> in|out           zoom the schema window
  info <db> <class>          class information window (Figures 3/5)
  def <db> <class>           class definition window (Figure 4)
  objects <db> <class>       open an object-set window; becomes current
  select <db> <class> <pred> open a filtered object set (condition box)
  next | prev | reset        sequence the current object set
  show <format>              toggle a display format on the current set
  follow <attr>              follow a reference; child becomes current
  back                       make the parent browser current again
  use <n>                    switch current browser (see 'browsers')
  browsers                   list open object browsers
  project <a,b,...>          project the current browser onto attributes
  unproject                  clear the projection
  scroll <window> <delta>    scroll a scrollable window
  raise <window>             bring a top-level window to the front
  stats <db>                 open/refresh the database statistics window
  vacuum <db>                rewrite the page file densely
  connect <host> <port> <db> open a database served by an OdeServer
  render                     draw the screen
  quit                       leave

Besides the REPL, two network entry points::

  python -m repro serve <root> [host] [port]    host databases over TCP
      [--replica-of host:port]                  ... as a read replica
      [--replica-peers host:port,...]           failover candidates the
                                                applier may re-home to
      [--io-model async|threaded]               event-loop (default) or
                                                thread-per-connection core
      [--cdc-flush-ms N]                        batch CDC pushes per tick
  python -m repro connect <host> <port> <db>    browse a served database
  python -m repro connect <host> <port> <db> --follow [cluster,...]
                                                tail the change feed (CDC)
  python -m repro promote <host> <port>         promote a replica to
                                                primary at the next term
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import OdeError, OdeViewError
from repro.core.app import OdeView
from repro.core.objectbrowser import ObjectBrowser
from repro.core.selection import SelectionBuilder


class CommandError(OdeViewError):
    """Bad CLI input (unknown command, wrong arguments)."""


class OdeViewCli:
    """A line-command driver over one OdeView application."""

    def __init__(self, root: str, screen_width: int = 150,
                 privileged: bool = False):
        self.app = OdeView(root, screen_width=screen_width,
                           privileged=privileged)
        self.browsers: List[ObjectBrowser] = []
        self.current: Optional[ObjectBrowser] = None
        self._stats_windows: Dict[str, object] = {}
        self.done = False

    # -- dispatch --------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns the text to show the user."""
        words = shlex.split(line)
        if not words:
            return ""
        command, args = words[0], words[1:]
        handler = self._handlers().get(command)
        if handler is None:
            raise CommandError(
                f"unknown command {command!r}; try 'help'")
        return handler(args)

    def run(self, stdin=None, stdout=None) -> None:  # pragma: no cover - repl
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        stdout.write("OdeView. Type 'help' for commands.\n")
        stdout.write(self.execute("databases") + "\n")
        while not self.done:
            stdout.write("odeview> ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            try:
                result = self.execute(line)
            except OdeError as exc:
                result = f"error: {exc}"
            if result:
                stdout.write(result + "\n")
        self.app.shutdown()

    def _handlers(self) -> Dict[str, Callable[[List[str]], str]]:
        return {
            "help": self.cmd_help,
            "databases": self.cmd_databases,
            "open": self.cmd_open,
            "close": self.cmd_close,
            "schema": self.cmd_schema,
            "zoom": self.cmd_zoom,
            "info": self.cmd_info,
            "def": self.cmd_def,
            "objects": self.cmd_objects,
            "select": self.cmd_select,
            "next": self.cmd_next,
            "prev": self.cmd_prev,
            "reset": self.cmd_reset,
            "show": self.cmd_show,
            "follow": self.cmd_follow,
            "back": self.cmd_back,
            "use": self.cmd_use,
            "browsers": self.cmd_browsers,
            "project": self.cmd_project,
            "unproject": self.cmd_unproject,
            "scroll": self.cmd_scroll,
            "raise": self.cmd_raise,
            "stats": self.cmd_stats,
            "vacuum": self.cmd_vacuum,
            "connect": self.cmd_connect,
            "render": self.cmd_render,
            "quit": self.cmd_quit,
        }

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _need(args: List[str], count: int, usage: str) -> None:
        if len(args) < count:
            raise CommandError(f"usage: {usage}")

    def _current(self) -> ObjectBrowser:
        if self.current is None:
            raise CommandError("no current object set; use 'objects' first")
        return self.current

    def _track(self, browser: ObjectBrowser) -> ObjectBrowser:
        if browser not in self.browsers:
            self.browsers.append(browser)
        self.current = browser
        return browser

    @staticmethod
    def _status(browser: ObjectBrowser) -> str:
        current = browser.node.current
        if current is None:
            return f"{browser.path}: (before first)"
        return f"{browser.path}: {current}"

    # -- commands -------------------------------------------------------------------

    def cmd_help(self, _args: List[str]) -> str:
        return __doc__.split("Commands::", 1)[1].strip("\n")

    def cmd_databases(self, _args: List[str]) -> str:
        directories = self.app.database_directories()
        if not directories:
            return "(no Ode databases found)"
        lines = ["databases:"]
        for directory in directories:
            name = directory.name.removesuffix(".odb")
            state = "open" if name in self.app.sessions else "closed"
            lines.append(f"  {self.app._icon_text(directory)} {name} ({state})")
        return "\n".join(lines)

    def cmd_open(self, args: List[str]) -> str:
        self._need(args, 1, "open <db>")
        session = self.app.open_database(args[0])
        classes = ", ".join(session.database.schema.class_names())
        return f"opened {args[0]}; classes: {classes}"

    def cmd_close(self, args: List[str]) -> str:
        self._need(args, 1, "close <db>")
        session = self.app.session(args[0])
        self.browsers = [b for b in self.browsers
                         if b not in session.object_sets]
        if self.current in session.object_sets:
            self.current = self.browsers[-1] if self.browsers else None
        self.app.close_database(args[0])
        return f"closed {args[0]}"

    def cmd_schema(self, args: List[str]) -> str:
        self._need(args, 1, "schema <db>")
        self.app.session(args[0]).schema.rebuild()
        return self.app.render()

    def cmd_zoom(self, args: List[str]) -> str:
        self._need(args, 2, "zoom <db> in|out")
        schema = self.app.session(args[0]).schema
        if args[1] == "in":
            schema.zoom_in()
        elif args[1] == "out":
            schema.zoom_out()
        else:
            raise CommandError("usage: zoom <db> in|out")
        return self.app.render()

    def cmd_info(self, args: List[str]) -> str:
        self._need(args, 2, "info <db> <class>")
        self.app.session(args[0]).schema.open_class_info(args[1])
        return self.app.render()

    def cmd_def(self, args: List[str]) -> str:
        self._need(args, 2, "def <db> <class>")
        self.app.session(args[0]).schema.open_class_definition(args[1])
        return self.app.render()

    def cmd_objects(self, args: List[str]) -> str:
        self._need(args, 2, "objects <db> <class>")
        browser = self.app.session(args[0]).open_object_set(args[1])
        self._track(browser)
        return (f"object set over {args[1]} "
                f"({browser.node.member_count()} objects); "
                f"formats: {', '.join(browser.formats)}")

    def cmd_select(self, args: List[str]) -> str:
        self._need(args, 3, "select <db> <class> <predicate>")
        db, class_name = args[0], args[1]
        condition = " ".join(args[2:])
        session = self.app.session(db)
        builder = SelectionBuilder(session.database, class_name,
                                   session.registry,
                                   privileged=self.app.ctx.privileged)
        builder.set_condition(condition)
        browser = session.open_object_set(class_name,
                                          predicate=builder.build())
        self._track(browser)
        return (f"selected {browser.node.member_count()} of "
                f"{session.database.objects.count(class_name)} "
                f"{class_name} objects")

    def cmd_next(self, _args: List[str]) -> str:
        browser = self._current()
        browser.next()
        return self._status(browser)

    def cmd_prev(self, _args: List[str]) -> str:
        browser = self._current()
        browser.previous()
        return self._status(browser)

    def cmd_reset(self, _args: List[str]) -> str:
        browser = self._current()
        browser.reset()
        return self._status(browser)

    def cmd_show(self, args: List[str]) -> str:
        self._need(args, 1, "show <format>")
        browser = self._current()
        browser.toggle_format(args[0])
        state = "open" if args[0] in browser.open_formats else "closed"
        return f"{args[0]} display {state}\n" + self.app.render()

    def cmd_follow(self, args: List[str]) -> str:
        self._need(args, 1, "follow <attr>")
        child = self._current().open_reference(args[0])
        self._track(child)
        return self._status(child)

    def cmd_back(self, _args: List[str]) -> str:
        browser = self._current()
        parent_path = browser.node.parent.path if browser.node.parent else None
        if parent_path is None:
            raise CommandError("already at a root object set")
        for candidate in self.browsers:
            if candidate.path == parent_path:
                self.current = candidate
                return self._status(candidate)
        raise CommandError("parent browser is gone")

    def cmd_use(self, args: List[str]) -> str:
        self._need(args, 1, "use <n>")
        try:
            index = int(args[0])
            browser = self.browsers[index]
        except (ValueError, IndexError):
            raise CommandError("usage: use <n>  (see 'browsers')") from None
        self.current = browser
        return self._status(browser)

    def cmd_browsers(self, _args: List[str]) -> str:
        if not self.browsers:
            return "(no open object browsers)"
        lines = []
        for index, browser in enumerate(self.browsers):
            marker = "*" if browser is self.current else " "
            lines.append(f"{marker}[{index}] {self._status(browser)}")
        return "\n".join(lines)

    def cmd_project(self, args: List[str]) -> str:
        self._need(args, 1, "project <a,b,...>")
        attributes = [part.strip() for part in " ".join(args).split(",")
                      if part.strip()]
        browser = self._current()
        browser.project(attributes)
        return f"projected onto {attributes}\n" + self.app.render()

    def cmd_unproject(self, _args: List[str]) -> str:
        browser = self._current()
        browser.clear_projection()
        return "projection cleared"

    def cmd_scroll(self, args: List[str]) -> str:
        self._need(args, 2, "scroll <window> <delta>")
        try:
            delta = int(args[1])
        except ValueError:
            raise CommandError("usage: scroll <window> <delta>") from None
        offset = self.app.screen.scroll(args[0], delta)
        return f"{args[0]} scrolled to line {offset}\n" + self.app.render()

    def cmd_raise(self, args: List[str]) -> str:
        self._need(args, 1, "raise <window>")
        self.app.screen.raise_window(args[0])
        return self.app.render()

    def cmd_stats(self, args: List[str]) -> str:
        self._need(args, 1, "stats <db>")
        from repro.core.statistics import StatisticsWindow

        session = self.app.session(args[0])
        window = self._stats_windows.get(args[0])
        if window is None:
            window = StatisticsWindow(session)
            self._stats_windows[args[0]] = window
        else:
            window.refresh()
        return self.app.render()

    def cmd_vacuum(self, args: List[str]) -> str:
        self._need(args, 1, "vacuum <db>")
        session = self.app.session(args[0])
        reclaimed = session.database.vacuum()
        if getattr(session.database, "remote", False):
            fragmentation = session.database.server_stats()["fragmentation"]
        else:
            fragmentation = session.database.store.fragmentation()
        return (f"vacuumed {args[0]}: {reclaimed} page(s) reclaimed, "
                f"fragmentation now {fragmentation:.0%}")

    def cmd_connect(self, args: List[str]) -> str:
        self._need(args, 3, "connect <host> <port> <db>")
        host, port, name = args[0], args[1], args[2]
        try:
            port_number = int(port)
        except ValueError:
            raise CommandError(f"port must be a number, not {port!r}") from None
        session = self.app.connect_database(host, port_number, name)
        classes = ", ".join(session.database.schema.class_names())
        return (f"connected to {name} at {host}:{port_number}; "
                f"classes: {classes}")

    def cmd_render(self, _args: List[str]) -> str:
        return self.app.render()

    def cmd_quit(self, _args: List[str]) -> str:
        self.done = True
        return "bye"


def _main_serve(argv: List[str]) -> int:  # pragma: no cover - entry
    """``python -m repro serve <root> [host] [port] [--replica-of host:port]
    [--replica-peers host:port,...] [--io-model async|threaded]
    [--cdc-flush-ms N]``."""
    from repro.net.server import OdeServer

    replica_of = None
    if "--replica-of" in argv:
        index = argv.index("--replica-of")
        try:
            upstream = argv[index + 1]
            upstream_host, upstream_port = upstream.rsplit(":", 1)
            replica_of = (upstream_host, int(upstream_port))
        except (IndexError, ValueError):
            print("--replica-of needs host:port", file=sys.stderr)
            return 2
        argv = argv[:index] + argv[index + 2:]
    replica_peers = None
    if "--replica-peers" in argv:
        index = argv.index("--replica-peers")
        try:
            replica_peers = []
            for peer in argv[index + 1].split(","):
                peer_host, peer_port = peer.rsplit(":", 1)
                replica_peers.append((peer_host, int(peer_port)))
        except (IndexError, ValueError):
            print("--replica-peers needs host:port[,host:port...]",
                  file=sys.stderr)
            return 2
        argv = argv[:index] + argv[index + 2:]
    io_model = None
    if "--io-model" in argv:
        index = argv.index("--io-model")
        try:
            io_model = argv[index + 1]
        except IndexError:
            print("--io-model needs 'async' or 'threaded'", file=sys.stderr)
            return 2
        argv = argv[:index] + argv[index + 2:]
    cdc_flush_seconds = None
    if "--cdc-flush-ms" in argv:
        index = argv.index("--cdc-flush-ms")
        try:
            cdc_flush_seconds = float(argv[index + 1]) / 1000.0
        except (IndexError, ValueError):
            print("--cdc-flush-ms needs a number", file=sys.stderr)
            return 2
        argv = argv[:index] + argv[index + 2:]
    if not argv:
        print("usage: python -m repro serve <root> [host] [port] "
              "[--replica-of host:port] [--replica-peers host:port,...] "
              "[--io-model async|threaded] [--cdc-flush-ms N]",
              file=sys.stderr)
        return 2
    root = argv[0]
    host = argv[1] if len(argv) > 1 else "127.0.0.1"
    port = int(argv[2]) if len(argv) > 2 else 6455  # 'Ode' on a phone pad
    server = OdeServer(root, host=host, port=port, replica_of=replica_of,
                       replica_peers=replica_peers, io_model=io_model,
                       cdc_flush_seconds=cdc_flush_seconds)
    server.start()
    print(f"serving {', '.join(server.database_names())} "
          f"on {host}:{server.port} as {server.role} (ctrl-c to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _follow_changes(host: str, port: int, name: str,
                    clusters: Optional[List[str]],
                    max_events: Optional[int] = None,
                    out=None) -> int:
    """Tail a database's CDC feed to stdout (``connect --follow``).

    One line per change event: epoch, then cluster=oid,oid pairs (or
    ``resync`` / ``lost`` markers).  Stops after *max_events* lines if
    given, else on ctrl-c or when the connection is lost.
    """
    from repro.net.remote import RemoteDatabase

    out = out if out is not None else sys.stdout
    database = RemoteDatabase.connect(host, port, name)
    try:
        subscription = database.subscribe(clusters=clusters)
        which = ", ".join(clusters) if clusters else "all clusters"
        print(f"following {name} at {host}:{port} ({which}) "
              f"from epoch {subscription.epoch}", file=out, flush=True)
        printed = 0
        while max_events is None or printed < max_events:
            event = subscription.get(timeout=1.0)
            if event is None:
                if not subscription.alive:
                    print("connection lost", file=out, flush=True)
                    return 1
                continue
            if event.lost:
                print("connection lost", file=out, flush=True)
                return 1
            if event.resync:
                print(f"epoch {event.epoch} resync "
                      f"(delta detail lost; refresh everything)",
                      file=out, flush=True)
            else:
                detail = " ".join(
                    f"{cluster}={','.join(oids)}"
                    for cluster, oids in sorted(event.changes.items()))
                print(f"epoch {event.epoch} {detail}", file=out, flush=True)
            printed += 1
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    finally:
        database.close()


def _main_promote(argv: List[str], out=None) -> int:
    """``python -m repro promote <host> <port>`` — controlled failover.

    Tells a running replica server to stop following its upstream,
    durably mint the next fenced primary term in every database's WAL,
    and start accepting writes.  Prints the new per-database terms; by
    the time they print, the fence is on disk.
    """
    from repro.errors import OdeError
    from repro.net import protocol as P
    from repro.net.client import OdeClient

    out = out if out is not None else sys.stdout
    if len(argv) != 2:
        print("usage: python -m repro promote <host> <port>",
              file=sys.stderr)
        return 2
    host = argv[0]
    try:
        port = int(argv[1])
    except ValueError:
        print(f"port must be a number, not {argv[1]!r}", file=sys.stderr)
        return 2
    client = OdeClient(host, port, retries=0)
    try:
        reply = client.call(P.OP_REPL_PROMOTE, {})
    except OdeError as exc:
        print(f"promotion failed: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    was = reply.get("role", "replica")
    for name, term in sorted((reply.get("terms") or {}).items()):
        print(f"{name}: promoted to primary at term {term} (was {was})",
              file=out, flush=True)
    return 0


def _main_connect(argv: List[str]) -> int:  # pragma: no cover - entry
    """``python -m repro connect <host> <port> <db> [--follow [cluster,...]]``."""
    import tempfile

    follow = None
    if "--follow" in argv:
        index = argv.index("--follow")
        rest = argv[index + 1:index + 2]
        if rest and not rest[0].startswith("-"):
            follow = [name for name in rest[0].split(",") if name]
            argv = argv[:index] + argv[index + 2:]
        else:
            follow = []  # no cluster filter: follow everything
            argv = argv[:index] + argv[index + 1:]
    if len(argv) != 3:
        print("usage: python -m repro connect <host> <port> <db> "
              "[--follow [cluster,...]]", file=sys.stderr)
        return 2
    if follow is not None:
        try:
            port_number = int(argv[1])
        except ValueError:
            print(f"port must be a number, not {argv[1]!r}", file=sys.stderr)
            return 2
        return _follow_changes(argv[0], port_number, argv[2],
                               clusters=follow or None)
    # The database window needs a root; a remote session browses none of it.
    cli = OdeViewCli(tempfile.mkdtemp(prefix="odeview-remote-"))
    print(cli.execute(f"connect {argv[0]} {argv[1]} {argv[2]}"))
    cli.run()
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - entry
    argv = argv if argv is not None else sys.argv[1:]
    if argv and argv[0] == "serve":
        return _main_serve(argv[1:])
    if argv and argv[0] == "connect":
        return _main_connect(argv[1:])
    if argv and argv[0] == "promote":
        return _main_promote(argv[1:])
    if len(argv) != 1:
        print("usage: python -m repro <root-directory> | "
              "serve <root> [host] [port] | connect <host> <port> <db> | "
              "promote <host> <port>",
              file=sys.stderr)
        return 2
    cli = OdeViewCli(argv[0])
    cli.run()
    return 0
