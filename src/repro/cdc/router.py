"""ChangeRouter: fan committed deltas out to push subscribers.

One router per hosted database.  It subscribes to the store's commit
stream (:meth:`~repro.ode.store.ObjectStore.subscribe_commits` — which
fires for local group commits *and* replicated applies, so a replica
routes CDC from its own applied feed), summarizes each unit once, and
offers the summary to every registered subscriber.

The contract that keeps "millions of browsers" from touching the write
path:

* :meth:`_on_commit` runs on the committer's thread under the store
  lock; it does O(subscribers) *enqueues* and nothing else — no socket
  I/O, no waiting.  A subscriber's pump thread does the actual frame
  writes.
* Every subscriber's queue is **bounded**.  When a slow consumer falls
  ``capacity`` summaries behind, the queue collapses into one pending
  *resync* marker ("delta detail lost; wholesale-invalidate from epoch
  E") instead of blocking the committer or growing without bound — and
  later commits keep folding into that marker until the consumer
  drains it.  Degradation is graceful and explicit, never a silent
  drop: the consumer always learns *that* it missed changes.
* A dead subscriber (send failed, connection closed) is unregistered;
  its queue is garbage, not backpressure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import get_registry
from repro.cdc.summary import ChangeSummary, merge_summaries, summarize_unit

#: Summaries a subscriber may fall behind before its queue coalesces
#: into a single resync event.
DEFAULT_QUEUE_CAPACITY = 128

#: Server-side ceiling on what a subscriber may ask for.
MAX_QUEUE_CAPACITY = 4096


class CdcSubscriber:
    """One connection's bounded, coalescing delta queue.

    ``offer`` is the commit-path side: filter, enqueue (or coalesce),
    notify — it never blocks and never raises.  ``take`` is the pump
    side: wait for the next event to ship.  The two meet only at this
    object's condition variable.
    """

    def __init__(self, sub_id: int, db_name: str,
                 clusters: Optional[Sequence[str]] = None,
                 capacity: int = DEFAULT_QUEUE_CAPACITY):
        self.sub_id = sub_id
        self.db_name = db_name
        self.clusters = frozenset(clusters) if clusters is not None else None
        self.capacity = max(1, min(int(capacity), MAX_QUEUE_CAPACITY))
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._resync_from: Optional[int] = None
        self._closed = False
        self._notify_cb: Optional[Callable[[], None]] = None
        self.delivered = 0
        self.coalesced = 0

    def set_notifier(self, notify: Optional[Callable[[], None]]) -> None:
        """Register a wakeup callback fired after every enqueue and on
        close.

        This is how the event-loop server parks without a thread: the
        callback (``loop.call_soon_threadsafe`` setting an event) runs
        on the committer's thread, so it must be cheap and must not
        raise — exceptions are swallowed, a lost wakeup is not.
        """
        with self._cond:
            self._notify_cb = notify

    def _fire_notifier(self) -> None:
        cb = self._notify_cb
        if cb is not None:
            try:
                cb()
            except Exception:
                get_registry().counter("cdc.notify_errors").inc()

    # -- commit path -------------------------------------------------------------

    def offer(self, summary: ChangeSummary) -> bool:
        """Enqueue one summary; returns False if filtered out or closed.

        Overflow policy: the queue never exceeds ``capacity``.  The
        summary that would overflow it replaces the whole backlog with
        one resync marker at its epoch; while the marker is pending,
        further summaries just advance the marker's epoch (the consumer
        is told the *newest* state it must catch up to).
        """
        narrowed = summary.restrict(self.clusters)
        if not narrowed.resync and not narrowed.changes:
            return False
        with self._cond:
            if self._closed:
                return False
            if self._resync_from is not None or narrowed.resync:
                self._resync_from = max(self._resync_from or 0,
                                        narrowed.epoch)
                self._queue.clear()
            elif len(self._queue) >= self.capacity:
                self._queue.clear()
                self._resync_from = narrowed.epoch
                self.coalesced += 1
            else:
                self._queue.append(narrowed)
            self._cond.notify_all()
        self._fire_notifier()
        return True

    # -- pump path ---------------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[ChangeSummary]:
        """Next summary to ship, or None on timeout/close.

        A pending resync marker outranks everything: it is delivered as
        a ``resync`` summary and cleared, so the consumer's first sight
        of the backlog gap is the instruction to heal it.
        """
        with self._cond:
            while True:
                if self._resync_from is not None:
                    epoch = self._resync_from
                    self._resync_from = None
                    self.delivered += 1
                    return ChangeSummary(epoch=epoch, resync=True)
                if self._queue:
                    self.delivered += 1
                    return self._queue.popleft()
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def drain(self) -> List[ChangeSummary]:
        """Everything pending right now, without blocking.

        A pending resync marker outranks the queue, exactly as in
        :meth:`take`; the queue behind it was already cleared when the
        marker formed, so the marker is the whole batch.  This is the
        batching pump's bulk form of ``take``.
        """
        with self._cond:
            if self._resync_from is not None:
                epoch = self._resync_from
                self._resync_from = None
                self.delivered += 1
                return [ChangeSummary(epoch=epoch, resync=True)]
            batch = list(self._queue)
            self._queue.clear()
            self.delivered += len(batch)
            return batch

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._queue.clear()
            self._resync_from = None
            self._cond.notify_all()
        self._fire_notifier()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def backlog(self) -> int:
        with self._cond:
            return len(self._queue) + (1 if self._resync_from is not None
                                       else 0)


class ChangeRouter:
    """Per-database fan-out from the commit stream to subscribers."""

    def __init__(self, db_name: str, store):
        self.db_name = db_name
        self._store = store
        self._lock = threading.Lock()
        self._subscribers: Dict[int, CdcSubscriber] = {}
        registry = get_registry()
        self._m_events = registry.counter("cdc.events")
        self._m_enqueued = registry.counter("cdc.enqueued")
        self._m_coalesced = registry.counter("cdc.coalesced")
        self._g_subscribers = registry.gauge("cdc.subscribers")
        # One bound-method object, kept: the store unsubscribes by
        # identity, and each ``self._on_commit`` access mints a fresh one.
        self._listener = self._on_commit
        store.subscribe_commits(self._listener)

    # -- the commit hook ---------------------------------------------------------

    def _on_commit(self, epoch: int, frames) -> None:
        """Called on the committer's thread, under the store lock.

        Must stay cheap and exception-free: one summarize, then an
        enqueue per subscriber.  Socket writes happen elsewhere.
        """
        with self._lock:
            subscribers = list(self._subscribers.values())
        if not subscribers:
            return
        self._m_events.inc()
        summary = summarize_unit(epoch, frames)
        for subscriber in subscribers:
            before = subscriber.coalesced
            if subscriber.offer(summary):
                self._m_enqueued.inc()
            if subscriber.coalesced > before:
                self._m_coalesced.inc()

    # -- registration ------------------------------------------------------------

    def register(self, subscriber: CdcSubscriber) -> None:
        # Keyed by object identity, not sub_id: sub ids are per-session
        # counters and sessions share this per-database router.
        with self._lock:
            self._subscribers[id(subscriber)] = subscriber
        self._g_subscribers.set(self.subscriber_count)

    def unregister(self, subscriber: CdcSubscriber) -> None:
        with self._lock:
            removed = self._subscribers.pop(id(subscriber), None)
        if removed is not None:
            removed.close()
        self._g_subscribers.set(self.subscriber_count)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def close(self) -> None:
        """Detach from the store and drop every subscriber."""
        unsubscribe = getattr(self._store, "unsubscribe_commits", None)
        if callable(unsubscribe):
            unsubscribe(self._listener)
        with self._lock:
            subscribers = list(self._subscribers.values())
            self._subscribers.clear()
        for subscriber in subscribers:
            subscriber.close()
        self._g_subscribers.set(0)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            subscribers = list(self._subscribers.values())
        return {
            "subscribers": len(subscribers),
            "delivered": sum(s.delivered for s in subscribers),
            "coalesced": sum(s.coalesced for s in subscribers),
            "backlog": sum(s.backlog for s in subscribers),
            "events": self._m_events.value,
        }


class SubscriberPump(threading.Thread):
    """Drains one subscriber's queue onto its connection.

    ``send`` is whatever writes one event payload to the wire (the
    server's per-connection push channel).  A send failure means the
    consumer is gone: the pump reports it via ``on_failure`` (which
    unregisters the subscriber) and exits — the commit path never even
    notices.

    The pump parks on the subscriber's condition variable (``close``
    wakes it) — no recv-poll-style idle timeout, an idle pump costs
    zero wakeups.  With ``flush_seconds`` set, the pump batches: after
    the first event of a burst it sleeps one flush tick, then drains
    the whole backlog and ships it merged as a single frame
    (:func:`~repro.cdc.summary.merge_summaries` — no epoch is skipped,
    the union invalidates everything the burst touched at the newest
    epoch).  ``flush_seconds=None`` (the default) preserves exact
    one-frame-per-commit delivery.
    """

    def __init__(self, subscriber: CdcSubscriber,
                 send: Callable[[ChangeSummary], None],
                 on_failure: Optional[Callable[[], None]] = None,
                 flush_seconds: Optional[float] = None):
        super().__init__(
            name=f"cdc-pump-{subscriber.db_name}-{subscriber.sub_id}",
            daemon=True)
        self.subscriber = subscriber
        self._send = send
        self._on_failure = on_failure
        self.flush_seconds = flush_seconds
        registry = get_registry()
        self._m_send_errors = registry.counter("cdc.send_errors")
        self._m_batch_events = registry.counter("cdc.batch.events_in")
        self._m_batch_frames = registry.counter("cdc.batch.frames_out")
        self._m_batch_merged = registry.counter("cdc.batch.merged")

    def run(self) -> None:
        while True:
            summary = self.subscriber.take(timeout=None)
            if summary is None:
                if self.subscriber.closed:
                    return
                continue
            if self.flush_seconds is None:
                batch = [summary]
            else:
                if self.flush_seconds > 0.0:
                    time.sleep(self.flush_seconds)  # let the burst land
                batch = [summary, *self.subscriber.drain()]
            try:
                self._send(merge_summaries(batch))
            except Exception:
                self._m_send_errors.inc()
                self.subscriber.close()
                if self._on_failure is not None:
                    try:
                        self._on_failure()
                    except Exception:
                        get_registry().counter("net.teardown_error").inc()
                return
            self._m_batch_events.inc(len(batch))
            self._m_batch_frames.inc()
            if len(batch) > 1:
                self._m_batch_merged.inc(len(batch) - 1)
