"""repro.cdc: push-based change-data-capture.

The delivery layer between the commit stream and the browsers: the
server side (:class:`ChangeRouter`) summarizes every published commit
into a compact ``(epoch, cluster, oids)`` delta and fans it out over
the wire as unsolicited ``OP_CDC_EVENT`` frames; the client side
(:class:`Subscription`) hands those to window trees and the epoch-keyed
buffer cache, so thousands of front ends refresh reactively instead of
polling — and invalidate precisely instead of wholesale.

Both directions degrade gracefully under load: every queue is bounded
and collapses into a single "resync from epoch E" event on overflow, so
a slow browser never blocks a commit and never silently misses a
change.
"""

from repro.cdc.router import (
    DEFAULT_QUEUE_CAPACITY,
    CdcSubscriber,
    ChangeRouter,
    SubscriberPump,
)
from repro.cdc.subscription import ChangeEvent, Subscription
from repro.cdc.summary import (
    ChangeSummary,
    merge_summaries,
    summarize_unit,
    summary_from_wire,
    summary_to_wire,
)

__all__ = [
    "DEFAULT_QUEUE_CAPACITY",
    "CdcSubscriber",
    "ChangeEvent",
    "ChangeRouter",
    "ChangeSummary",
    "SubscriberPump",
    "Subscription",
    "merge_summaries",
    "summarize_unit",
    "summary_from_wire",
    "summary_to_wire",
]
