"""The client's end of a CDC subscription.

:class:`Subscription` is a bounded local queue of :class:`ChangeEvent`
plus an optional callback.  Events are delivered by whichever thread is
reading the connection when the push frame arrives — the client's push
pump when idle, or a caller waiting on its own reply when the frame
interleaves with pipelined traffic.  **Callbacks therefore run on a
network thread while the client's request lock is held: they must be
fast, must not raise, and must never call back into the client** (a
re-entrant request would deadlock).  Cache invalidation — pure local
bookkeeping — is exactly the kind of work that belongs there; anything
heavier should consume the queue from its own thread via :meth:`get`.

Like the server's queue, the local queue is bounded and coalescing: a
consumer that never drains it gets one synthetic resync event instead
of unbounded growth, so the degradation story is end-to-end.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Tuple

#: Events buffered locally before the queue coalesces into a resync.
LOCAL_QUEUE_CAPACITY = 256


@dataclass(frozen=True)
class ChangeEvent:
    """One server-push change notification, as the application sees it."""

    db: str
    epoch: int
    #: cluster -> OID strings changed at ``epoch`` (empty for resync/lost).
    changes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Delta detail was lost (overflow en route): invalidate wholesale,
    #: treating ``epoch`` as the new floor.
    resync: bool = False
    #: The connection (and with it the server-side subscription) died.
    #: Terminal: no further events will arrive; resubscribe to resume.
    lost: bool = False

    def oids(self) -> Tuple[str, ...]:
        return tuple(oid for oids in self.changes.values() for oid in oids)


class Subscription:
    """A live change feed for one database (optionally cluster-filtered)."""

    def __init__(self, client, sub_id: int, db: str,
                 clusters: Optional[Sequence[str]] = None,
                 epoch: int = 0,
                 on_event: Optional[Callable[[ChangeEvent], None]] = None,
                 capacity: int = LOCAL_QUEUE_CAPACITY):
        self._client = client
        self.sub_id = sub_id
        self.db = db
        self.clusters = tuple(clusters) if clusters is not None else None
        #: The server epoch at subscribe time: delta knowledge is
        #: contiguous from here, so it is the cache's starting floor.
        self.epoch = epoch
        self._on_event = on_event
        self._capacity = max(1, capacity)
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._pending_resync: Optional[int] = None
        self._closed = False
        self._lost = False
        self.received = 0
        self.coalesced = 0

    # -- delivery (network thread) ----------------------------------------------

    def deliver(self, event: ChangeEvent) -> None:
        """Called by the client's reader paths; must never block or raise."""
        with self._cond:
            if self._closed:
                return
            self.received += 1
            if event.lost:
                self._lost = True
                self._queue.append(event)
            elif self._pending_resync is not None or event.resync:
                self._pending_resync = max(self._pending_resync or 0,
                                           event.epoch)
                self._queue.clear()
            elif len(self._queue) >= self._capacity:
                self._queue.clear()
                self._pending_resync = event.epoch
                self.coalesced += 1
            else:
                self._queue.append(event)
            if event.epoch > self.epoch:
                self.epoch = event.epoch
            self._cond.notify_all()
        if self._on_event is not None:
            try:
                self._on_event(event)
            except Exception:
                from repro.obs import get_registry
                get_registry().counter("cdc.client.callback_errors").inc()

    def connection_lost(self) -> None:
        """The socket died: the server-side subscription is gone."""
        self.deliver(ChangeEvent(db=self.db, epoch=self.epoch, lost=True))

    # -- consumption (application thread) ----------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[ChangeEvent]:
        """Next event, blocking up to *timeout*; None when nothing arrived.

        A coalesced backlog surfaces as a single ``resync`` event.
        """
        with self._cond:
            while True:
                if self._pending_resync is not None:
                    epoch = self._pending_resync
                    self._pending_resync = None
                    return ChangeEvent(db=self.db, epoch=epoch, resync=True)
                if self._queue:
                    return self._queue.popleft()
                if self._closed or self._lost:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def poll(self) -> Optional[ChangeEvent]:
        return self.get(timeout=0)

    def pending(self) -> int:
        with self._cond:
            return len(self._queue) + (1 if self._pending_resync is not None
                                       else 0)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def alive(self) -> bool:
        with self._cond:
            return not self._closed and not self._lost

    @property
    def lost(self) -> bool:
        with self._cond:
            return self._lost

    def close(self) -> None:
        """Unsubscribe on the server (if still reachable) and stop."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._client._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
