"""Delta summaries: the compact unit CDC ships to browsers.

A committed transaction's WAL unit names every object it touched; a
front end refreshing a window tree does not need the payloads — only
*which* objects changed and at which epoch, grouped by cluster (the
class extent a window sequences over).  :func:`summarize_unit` boils a
unit down to that ``(epoch, {cluster: oids})`` shape, and the router
fans the summary out to subscribers instead of the unit itself, so a
thousand idle browsers cost a thousand small frames, not a thousand
copies of the commit.

A summary with ``resync=True`` carries no per-object detail: it is the
overflow escape hatch — "your delta stream broke at epoch ``epoch``;
invalidate wholesale and start over from there" (see
:class:`~repro.cdc.router.CdcSubscriber`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.ode.oid import Oid
from repro.ode.wal import OP_DELETE, OP_PUT, WalRecord


@dataclass(frozen=True)
class ChangeSummary:
    """One commit's (or one coalesced resync's) change notification."""

    epoch: int
    #: cluster name -> OID strings touched in that cluster (puts and
    #: deletes alike; the consumer purges either way).
    changes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: True when delta detail was lost (queue overflow): the consumer
    #: must invalidate wholesale and treat ``epoch`` as its new floor.
    resync: bool = False

    @property
    def oid_count(self) -> int:
        return sum(len(oids) for oids in self.changes.values())

    def clusters(self) -> Tuple[str, ...]:
        return tuple(self.changes)

    def restrict(self, clusters) -> "ChangeSummary":
        """The summary seen through a subscriber's cluster filter.

        ``clusters=None`` means "everything".  A resync summary passes
        any filter untouched — lost detail is lost for every cluster.
        """
        if clusters is None or self.resync:
            return self
        wanted = {
            name: oids for name, oids in self.changes.items()
            if name in clusters
        }
        return ChangeSummary(epoch=self.epoch, changes=wanted)


def summarize_unit(epoch: int, frames: List[WalRecord]) -> ChangeSummary:
    """Extract the ``(epoch, cluster, oids)`` delta of one committed unit.

    BEGIN/COMMIT framing records carry no object; puts and deletes both
    count as "changed" — the consumer's cached copy is stale either way.
    Order within a cluster is preserved (first touch wins) so summaries
    are deterministic for tests and the wire.
    """
    changes: Dict[str, List[str]] = {}
    seen = set()
    for record in frames:
        if record.op not in (OP_PUT, OP_DELETE) or not record.oid:
            continue
        if record.oid in seen:
            continue
        seen.add(record.oid)
        cluster = Oid.parse(record.oid).cluster
        changes.setdefault(cluster, []).append(record.oid)
    return ChangeSummary(
        epoch=epoch,
        changes={name: tuple(oids) for name, oids in changes.items()},
    )


def merge_summaries(summaries: List[ChangeSummary]) -> ChangeSummary:
    """Coalesce a burst of summaries into one event (server-side batching).

    Under a hot write rate a subscriber's queue holds several commits by
    the time its pump gets to the socket; shipping their union as one
    frame is sound because a summary is an *invalidation*, not a delta:
    the consumer purges the named objects and refetches at its next
    read, so "changed at epoch 3" subsumes "changed at epochs 1 and 2".
    The merged epoch is therefore the newest.  Any resync in the batch
    poisons the merge — detail from the other summaries is worthless
    once the consumer must invalidate wholesale — and the order of first
    touch is preserved within each cluster, like :func:`summarize_unit`.
    """
    if not summaries:
        raise ValueError("nothing to merge")
    if len(summaries) == 1:
        return summaries[0]
    epoch = max(summary.epoch for summary in summaries)
    if any(summary.resync for summary in summaries):
        return ChangeSummary(epoch=epoch, resync=True)
    changes: Dict[str, List[str]] = {}
    seen: Dict[str, set] = {}
    for summary in summaries:
        for cluster, oids in summary.changes.items():
            bucket = changes.setdefault(cluster, [])
            marks = seen.setdefault(cluster, set())
            for oid in oids:
                if oid not in marks:
                    marks.add(oid)
                    bucket.append(oid)
    return ChangeSummary(
        epoch=epoch,
        changes={name: tuple(oids) for name, oids in changes.items()},
    )


def summary_to_wire(summary: ChangeSummary) -> Dict[str, Any]:
    """The codec-dict form an ``OP_CDC_EVENT`` frame carries."""
    return {
        "epoch": summary.epoch,
        "changes": {name: list(oids)
                    for name, oids in summary.changes.items()},
        "resync": summary.resync,
    }


def summary_from_wire(value: Mapping[str, Any]) -> ChangeSummary:
    """Inverse of :func:`summary_to_wire`."""
    return ChangeSummary(
        epoch=int(value.get("epoch", 0)),
        changes={
            str(name): tuple(str(oid) for oid in oids)
            for name, oids in (value.get("changes") or {}).items()
        },
        resync=bool(value.get("resync", False)),
    )
