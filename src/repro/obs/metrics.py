"""Zero-dependency process metrics: counters and latency histograms.

The storage hot path (buffer pool, object store, dynamic linker,
synchronized browsing) reports into a process-wide
:class:`MetricsRegistry` so the statistics window and the benchmark
harness can read one coherent picture of what the system is doing,
without importing any of the instrumented modules.

Design constraints, in order:

* **zero third-party dependencies** — plain stdlib, importable anywhere;
* **cheap on the hot path** — a counter increment is one dict-free
  attribute add; a histogram observation is a bisect into fixed
  log-spaced buckets;
* **monotonic time** — latencies come from :func:`time.perf_counter`
  (via :meth:`Histogram.time`), never wall-clock;
* **resettable snapshots** — benchmarks isolate a measurement with
  ``registry.reset()`` / ``metric.reset()``.

Metric names are dotted paths (``bufferpool.hits``); the registry is
get-or-create, so instrumented modules never coordinate beyond agreeing
on a name.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_right
from contextlib import contextmanager
from threading import Lock
from typing import Dict, Iterator, List, Optional, Union


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def snapshot(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value that can move both ways (e.g. live versions)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = 0

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def snapshot(self) -> Union[int, float]:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


def _default_bounds() -> List[float]:
    """Log-spaced latency buckets from 1 µs to ~34 s (doubling)."""
    return [1e-6 * 2 ** i for i in range(26)]


class Histogram:
    """Fixed-bucket histogram of observations (latencies, in seconds).

    Keeps count/sum/min/max exactly and a log-spaced bucket vector for
    approximate quantiles — bounded memory regardless of observation
    volume, which is what lets it sit on the page-fetch path.
    """

    __slots__ = ("name", "_bounds", "_buckets", "count", "total",
                 "min", "max")

    def __init__(self, name: str = "", bounds: Optional[List[float]] = None):
        self.name = name
        self._bounds = list(bounds) if bounds is not None else _default_bounds()
        self._buckets = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self._buckets[bisect_right(self._bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the monotonic duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0..100) from the bucket vector.

        Returns the upper bound of the bucket holding the target rank
        (clamped to the observed max), 0.0 with no observations.
        """
        if not self.count:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in 0..100, got {p}")
        target = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets):
            cumulative += bucket_count
            if cumulative >= target:
                upper = (self._bounds[index] if index < len(self._bounds)
                         else self.max)
                if self.max is not None:
                    upper = min(upper, self.max)
                return upper
        return self.max or 0.0

    def reset(self) -> None:
        self._buckets = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, get-or-create, with text/JSON export.

    Creation is locked (registries are shared process-wide; two threads
    may race to create the same name); increments and observations on
    the returned metric objects are deliberately lock-free — CPython's
    atomic ops are good enough for statistics, and the hot path stays
    hot.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = Lock()

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, Counter(name))
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, Gauge(name))
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def histogram(self, name: str,
                  bounds: Optional[List[float]] = None) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(
                    name, Histogram(name, bounds))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Union[int, Dict[str, float]]]:
        """Point-in-time value of every metric, keyed by name."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}

    def snapshot_prefix(
            self, prefix: str,
    ) -> Dict[str, Union[int, float, Dict[str, float]]]:
        """Snapshot of every metric under a dotted prefix (e.g.
        ``"wal.group."``) — how subsystem dashboards pick up their own
        family of metrics without naming each one."""
        return {name: self._metrics[name].snapshot()
                for name in self.names() if name.startswith(prefix)}

    def reset(self) -> None:
        """Zero every metric (names and objects stay registered)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- export ----------------------------------------------------------------

    def render_text(self) -> str:
        """One metric per line, counters bare, histograms summarized."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name} {metric.value}")
            else:
                s = metric.snapshot()
                lines.append(
                    f"{name} count={s['count']} mean={s['mean']:.6f} "
                    f"p50={s['p50']:.6f} p95={s['p95']:.6f} "
                    f"max={s['max']:.6f}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


#: The process-wide registry every instrumented subsystem reports into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
