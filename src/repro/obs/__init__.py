"""Observability: process-wide counters and latency histograms.

See :mod:`repro.obs.metrics` for the design notes.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]
