"""Schema browsing: the schema window, class information window, and class
definition window.

Paper §3.1: clicking a database icon opens a "class relationship" window
showing the inheritance DAG, drawn by a placement algorithm that minimises
crossovers, with zoom in/out.  Clicking a class node opens a "class
information" window with three subwindows — superclasses, subclasses, and
meta data (e.g. "there are 55 objects in the employee cluster") — plus a
button that shows the class definition (Figure 4).  Clicking a superclass
or subclass opens *its* information window, and "browsing through the class
information and relationship windows can be freely mixed."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.objectbrowser import UiContext
from repro.dagplace import Placement, place
from repro.ode.database import Database
from repro.windowing.wintypes import (
    WindowSpec,
    at,
    below,
    button,
    panel,
    right_of,
    text_window,
)

#: Vertical cells per DAG layer: a 3-row button box plus 2 connector rows.
_ROW_HEIGHT = 5
_BUTTON_ROWS = 3


def render_edge_art(placement: Placement, column_of: Dict[str, int],
                    label_of: Dict[str, str], width: int,
                    height: int) -> str:
    """ASCII edge art for the schema DAG (node buttons overlay this)."""
    grid = [[" "] * max(width, 1) for _ in range(max(height, 1))]

    def plot(row: int, col: int, char: str) -> None:
        if 0 <= row < height and 0 <= col < width:
            if grid[row][col] == " " or char == "+":
                grid[row][col] = char

    def draw_segment(col_a: int, row_a: int, col_b: int, row_b: int) -> None:
        steps = max(row_b - row_a, 1)
        previous_col = col_a
        # stop one row short of the destination so the target button's
        # border row stays clean
        for step in range(1, steps):
            row = row_a + step
            col = col_a + (col_b - col_a) * step // steps
            if col == previous_col:
                plot(row, col, "|")
            elif col > previous_col:
                for c in range(previous_col + 1, col + 1):
                    plot(row, c, "\\" if c == col else "_")
            else:
                for c in range(col, previous_col):
                    plot(row, c, "/" if c == col else "_")
            previous_col = col

    for src, dst in placement.edges:
        src_row = placement.layer_of[src] * _ROW_HEIGHT + _BUTTON_ROWS - 1
        dst_row = placement.layer_of[dst] * _ROW_HEIGHT
        points: List[Tuple[int, int]] = [(column_of[src], src_row)]
        for bend_x, bend_layer in placement.bend_points.get((src, dst), ()):
            points.append((int(round(bend_x)), bend_layer * _ROW_HEIGHT + 1))
        points.append((column_of[dst], dst_row))
        for (col_a, row_a), (col_b, row_b) in zip(points, points[1:]):
            draw_segment(col_a, row_a, col_b, row_b)
    return "\n".join("".join(row).rstrip() for row in grid)


class SchemaBrowser:
    """Schema-level windows for one open database."""

    def __init__(self, ctx: UiContext, database: Database,
                 interactor_name: str, on_objects=None):
        self.ctx = ctx
        self.database = database
        self._interactor = interactor_name
        self._on_objects = on_objects  # callback: the 'objects' button (§3.2)
        self.zoom = 0                      # 0 normal, >0 zoomed in, <0 out
        self.info_open: List[str] = []     # class info windows, open order
        self.def_open: List[str] = []
        self._build_schema_window()

    # -- names -------------------------------------------------------------------

    @property
    def db(self) -> str:
        return self.database.name

    def schema_window_name(self) -> str:
        return f"{self.db}.schema"

    def node_button_name(self, class_name: str) -> str:
        return f"{self.db}.schema.node.{class_name}"

    def info_window_name(self, class_name: str) -> str:
        return f"{self.db}.info.{class_name}"

    def def_window_name(self, class_name: str) -> str:
        return f"{self.db}.def.{class_name}"

    # -- the schema (class relationship) window ---------------------------------------

    def _node_label(self, class_name: str) -> str:
        if self.zoom < 0:
            return class_name[:3]
        return class_name

    def _build_schema_window(self) -> None:
        graph = self.ctx.processes.call(self._interactor, "schema_graph")
        nodes: List[str] = graph["nodes"]
        edges: List[Tuple[str, str]] = [tuple(edge) for edge in graph["edges"]]
        screen = self.ctx.screen
        if screen.has(self.schema_window_name()):
            screen.destroy(self.schema_window_name())
        if not nodes:
            screen.create(
                panel(
                    self.schema_window_name(),
                    (text_window(f"{self.db}.schema.art", "(empty schema)"),),
                    title=f"{self.db}: class relationships",
                )
            )
            return
        labels = {name: self._node_label(name) for name in nodes}
        # 1 abstract unit = 1 character column; keep boxes from overlapping.
        max_label = max(len(label) for label in labels.values())
        separation = max_label + 6 + 4 * max(self.zoom, 0)
        placement = place(nodes, edges, separation=float(separation))
        column_of = {}
        for name in nodes:
            box_width = len(labels[name]) + 4  # [label] + border
            column_of[name] = int(round(placement.x_of[name])) + box_width // 2
        self.placement = placement
        height = placement.depth * _ROW_HEIGHT - 2
        width = max(
            int(round(placement.x_of[name])) + len(labels[name]) + 5
            for name in nodes
        )
        art = render_edge_art(placement, column_of, labels, width, height)
        children: List[WindowSpec] = [
            text_window(f"{self.db}.schema.art", art,
                        width=width, height=height)
        ]
        for name in nodes:
            children.append(
                button(
                    self.node_button_name(name),
                    labels[name],
                    f"class:{name}",
                    placement=at(
                        int(round(placement.x_of[name])),
                        placement.layer_of[name] * _ROW_HEIGHT,
                    ),
                )
            )
        screen.create(
            panel(
                self.schema_window_name(),
                tuple(children),
                title=f"{self.db}: class relationships",
            )
        )
        for name in nodes:
            screen.on_click(
                self.node_button_name(name),
                lambda _event, c=name: self.open_class_info(c),
            )

    def zoom_in(self) -> None:
        self.zoom += 1
        self._build_schema_window()

    def zoom_out(self) -> None:
        self.zoom -= 1
        self._build_schema_window()

    def rebuild(self) -> None:
        """Re-read the schema (after evolution) and redraw the DAG."""
        self._build_schema_window()

    # -- the class information window (Figures 3 and 5) ------------------------------------

    def open_class_info(self, class_name: str) -> str:
        """Click a schema node: open the class information window."""
        # Validate user input here: a bad name must not crash the
        # db-interactor process (it serves the whole session).
        self.database.schema.get_class(class_name)
        info = self.ctx.processes.call(
            self._interactor, "class_info", class_name=class_name
        )
        screen = self.ctx.screen
        window_name = self.info_window_name(class_name)
        if screen.has(window_name):
            screen.destroy(window_name)
        if window_name in self.info_open:
            self.info_open.remove(window_name)

        children: List[WindowSpec] = []

        def listing(tag: str, title: str, names: List[str],
                    placement) -> str:
            """A subwindow listing related classes as clickable buttons."""
            inner: List[WindowSpec] = []
            previous = None
            for related in names:
                spec_name = f"{window_name}.{tag}.{related}"
                inner.append(
                    button(
                        spec_name, related, f"class:{related}",
                        placement=(at(0, 0) if previous is None
                                   else below(previous)),
                    )
                )
                previous = spec_name
            if not inner:
                inner.append(
                    text_window(f"{window_name}.{tag}.none", "(none)",
                                placement=at(0, 0))
                )
            children.append(
                panel(f"{window_name}.{tag}", tuple(inner), title=title,
                      placement=placement)
            )
            return f"{window_name}.{tag}"

        supers_name = listing("supers", "superclasses",
                              info["superclasses"], at(0, 0))
        subs_name = listing("subs", "subclasses",
                            info["subclasses"], right_of(supers_name))
        meta_lines = [
            f"objects in cluster : {info['count']}",
            f"versioned          : {'yes' if info['versioned'] else 'no'}",
        ]
        children.append(
            text_window(
                f"{window_name}.meta", "\n".join(meta_lines),
                title="meta data", placement=right_of(subs_name),
                scrollable=True, height=3,
            )
        )
        children.append(
            button(f"{window_name}.showdef", "definition",
                   f"definition:{class_name}",
                   placement=below(supers_name))
        )
        screen.create(
            panel(window_name, tuple(children),
                  title=f"class {class_name}")
        )
        self.info_open.append(window_name)
        for related in info["superclasses"]:
            screen.on_click(
                f"{window_name}.supers.{related}",
                lambda _event, c=related: self.open_class_info(c),
            )
        for related in info["subclasses"]:
            screen.on_click(
                f"{window_name}.subs.{related}",
                lambda _event, c=related: self.open_class_info(c),
            )
        screen.on_click(
            f"{window_name}.showdef",
            lambda _event, c=class_name: self.open_class_definition(c),
        )
        return window_name

    # -- the class definition window (Figure 4) ----------------------------------------------

    def open_class_definition(self, class_name: str) -> str:
        """The class-definition window: canonical O++ source + objects button."""
        self.database.schema.get_class(class_name)
        source = self.ctx.processes.call(
            self._interactor, "class_definition", class_name=class_name
        )
        screen = self.ctx.screen
        window_name = self.def_window_name(class_name)
        if screen.has(window_name):
            screen.destroy(window_name)
        if window_name in self.def_open:
            self.def_open.remove(window_name)
        text_name = f"{window_name}.source"
        children = (
            text_window(text_name, source, scrollable=True,
                        placement=at(0, 0)),
            button(f"{window_name}.objects", "objects",
                   f"objects:{class_name}", placement=below(text_name)),
        )
        screen.create(
            panel(window_name, children,
                  title=f"{class_name} definition")
        )
        self.def_open.append(window_name)
        if self._on_objects is not None:
            screen.on_click(
                f"{window_name}.objects",
                lambda _event, c=class_name: self._on_objects(c),
            )
        return window_name
