"""The navigation tree: displayed objects and their reference children.

"The basic browsing paradigm encouraged by OdeView is to start from an
object and then explore the related objects in the database by following
the embedded chains of references" (paper §3.4).  "When the user follows a
chain of embedded references, a tree of windows is dynamically created"
(§4.4).

This module is that tree, kept free of window specifics so the sync logic
is testable on its own:

* :class:`SetNode` — an *object set*: sequencing over a list of OIDs, which
  is either a whole cluster (the root object-set window of §3.2) or the
  value of a set-valued reference attribute of the parent's current object
  (Figure 8).
* :class:`RefNode` — a single object reached through a single-valued
  reference of the parent (Figure 7).

Children are created **lazily**, only when the user asks for a referenced
object (§4.6: "the corresponding objects and the related display methods
are loaded only if the user selects the appropriate buttons"); fetch counts
are recorded so ABL-LAZY can compare against eager expansion.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import OdeViewError
from repro.ode.objectmanager import ObjectBuffer, ObjectManager
from repro.ode.oid import Oid
from repro.ode.types import RefType, SetType


def reference_kind(manager: ObjectManager, class_name: str,
                   attr_name: str) -> str:
    """'ref' | 'set' | 'none' for one attribute of a class."""
    attr = manager.schema.find_attribute(class_name, attr_name)
    if isinstance(attr.type_spec, RefType):
        return "ref"
    if isinstance(attr.type_spec, SetType) and isinstance(
            attr.type_spec.element, RefType):
        return "set"
    return "none"


def reference_attributes(manager: ObjectManager, class_name: str) -> List[str]:
    """Attribute names an object panel offers navigation buttons for."""
    names = []
    for attr in manager.schema.all_attributes(class_name):
        if not attr.is_public:
            continue
        kind = "none"
        if isinstance(attr.type_spec, RefType):
            kind = "ref"
        elif isinstance(attr.type_spec, SetType) and isinstance(
                attr.type_spec.element, RefType):
            kind = "set"
        if kind != "none":
            names.append(attr.name)
    return names


class Node:
    """Base navigation node: one displayed object context."""

    def __init__(self, manager: ObjectManager, class_name: str, path: str,
                 parent: Optional["Node"] = None):
        self.manager = manager
        self.class_name = class_name
        self.path = path                      # unique dotted name, window prefix
        self.parent = parent
        self.children: Dict[str, "Node"] = {}  # by reference attribute name
        self.current: Optional[Oid] = None
        self.fetches = 0                      # object-buffer fetch counter
        self.refreshes = 0                    # how often sync refreshed us
        self.on_refresh: List[Callable[["Node"], None]] = []

    # -- object access ----------------------------------------------------------

    def buffer(self) -> Optional[ObjectBuffer]:
        if self.current is None:
            return None
        self.fetches += 1
        return self.manager.get_buffer(self.current)

    # -- children (lazy) -----------------------------------------------------------

    def child(self, attr_name: str) -> "Node":
        """The child node for a reference attribute, created on first use."""
        if attr_name in self.children:
            return self.children[attr_name]
        kind = reference_kind(self.manager, self.class_name, attr_name)
        if kind == "none":
            raise OdeViewError(
                f"attribute {attr_name!r} of {self.class_name!r} "
                "is not a reference"
            )
        attr = self.manager.schema.find_attribute(self.class_name, attr_name)
        if kind == "ref":
            target_class = attr.type_spec.class_name
            node: Node = RefNode(
                self.manager, target_class, f"{self.path}.{attr_name}",
                parent=self, attr_name=attr_name,
            )
        else:
            target_class = attr.type_spec.element.class_name
            node = SetNode(
                self.manager, target_class, f"{self.path}.{attr_name}",
                parent=self, attr_name=attr_name,
            )
        self.children[attr_name] = node
        node.pull_from_parent()
        return node

    def has_child(self, attr_name: str) -> bool:
        return attr_name in self.children

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()

    # -- refresh plumbing ---------------------------------------------------------------

    def _set_current(self, oid: Optional[Oid]) -> None:
        self.current = oid
        self.refreshes += 1
        for callback in self.on_refresh:
            callback(self)
        for child in self.children.values():
            child.pull_from_parent()

    def pull_from_parent(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.path!r}, current={self.current})"


class RefNode(Node):
    """A single object reached via a single-valued reference (Figure 7)."""

    def __init__(self, manager, class_name, path, parent: Node, attr_name: str):
        super().__init__(manager, class_name, path, parent)
        self.attr_name = attr_name

    def pull_from_parent(self) -> None:
        """Re-read the parent's reference attribute (sync propagation)."""
        assert self.parent is not None
        parent_buffer = self.parent.buffer()
        value = None
        if parent_buffer is not None:
            value = parent_buffer.value(self.attr_name)
        self._set_current(value)


class SetNode(Node):
    """Sequencing over a list of member OIDs.

    A root SetNode sequences a whole cluster; a child SetNode sequences the
    parent's set-valued reference attribute.  The control-panel semantics
    match :class:`~repro.ode.cluster.ClusterCursor`: reset puts the cursor
    before the first member; next/previous return None at the ends.
    """

    def __init__(self, manager, class_name, path,
                 parent: Optional[Node] = None,
                 attr_name: Optional[str] = None,
                 predicate=None):
        super().__init__(manager, class_name, path, parent)
        self.attr_name = attr_name
        self.predicate = predicate
        self._members: List[Oid] = []
        self._index = -1  # -1 = before first
        if parent is None:
            self.reload_members()

    # -- membership ------------------------------------------------------------

    def reload_members(self) -> None:
        """Recompute the member list from the cluster or parent attribute."""
        if self.parent is None:
            cluster = self.manager.cluster(self.class_name)
            members = cluster.oids()
        else:
            parent_buffer = self.parent.buffer()
            members = []
            if parent_buffer is not None and self.attr_name is not None:
                members = [
                    oid for oid in parent_buffer.value(self.attr_name)
                    if isinstance(oid, Oid)
                ]
        if self.predicate is not None:
            kept = []
            for oid in members:
                self.fetches += 1
                if self.predicate(self.manager.get_buffer(oid)):
                    kept.append(oid)
            members = kept
        self._members = members

    def members(self) -> List[Oid]:
        return list(self._members)

    def member_count(self) -> int:
        return len(self._members)

    def pull_from_parent(self) -> None:
        """Parent moved: refresh membership and restart at the first member.

        This is the Figure 10 behaviour — sequencing the employee refreshes
        the department's employee-set display to the new department's
        members.
        """
        self.reload_members()
        self._index = 0 if self._members else -1
        self._set_current(self._members[0] if self._members else None)

    # -- sequencing (the control panel, §3.2) --------------------------------------------

    def reset(self) -> None:
        self._index = -1
        self._set_current(None)

    def next(self) -> Optional[Oid]:
        if self._index + 1 < len(self._members):
            self._index += 1
            self._set_current(self._members[self._index])
            return self.current
        return None

    def previous(self) -> Optional[Oid]:
        if self._index > 0:
            self._index -= 1
            self._set_current(self._members[self._index])
            return self.current
        return None

    def seek(self, oid: Oid) -> None:
        if oid not in self._members:
            raise OdeViewError(f"{oid} is not a member of {self.path}")
        self._index = self._members.index(oid)
        self._set_current(oid)
