"""Database statistics: the planner's catalog and the statistics window.

Two layers share this module:

* :class:`StatisticsCatalog` — per-cluster cardinality and per-attribute
  selectivity estimates, the numbers the query planner's cost model runs
  on.  Cardinality is maintained incrementally on every commit (the
  index manager's apply hook feeds it from inside the commit path);
  attribute statistics (row count, distinct keys, min/max bounds) are
  refreshed from the covering index whenever a commit touches it.
  ``seed()`` lets tests and fixtures pin estimates without building
  data, which is how the planner regression suite forces probe-wins /
  scan-wins / break-even shapes.
* The statistics *window* — not a paper figure, but the kind of
  companion window a production release of OdeView would ship: one
  glance at the open database's clusters, index coverage, planner
  estimates, buffer-pool behaviour, and dynamic-linker cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.windowing.wintypes import at, panel, text_window


# -- the planner's catalog ----------------------------------------------------

@dataclass(frozen=True)
class AttributeStatistics:
    """Summary of one indexed attribute's value distribution."""

    rows: int                      # live entries (= live cluster members)
    distinct: int                  # distinct live keys
    min_key: Optional[Tuple]       # smallest live sort key (rank, value)
    max_key: Optional[Tuple]       # largest live sort key
    source: str = "index"          # "index" (observed) | "seed" (pinned)


class StatisticsCatalog:
    """Cardinality and selectivity estimates for one database.

    Thread-safe; written from inside the store's commit path (via the
    index manager's apply hook) and read lock-free-ish by planners.
    Seeded values are pinned: they win over observed numbers until
    :meth:`unseed`, which is what planner regression fixtures rely on.
    """

    #: Fallback selectivities when no statistics cover an attribute.
    DEFAULT_EQ_SELECTIVITY = 0.05
    DEFAULT_RANGE_SELECTIVITY = 0.30

    def __init__(self, objects=None):
        self._objects = objects    # ObjectManager, for lazy first counts
        self._lock = threading.RLock()
        self._cardinality: Dict[str, int] = {}
        self._attributes: Dict[Tuple[str, str], AttributeStatistics] = {}
        self._seeded_cardinality: Dict[str, int] = {}
        self._seeded_attributes: Dict[Tuple[str, str],
                                      AttributeStatistics] = {}
        self.commits_observed = 0
        #: The most recent EXPLAIN text a planner produced against this
        #: database — surfaced in the statistics window.
        self.last_explain: Optional[str] = None

    # -- cardinality -----------------------------------------------------------

    def cardinality(self, class_name: str) -> int:
        """Estimated live members of a cluster (exact when tracked)."""
        with self._lock:
            if class_name in self._seeded_cardinality:
                return self._seeded_cardinality[class_name]
            if class_name in self._cardinality:
                return self._cardinality[class_name]
        count = 0
        if self._objects is not None:
            try:
                count = self._objects.count(class_name)
            except Exception:  # unknown class / closed store: estimate 0
                count = 0
        with self._lock:
            self._cardinality.setdefault(class_name, count)
            return self._cardinality[class_name]

    def adjust_cardinality(self, class_name: str, delta: int) -> None:
        """Incremental maintenance from the commit path."""
        with self._lock:
            self.commits_observed += 1
            if class_name in self._cardinality:
                self._cardinality[class_name] = max(
                    0, self._cardinality[class_name] + delta)
                return
        # First sight of this cluster: initialize from the store (the
        # commit that triggered us is already applied, so the count is
        # current — no delta to add on top).
        self.cardinality(class_name)

    # -- attribute statistics --------------------------------------------------

    def attribute(self, class_name: str,
                  attribute: str) -> Optional[AttributeStatistics]:
        with self._lock:
            seeded = self._seeded_attributes.get((class_name, attribute))
            if seeded is not None:
                return seeded
            return self._attributes.get((class_name, attribute))

    def observe_index(self, index) -> None:
        """Refresh one attribute's statistics from its covering index."""
        bounds = index.live_bounds()
        stats = AttributeStatistics(
            rows=len(index),
            distinct=index.distinct_count(),
            min_key=bounds[0] if bounds else None,
            max_key=bounds[1] if bounds else None,
        )
        with self._lock:
            self._attributes[(index.class_name, index.attribute)] = stats

    def forget_attribute(self, class_name: str, attribute: str) -> None:
        with self._lock:
            self._attributes.pop((class_name, attribute), None)

    # -- fixtures --------------------------------------------------------------

    def seed(self, class_name: str, cardinality: Optional[int] = None,
             attributes: Optional[Dict[str, Dict[str, Any]]] = None) -> None:
        """Pin estimates for planner fixtures.

        ``attributes`` maps attribute name to keyword arguments of
        :class:`AttributeStatistics` (``rows`` defaults to the seeded
        cardinality).  Seeded numbers beat observed ones until
        :meth:`unseed`.
        """
        with self._lock:
            if cardinality is not None:
                self._seeded_cardinality[class_name] = int(cardinality)
            for name, spec in (attributes or {}).items():
                spec = dict(spec)
                spec.setdefault("rows", self._seeded_cardinality.get(
                    class_name, self._cardinality.get(class_name, 0)))
                spec.setdefault("distinct", spec["rows"])
                spec.setdefault("min_key", None)
                spec.setdefault("max_key", None)
                spec["source"] = "seed"
                self._seeded_attributes[(class_name, name)] = (
                    AttributeStatistics(**spec))

    def unseed(self, class_name: Optional[str] = None) -> None:
        with self._lock:
            if class_name is None:
                self._seeded_cardinality.clear()
                self._seeded_attributes.clear()
                return
            self._seeded_cardinality.pop(class_name, None)
            for key in [k for k in self._seeded_attributes
                        if k[0] == class_name]:
                del self._seeded_attributes[key]

    def invalidate(self) -> None:
        """Drop observed numbers (store recovered/resynced); keep seeds."""
        with self._lock:
            self._cardinality.clear()
            self._attributes.clear()

    # -- selectivity estimators ------------------------------------------------

    def estimate_equal(self, class_name: str, attribute: str,
                       value: Any) -> float:
        """Estimated rows matching ``attribute == value``."""
        total = self.cardinality(class_name)
        stats = self.attribute(class_name, attribute)
        if stats is not None and stats.distinct > 0 and stats.rows > 0:
            return min(float(total), stats.rows / stats.distinct)
        return max(1.0, total * self.DEFAULT_EQ_SELECTIVITY) if total else 0.0

    def estimate_range(self, class_name: str, attribute: str,
                       low: Any = None, high: Any = None) -> float:
        """Estimated rows in a (half-)bounded range over *attribute*.

        Interpolates within the observed [min, max] when the bounds and
        the probe are on the same numeric rank (ints/floats and dates);
        otherwise falls back to a fixed selectivity.
        """
        total = self.cardinality(class_name)
        if not total:
            return 0.0
        stats = self.attribute(class_name, attribute)
        fraction = self._range_fraction(stats, low, high)
        if fraction is None:
            fraction = self.DEFAULT_RANGE_SELECTIVITY
            if low is None or high is None:
                fraction = min(1.0, fraction * 1.5)  # half-open: wider
        rows = stats.rows if stats is not None and stats.rows else total
        return max(1.0, min(float(total), rows * fraction))

    @staticmethod
    def _range_fraction(stats: Optional[AttributeStatistics],
                        low: Any, high: Any) -> Optional[float]:
        if stats is None or stats.min_key is None or stats.max_key is None:
            return None
        # Import here: the catalog must stay importable without ode.
        from repro.ode.index import _sort_key

        lo_key = stats.min_key if low is None else _sort_key(low)
        hi_key = stats.max_key if high is None else _sort_key(high)
        ranks = {stats.min_key[0], stats.max_key[0], lo_key[0], hi_key[0]}
        if len(ranks) != 1:
            return None
        span = stats.max_key[1] - stats.min_key[1]
        if not isinstance(span, (int, float)):
            return None
        if span <= 0:
            # Degenerate domain: everything matches or nothing does.
            covers = lo_key <= stats.min_key <= hi_key
            return 1.0 if covers else 0.0
        lo = max(lo_key[1], stats.min_key[1])
        hi = min(hi_key[1], stats.max_key[1])
        if lo > hi:
            return 0.0
        return max(0.0, min(1.0, (hi - lo) / span))

    # -- display ---------------------------------------------------------------

    def describe_rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for the statistics window."""
        rows: List[Tuple[str, str]] = []
        with self._lock:
            rows.append(("planner commits observed",
                         str(self.commits_observed)))
            for key in sorted(set(self._attributes)
                              | set(self._seeded_attributes)):
                stats = self._seeded_attributes.get(key,
                                                    self._attributes.get(key))
                rows.append((
                    f"stats {key[0]}.{key[1]}",
                    f"{stats.rows} rows, {stats.distinct} distinct "
                    f"({stats.source})"))
            if self.last_explain:
                for i, line in enumerate(self.last_explain.splitlines()):
                    rows.append(("last explain" if i == 0 else "",
                                 line.strip()))
        return rows


def gather_statistics(db_session) -> List[Tuple[str, str]]:
    """(label, value) rows for one open database.

    A remote database reports the server's numbers (one STATS round
    trip) plus the client side of the wire: cache behaviour and the
    ``net.client.*`` metrics registry rows.
    """
    database = db_session.database
    objects = database.objects
    rows: List[Tuple[str, str]] = []
    rows.append(("schema version", str(database.schema.version)))
    rows.append(("classes", str(len(database.schema.class_names()))))
    if getattr(database, "remote", False):
        rows.extend(_remote_statistics(database))
    else:
        for class_name in database.schema.class_names():
            rows.append((f"cluster {class_name}",
                         f"{objects.count(class_name)} objects"))
        indexes = objects.indexes.indexes()
        if indexes:
            for index in indexes:
                rows.append((f"index {index.class_name}.{index.attribute}",
                             f"{len(index)} entries"))
        else:
            rows.append(("indexes", "(none)"))
        catalog = getattr(objects, "statistics", None)
        if catalog is not None:
            rows.extend(catalog.describe_rows())
        rows.append(("fragmentation",
                     f"{database.store.fragmentation():.0%} of page space dead"))
        pool = database.store.pool
        stats = pool.stats
        rows.append(("pool policy", pool.policy_name))
        rows.append(("pool hits / misses",
                     f"{stats.hits} / {stats.misses} "
                     f"({stats.hit_rate:.0%} hit rate)"))
        rows.append(("pool evictions", str(stats.evictions)))
        rows.append(("pool prefetches", str(stats.prefetches)))
        fetch = pool.fetch_time
        if fetch.count:
            rows.append(("page fetch latency",
                         f"{fetch.count} fetches, mean "
                         f"{fetch.mean * 1e6:.0f}µs, p95 "
                         f"{fetch.percentile(95) * 1e6:.0f}µs"))
        else:
            rows.append(("page fetch latency", "(no fetches yet)"))
        from repro.obs.metrics import get_registry

        registry = get_registry()
        rows.append(("commit epoch", str(database.store.epoch)))
        rows.extend(_group_commit_rows(
            database.store.group_commit_stats(), registry))
        rows.append(("mvcc versions live",
                     str(registry.gauge("mvcc.versions_live").value)))
        rows.append(("mvcc snapshots open",
                     str(registry.gauge("mvcc.snapshots_open").value)))
        rows.append(("mvcc reads / fallbacks",
                     f"{registry.counter('mvcc.snapshot_reads').value} / "
                     f"{registry.counter('mvcc.read_fallbacks').value}"))
        rows.append(("mvcc versions pruned",
                     str(registry.counter("mvcc.pruned").value)))
        age = registry.histogram("mvcc.snapshot_age")
        if age.count:
            rows.append(("snapshot age (epochs)",
                         f"mean {age.mean:.1f}, p95 {age.percentile(95):.0f}"))
    loader = db_session.registry.loader.stats
    rows.append(("display modules loaded", str(loader.loads)))
    rows.append(("display cache hits", str(loader.cache_hits)))
    return rows


def _group_commit_rows(stats, registry=None) -> List[Tuple[str, str]]:
    """Rows for one store's commit barrier (local or server-reported).

    ``registry`` adds the process-wide ``wal.group.*`` family for the
    local case — the per-store numbers and the registry mirrors diverge
    when several stores share the process.
    """
    rows: List[Tuple[str, str]] = []
    if not stats:
        return rows
    rows.append(("group commit",
                 f"window {stats.get('window_ms', 0):g}ms, "
                 f"max batch {stats.get('max_batch', 0)}"))
    batches = stats.get("batches", 0)
    if batches:
        rows.append(("wal.group batches / commits",
                     f"{batches} / {stats.get('commits', 0)} "
                     f"(mean batch {stats.get('batch_size_mean', 0.0):.1f}, "
                     f"max {stats.get('batch_size_max', 0)})"))
        rows.append(("wal.group syncs", str(stats.get("syncs", 0))))
    if stats.get("wait_count"):
        rows.append(("commit wait latency",
                     f"mean {stats.get('wait_mean_ms', 0.0):.2f}ms, "
                     f"p95 {stats.get('wait_p95_ms', 0.0):.2f}ms"))
    if registry is not None:
        family = registry.snapshot_prefix("wal.group.")
        for name in ("wal.group.batches", "wal.group.commits",
                     "wal.group.syncs"):
            if name in family:
                rows.append((f"{name} (process)", str(family[name])))
    return rows


def _remote_statistics(database) -> List[Tuple[str, str]]:
    """Server-reported and wire-level rows for a remote database."""
    from repro.obs.metrics import get_registry

    rows: List[Tuple[str, str]] = []
    stats = database.server_stats()
    for class_name, count in sorted(stats.get("clusters", {}).items()):
        rows.append((f"cluster {class_name}", f"{count} objects"))
    indexes = stats.get("indexes", [])
    if indexes:
        for index in indexes:
            rows.append((f"index {index['class']}.{index['attribute']}",
                         f"{index['entries']} entries (server)"))
    else:
        rows.append(("indexes", "(none)"))
    for label, value in stats.get("statistics", []):
        rows.append((f"server {label}" if label else "", str(value)))
    rows.append(("fragmentation",
                 f"{stats.get('fragmentation', 0.0):.0%} of page space dead "
                 f"(server)"))
    pool = stats.get("pool", {})
    rows.append(("server pool policy", str(pool.get("policy", "?"))))
    rows.append(("server pool hits / misses",
                 f"{pool.get('hits', 0)} / {pool.get('misses', 0)}"))
    rows.append(("server commit epoch", str(stats.get("epoch", "?"))))
    rows.extend(
        (f"server {label}", value)
        for label, value in _group_commit_rows(stats.get("group_commit", {})))
    mvcc = stats.get("mvcc", {})
    if mvcc:
        rows.append(("server mvcc versions live",
                     str(mvcc.get("versions_live", 0))))
        rows.append(("server mvcc reads / fallbacks",
                     f"{mvcc.get('snapshot_reads', 0)} / "
                     f"{mvcc.get('read_fallbacks', 0)}"))
    if "read_lockfree" in stats:
        rows.append(("lock-free reads served", str(stats["read_lockfree"])))
    cdc = stats.get("cdc", {})
    if cdc:
        rows.append(("server cdc subscribers", str(cdc.get("subscribers", 0))))
        rows.append(("server cdc events / delivered",
                     f"{cdc.get('events', 0)} / {cdc.get('delivered', 0)}"))
        rows.append(("server cdc coalesced / backlog",
                     f"{cdc.get('coalesced', 0)} / {cdc.get('backlog', 0)}"))
    cache = database.objects.cache
    rows.append(("object cache",
                 f"{len(cache)} buffers, {cache.hits} hits / "
                 f"{cache.misses} misses"))
    rows.append(("cache invalidations", str(cache.invalidations)))
    rows.append(("cache epoch floor / latest",
                 f"{cache.floor} / {cache.latest}"))
    if cache.cdc_epoch is not None:
        rows.append(("cdc precise invalidation",
                     f"{cache.delta_applied} deltas, "
                     f"{cache.delta_evictions} evictions, "
                     f"{cache.resyncs} resyncs "
                     f"(basis epoch {cache.cdc_epoch})"))
    snapshot = get_registry().snapshot()
    for name in ("net.client.bytes_out", "net.client.bytes_in",
                 "net.client.retries", "net.client.reconnects",
                 "net.client.push_events", "net.client.subscribes"):
        if name in snapshot:
            rows.append((name, str(snapshot[name])))
    timings = snapshot.get("net.client.request_seconds")
    if isinstance(timings, dict) and timings.get("count"):
        rows.append(("request latency",
                     f"{timings['count']:.0f} requests, mean "
                     f"{timings['mean'] * 1e3:.1f}ms, p95 "
                     f"{timings['p95'] * 1e3:.1f}ms"))
    return rows


class StatisticsWindow:
    """A refreshable window of the statistics above."""

    def __init__(self, db_session):
        self.session = db_session
        self.window_name = f"{db_session.name}.stats"
        self._build()

    def _format(self) -> str:
        rows = gather_statistics(self.session)
        width = max(len(label) for label, _value in rows)
        return "\n".join(f"{label.ljust(width)} : {value}"
                         for label, value in rows)

    def _build(self) -> None:
        screen = self.session.app.ctx.screen
        if screen.has(self.window_name):
            screen.destroy(self.window_name)
        children = (
            text_window(f"{self.window_name}.body", self._format(),
                        scrollable=True, placement=at(0, 0)),
            # a refresh button, wired below
        )
        screen.create(panel(
            self.window_name, children,
            title=f"{self.session.name}: statistics"))
        from repro.windowing.wintypes import button

        screen.create(
            button(f"{self.window_name}.refresh", "refresh", "refresh"),
        )
        screen.on_click(f"{self.window_name}.refresh",
                        lambda _event: self.refresh())

    def refresh(self) -> None:
        screen = self.session.app.ctx.screen
        screen.set_content(f"{self.window_name}.body", self._format())

    def destroy(self) -> None:
        screen = self.session.app.ctx.screen
        for name in (self.window_name, f"{self.window_name}.refresh"):
            if screen.has(name):
                screen.destroy(name)
