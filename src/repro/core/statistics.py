"""The database statistics window.

Not a paper figure, but the kind of companion window a production release
of OdeView would ship: one glance at the open database's clusters, index
coverage, buffer-pool behaviour, and dynamic-linker cache — the numbers
the EXPERIMENTS.md ablations are about, live.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.windowing.wintypes import at, panel, text_window


def gather_statistics(db_session) -> List[Tuple[str, str]]:
    """(label, value) rows for one open database.

    A remote database reports the server's numbers (one STATS round
    trip) plus the client side of the wire: cache behaviour and the
    ``net.client.*`` metrics registry rows.
    """
    database = db_session.database
    objects = database.objects
    rows: List[Tuple[str, str]] = []
    rows.append(("schema version", str(database.schema.version)))
    rows.append(("classes", str(len(database.schema.class_names()))))
    if getattr(database, "remote", False):
        rows.extend(_remote_statistics(database))
    else:
        for class_name in database.schema.class_names():
            rows.append((f"cluster {class_name}",
                         f"{objects.count(class_name)} objects"))
        indexes = objects.indexes.indexes()
        if indexes:
            for index in indexes:
                rows.append((f"index {index.class_name}.{index.attribute}",
                             f"{len(index)} entries"))
        else:
            rows.append(("indexes", "(none)"))
        rows.append(("fragmentation",
                     f"{database.store.fragmentation():.0%} of page space dead"))
        pool = database.store.pool
        stats = pool.stats
        rows.append(("pool policy", pool.policy_name))
        rows.append(("pool hits / misses",
                     f"{stats.hits} / {stats.misses} "
                     f"({stats.hit_rate:.0%} hit rate)"))
        rows.append(("pool evictions", str(stats.evictions)))
        rows.append(("pool prefetches", str(stats.prefetches)))
        fetch = pool.fetch_time
        if fetch.count:
            rows.append(("page fetch latency",
                         f"{fetch.count} fetches, mean "
                         f"{fetch.mean * 1e6:.0f}µs, p95 "
                         f"{fetch.percentile(95) * 1e6:.0f}µs"))
        else:
            rows.append(("page fetch latency", "(no fetches yet)"))
        from repro.obs.metrics import get_registry

        registry = get_registry()
        rows.append(("commit epoch", str(database.store.epoch)))
        rows.extend(_group_commit_rows(
            database.store.group_commit_stats(), registry))
        rows.append(("mvcc versions live",
                     str(registry.gauge("mvcc.versions_live").value)))
        rows.append(("mvcc snapshots open",
                     str(registry.gauge("mvcc.snapshots_open").value)))
        rows.append(("mvcc reads / fallbacks",
                     f"{registry.counter('mvcc.snapshot_reads').value} / "
                     f"{registry.counter('mvcc.read_fallbacks').value}"))
        rows.append(("mvcc versions pruned",
                     str(registry.counter("mvcc.pruned").value)))
        age = registry.histogram("mvcc.snapshot_age")
        if age.count:
            rows.append(("snapshot age (epochs)",
                         f"mean {age.mean:.1f}, p95 {age.percentile(95):.0f}"))
    loader = db_session.registry.loader.stats
    rows.append(("display modules loaded", str(loader.loads)))
    rows.append(("display cache hits", str(loader.cache_hits)))
    return rows


def _group_commit_rows(stats, registry=None) -> List[Tuple[str, str]]:
    """Rows for one store's commit barrier (local or server-reported).

    ``registry`` adds the process-wide ``wal.group.*`` family for the
    local case — the per-store numbers and the registry mirrors diverge
    when several stores share the process.
    """
    rows: List[Tuple[str, str]] = []
    if not stats:
        return rows
    rows.append(("group commit",
                 f"window {stats.get('window_ms', 0):g}ms, "
                 f"max batch {stats.get('max_batch', 0)}"))
    batches = stats.get("batches", 0)
    if batches:
        rows.append(("wal.group batches / commits",
                     f"{batches} / {stats.get('commits', 0)} "
                     f"(mean batch {stats.get('batch_size_mean', 0.0):.1f}, "
                     f"max {stats.get('batch_size_max', 0)})"))
        rows.append(("wal.group syncs", str(stats.get("syncs", 0))))
    if stats.get("wait_count"):
        rows.append(("commit wait latency",
                     f"mean {stats.get('wait_mean_ms', 0.0):.2f}ms, "
                     f"p95 {stats.get('wait_p95_ms', 0.0):.2f}ms"))
    if registry is not None:
        family = registry.snapshot_prefix("wal.group.")
        for name in ("wal.group.batches", "wal.group.commits",
                     "wal.group.syncs"):
            if name in family:
                rows.append((f"{name} (process)", str(family[name])))
    return rows


def _remote_statistics(database) -> List[Tuple[str, str]]:
    """Server-reported and wire-level rows for a remote database."""
    from repro.obs.metrics import get_registry

    rows: List[Tuple[str, str]] = []
    stats = database.server_stats()
    for class_name, count in sorted(stats.get("clusters", {}).items()):
        rows.append((f"cluster {class_name}", f"{count} objects"))
    indexes = stats.get("indexes", [])
    if indexes:
        for index in indexes:
            rows.append((f"index {index['class']}.{index['attribute']}",
                         f"{index['entries']} entries (server)"))
    else:
        rows.append(("indexes", "(none)"))
    rows.append(("fragmentation",
                 f"{stats.get('fragmentation', 0.0):.0%} of page space dead "
                 f"(server)"))
    pool = stats.get("pool", {})
    rows.append(("server pool policy", str(pool.get("policy", "?"))))
    rows.append(("server pool hits / misses",
                 f"{pool.get('hits', 0)} / {pool.get('misses', 0)}"))
    rows.append(("server commit epoch", str(stats.get("epoch", "?"))))
    rows.extend(
        (f"server {label}", value)
        for label, value in _group_commit_rows(stats.get("group_commit", {})))
    mvcc = stats.get("mvcc", {})
    if mvcc:
        rows.append(("server mvcc versions live",
                     str(mvcc.get("versions_live", 0))))
        rows.append(("server mvcc reads / fallbacks",
                     f"{mvcc.get('snapshot_reads', 0)} / "
                     f"{mvcc.get('read_fallbacks', 0)}"))
    if "read_lockfree" in stats:
        rows.append(("lock-free reads served", str(stats["read_lockfree"])))
    cdc = stats.get("cdc", {})
    if cdc:
        rows.append(("server cdc subscribers", str(cdc.get("subscribers", 0))))
        rows.append(("server cdc events / delivered",
                     f"{cdc.get('events', 0)} / {cdc.get('delivered', 0)}"))
        rows.append(("server cdc coalesced / backlog",
                     f"{cdc.get('coalesced', 0)} / {cdc.get('backlog', 0)}"))
    cache = database.objects.cache
    rows.append(("object cache",
                 f"{len(cache)} buffers, {cache.hits} hits / "
                 f"{cache.misses} misses"))
    rows.append(("cache invalidations", str(cache.invalidations)))
    rows.append(("cache epoch floor / latest",
                 f"{cache.floor} / {cache.latest}"))
    if cache.cdc_epoch is not None:
        rows.append(("cdc precise invalidation",
                     f"{cache.delta_applied} deltas, "
                     f"{cache.delta_evictions} evictions, "
                     f"{cache.resyncs} resyncs "
                     f"(basis epoch {cache.cdc_epoch})"))
    snapshot = get_registry().snapshot()
    for name in ("net.client.bytes_out", "net.client.bytes_in",
                 "net.client.retries", "net.client.reconnects",
                 "net.client.push_events", "net.client.subscribes"):
        if name in snapshot:
            rows.append((name, str(snapshot[name])))
    timings = snapshot.get("net.client.request_seconds")
    if isinstance(timings, dict) and timings.get("count"):
        rows.append(("request latency",
                     f"{timings['count']:.0f} requests, mean "
                     f"{timings['mean'] * 1e3:.1f}ms, p95 "
                     f"{timings['p95'] * 1e3:.1f}ms"))
    return rows


class StatisticsWindow:
    """A refreshable window of the statistics above."""

    def __init__(self, db_session):
        self.session = db_session
        self.window_name = f"{db_session.name}.stats"
        self._build()

    def _format(self) -> str:
        rows = gather_statistics(self.session)
        width = max(len(label) for label, _value in rows)
        return "\n".join(f"{label.ljust(width)} : {value}"
                         for label, value in rows)

    def _build(self) -> None:
        screen = self.session.app.ctx.screen
        if screen.has(self.window_name):
            screen.destroy(self.window_name)
        children = (
            text_window(f"{self.window_name}.body", self._format(),
                        scrollable=True, placement=at(0, 0)),
            # a refresh button, wired below
        )
        screen.create(panel(
            self.window_name, children,
            title=f"{self.session.name}: statistics"))
        from repro.windowing.wintypes import button

        screen.create(
            button(f"{self.window_name}.refresh", "refresh", "refresh"),
        )
        screen.on_click(f"{self.window_name}.refresh",
                        lambda _event: self.refresh())

    def refresh(self) -> None:
        screen = self.session.app.ctx.screen
        screen.set_content(f"{self.window_name}.body", self._format())

    def destroy(self) -> None:
        screen = self.session.app.ctx.screen
        for name in (self.window_name, f"{self.window_name}.refresh"):
            if screen.has(name):
                screen.destroy(name)
