"""Views involving more than one object (paper §5.3).

"We have decided to display all the objects involved in the join
simultaneously — each displayed using the corresponding display function."

An equi-join pairs objects of two classes whose join expressions evaluate
equal; the :class:`JoinView` then behaves like an object-set window over
the *pairs*: one control panel, and per pair one display per side, each
produced by that class's own display function.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import OdeViewError
from repro.core.objectbrowser import UiContext
from repro.dynlink.protocol import DisplayRequest
from repro.dynlink.registry import DisplayRegistry
from repro.ode.database import Database
from repro.ode.oid import Oid
from repro.ode.opp.parser import parse_expression
from repro.ode.opp.predicate import PredicateEvaluator
from repro.errors import PredicateError
from repro.windowing.wintypes import text_window
from repro.windowing.widgets import control_panel


def equi_join(database: Database, class_a: str, expr_a: str,
              class_b: str, expr_b: str,
              privileged: bool = False) -> List[Tuple[Oid, Oid]]:
    """All (a, b) pairs where expr_a(a) == expr_b(b), hash-join order.

    Pair order is deterministic: cluster order of *class_a*, then of
    *class_b* within equal keys.
    """
    evaluator = PredicateEvaluator(database.objects, privileged=privileged)
    ast_a = parse_expression(expr_a)
    ast_b = parse_expression(expr_b)

    buckets: Dict[Any, List[Oid]] = {}
    for buffer in database.objects.select(class_b):
        try:
            key = evaluator.evaluate(ast_b, buffer)
        except PredicateError:
            continue
        buckets.setdefault(_hashable(key), []).append(buffer.oid)

    pairs: List[Tuple[Oid, Oid]] = []
    for buffer in database.objects.select(class_a):
        try:
            key = evaluator.evaluate(ast_a, buffer)
        except PredicateError:
            continue
        for oid_b in buckets.get(_hashable(key), ()):
            pairs.append((buffer.oid, oid_b))
    return pairs


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(val)) for key, val in value.items()))
    return value


class JoinView:
    """Windows over a sequence of joined object tuples."""

    _counter = 0

    def __init__(self, ctx: UiContext, database: Database,
                 pairs: List[Tuple[Oid, ...]],
                 registry: Optional[DisplayRegistry] = None):
        if not pairs:
            raise OdeViewError("join produced no pairs to display")
        widths = {len(pair) for pair in pairs}
        if len(widths) != 1:
            raise OdeViewError("join tuples must all have the same width")
        self.ctx = ctx
        self.database = database
        self.registry = registry or DisplayRegistry(database)
        self.pairs = list(pairs)
        self.index = -1
        JoinView._counter += 1
        self.path = f"{database.name}.join{JoinView._counter}"
        self._display_windows: List[str] = []
        self._build()

    def _build(self) -> None:
        screen = self.ctx.screen
        screen.create(control_panel(self.path))
        for op, button_index in (("reset", 0), ("next", 1), ("previous", 2)):
            screen.on_click(
                f"{self.path}.control.{op}.{button_index}",
                lambda _event, o=op: getattr(self, o)(),
            )
        screen.create(
            text_window(f"{self.path}.status",
                        f"(join: {len(self.pairs)} pairs)", width=44)
        )

    # -- sequencing over pairs -------------------------------------------------------

    def current(self) -> Optional[Tuple[Oid, ...]]:
        if self.index < 0:
            return None
        return self.pairs[self.index]

    def reset(self) -> None:
        self.index = -1
        self._refresh()

    def next(self) -> Optional[Tuple[Oid, ...]]:
        if self.index + 1 < len(self.pairs):
            self.index += 1
            self._refresh()
            return self.current()
        return None

    def previous(self) -> Optional[Tuple[Oid, ...]]:
        if self.index > 0:
            self.index -= 1
            self._refresh()
            return self.current()
        return None

    # -- display -------------------------------------------------------------------------

    def _refresh(self) -> None:
        """Display every object of the current tuple simultaneously, each
        with its own class's display function (paper §5.3)."""
        screen = self.ctx.screen
        for window_name in self._display_windows:
            if screen.has(window_name):
                screen.destroy(window_name)
        self._display_windows = []
        pair = self.current()
        if pair is None:
            screen.set_content(f"{self.path}.status",
                               f"(join: {len(self.pairs)} pairs)")
            return
        screen.set_content(
            f"{self.path}.status",
            f"pair {self.index + 1}/{len(self.pairs)}: "
            + " |><| ".join(str(oid) for oid in pair),
        )
        for side, oid in enumerate(pair):
            buffer = self.database.objects.get_buffer(oid)
            request = DisplayRequest(
                format_name=self.registry.formats(buffer.class_name)[0],
                privileged=self.ctx.privileged,
                window_prefix=f"{self.path}.side{side}",
            )
            resources = self.registry.display(buffer, request)
            for spec in resources.windows:
                screen.create(spec)
                self._display_windows.append(spec.name)

    def destroy(self) -> None:
        screen = self.ctx.screen
        for window_name in self._display_windows:
            if screen.has(window_name):
                screen.destroy(window_name)
        for window_name in (f"{self.path}.control", f"{self.path}.status"):
            if screen.has(window_name):
                screen.destroy(window_name)
