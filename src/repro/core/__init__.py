"""OdeView itself: the application, browsers, sync, and extensions."""

from repro.core.app import DbSession, OdeView
from repro.core.joins import JoinView, equi_join
from repro.core.navigation import Node, RefNode, SetNode, reference_attributes
from repro.core.objectbrowser import DisplayStateMemory, ObjectBrowser, UiContext
from repro.core.projection import ProjectionPanel
from repro.core.schemabrowser import SchemaBrowser
from repro.core.queryplan import QueryPlan, SelectionPlanner
from repro.core.selection import SelectionBuilder, select_objects, used_attributes
from repro.core.selectionpanel import SelectionPanel
from repro.core.session import UserSession
from repro.core.statistics import StatisticsWindow, gather_statistics
from repro.core.sync import (
    ReactiveBrowse, SyncReport, network_paths, sequence,
)

__all__ = [
    "DbSession",
    "DisplayStateMemory",
    "JoinView",
    "Node",
    "ObjectBrowser",
    "OdeView",
    "ProjectionPanel",
    "QueryPlan",
    "ReactiveBrowse",
    "RefNode",
    "SchemaBrowser",
    "SelectionBuilder",
    "SelectionPanel",
    "SelectionPlanner",
    "SetNode",
    "StatisticsWindow",
    "SyncReport",
    "UiContext",
    "UserSession",
    "equi_join",
    "gather_statistics",
    "network_paths",
    "reference_attributes",
    "select_objects",
    "sequence",
    "used_attributes",
]
