"""The scripted user session.

Section 3 of the paper is "a simulation of a user session with OdeView";
this module is the machinery that re-runs it: a driver that performs user
actions (clicking icons, nodes, and buttons; sequencing; projecting;
selecting) against a live :class:`~repro.core.app.OdeView` and records a
named rendering after each step.  The figure benchmarks and the
EXPERIMENTS.md transcripts are produced through it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SessionError
from repro.core.app import DbSession, OdeView
from repro.core.objectbrowser import ObjectBrowser
from repro.core.projection import ProjectionPanel
from repro.core.selection import SelectionBuilder


class UserSession:
    """Drives OdeView the way the paper's user does, keeping a transcript."""

    def __init__(self, root: Union[str, Path], backend=None,
                 screen_width: int = 150, privileged: bool = False):
        self.app = OdeView(root, backend=backend, screen_width=screen_width,
                           privileged=privileged)
        self.snapshots: List[Tuple[str, str]] = []
        self._projection_panels: Dict[str, ProjectionPanel] = {}

    # -- transcript -----------------------------------------------------------

    def snapshot(self, label: str) -> str:
        """Render the screen and record it under *label*."""
        rendering = self.app.render()
        self.snapshots.append((label, rendering))
        return rendering

    def rendering(self, label: str) -> str:
        for recorded_label, rendering in self.snapshots:
            if recorded_label == label:
                return rendering
        raise SessionError(f"no snapshot labelled {label!r}")

    def transcript(self) -> str:
        parts = []
        for label, rendering in self.snapshots:
            parts.append(f"=== {label} ===")
            parts.append(rendering)
            parts.append("")
        return "\n".join(parts)

    # -- the user actions of paper §3 -------------------------------------------------

    def click_database_icon(self, name: str) -> DbSession:
        """§3.1: click a database icon in the database window."""
        self.app.click(f"{OdeView.DATABASE_WINDOW}.icon.{name}")
        return self.app.session(name)

    def click_class_node(self, db: str, class_name: str) -> None:
        """§3.1: click a node in the schema window -> class info window."""
        self.app.click(f"{db}.schema.node.{class_name}")

    def click_definition_button(self, db: str, class_name: str) -> None:
        """§3.1: the class information window's definition button."""
        self.app.click(f"{db}.info.{class_name}.showdef")

    def click_objects_button(self, db: str, class_name: str) -> ObjectBrowser:
        """§3.2: the class definition window's objects button."""
        session = self.app.session(db)
        before = len(session.object_sets)
        self.app.click(f"{db}.def.{class_name}.objects")
        if len(session.object_sets) <= before:
            raise SessionError("objects button did not open an object set")
        return session.object_sets[-1]

    def click_control(self, browser: ObjectBrowser, op: str) -> None:
        """§3.2: reset/next/previous on an object-set control panel."""
        index = {"reset": 0, "next": 1, "previous": 2}[op]
        self.app.click(f"{browser.path}.control.{op}.{index}")

    def click_format_button(self, browser: ObjectBrowser,
                            format_name: str) -> None:
        """§3.2: a display-format button on an object panel."""
        self.app.click(browser.format_button_name(format_name))

    def click_reference_button(self, browser: ObjectBrowser,
                               attr_name: str) -> ObjectBrowser:
        """§3.3: a reference button — opens the object / object-set window."""
        self.app.click(browser.reference_button_name(attr_name))
        child = browser.children.get(attr_name)
        if child is None:
            raise SessionError(
                f"reference button {attr_name!r} did not open a window"
            )
        return child

    # -- extensions (paper §5) -----------------------------------------------------------

    def open_projection(self, browser: ObjectBrowser) -> ProjectionPanel:
        """§5.1: click the project button."""
        panel = self._projection_panels.get(browser.path)
        if panel is None:
            panel = ProjectionPanel(browser)
            self._projection_panels[browser.path] = panel
        else:
            self.app.click(browser.project_button_name())
        return panel

    def select_into_browser(self, db: str, class_name: str,
                            condition: str) -> ObjectBrowser:
        """§5.2: condition-box selection, pushed down, browsed like a set."""
        session = self.app.session(db)
        builder = SelectionBuilder(
            session.database, class_name, session.registry,
            privileged=self.app.ctx.privileged,
        )
        builder.set_condition(condition)
        return session.open_object_set(class_name, predicate=builder.build())

    # -- lifecycle -------------------------------------------------------------------------

    def shutdown(self) -> None:
        self.app.shutdown()

    def __enter__(self) -> "UserSession":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
