"""Projection (paper §5.1).

"When a user wants to see a partial view of an object, the user clicks a
'project' button that results in a set of buttons being created, one each
for the displayable attributes of the object.  An ALL button is also
created... OdeView calls the displaylist function of the corresponding
class, uses the list of attributes returned to create the buttons, and
makes a bit vector corresponding to the attributes selected by the user."

The bit vector then travels to the display function inside the
:class:`~repro.dynlink.protocol.DisplayRequest`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ProjectionError
from repro.core.objectbrowser import ObjectBrowser
from repro.windowing.wintypes import at, below, button, panel


class ProjectionPanel:
    """The attribute-button panel the 'project' button pops up."""

    def __init__(self, browser: ObjectBrowser):
        self.browser = browser
        self.displaylist: List[str] = browser.displaylist()
        if not self.displaylist:
            raise ProjectionError(
                f"class {browser.node.class_name!r} has an empty displaylist"
            )
        self.selected: List[str] = []
        self._window_name = f"{browser.path}.projpanel"
        self._build()
        browser.ctx.screen.on_click(
            browser.project_button_name(), lambda _event: self.toggle_visible()
        )

    # -- names ------------------------------------------------------------------

    @property
    def window_name(self) -> str:
        return self._window_name

    def attribute_button_name(self, attr: str) -> str:
        return f"{self._window_name}.attr.{attr}"

    # -- windows ------------------------------------------------------------------

    def _build(self) -> None:
        screen = self.browser.ctx.screen
        children = []
        previous = None
        for attr in self.displaylist:
            name = self.attribute_button_name(attr)
            place = at(0, 0) if previous is None else below(previous)
            children.append(button(name, f"  {attr}", f"proj:{attr}",
                                   placement=place))
            previous = name
        children.append(button(f"{self._window_name}.all", "ALL", "proj-all",
                               placement=below(previous)))
        children.append(button(f"{self._window_name}.apply", "apply",
                               "proj-apply",
                               placement=right_anchor(previous)))
        children.append(button(f"{self._window_name}.clear", "clear",
                               "proj-clear",
                               placement=below(f"{self._window_name}.all")))
        screen.create(panel(self._window_name, tuple(children),
                            title="project"))
        for attr in self.displaylist:
            screen.on_click(
                self.attribute_button_name(attr),
                lambda _event, a=attr: self.toggle_attribute(a),
            )
        screen.on_click(f"{self._window_name}.all",
                        lambda _event: self.select_all())
        screen.on_click(f"{self._window_name}.apply",
                        lambda _event: self.apply())
        screen.on_click(f"{self._window_name}.clear",
                        lambda _event: self.clear())

    def toggle_visible(self) -> None:
        screen = self.browser.ctx.screen
        window = screen.get(self._window_name)
        if window.is_open:
            screen.close(self._window_name)
        else:
            screen.open(self._window_name)

    def _update_labels(self) -> None:
        screen = self.browser.ctx.screen
        for attr in self.displaylist:
            marker = "* " if attr in self.selected else "  "
            screen.set_content(self.attribute_button_name(attr),
                               f"{marker}{attr}")

    # -- selection --------------------------------------------------------------------

    def toggle_attribute(self, attr: str) -> None:
        if attr not in self.displaylist:
            raise ProjectionError(f"{attr!r} is not in the displaylist")
        if attr in self.selected:
            self.selected.remove(attr)
        else:
            self.selected.append(attr)
        self._update_labels()

    def select_all(self) -> None:
        self.selected = list(self.displaylist)
        self._update_labels()

    def apply(self) -> None:
        """Build the bit vector and re-display (paper §5.1)."""
        if not self.selected:
            raise ProjectionError("no attributes selected to project on")
        # keep displaylist order, not click order
        ordered = [attr for attr in self.displaylist if attr in self.selected]
        self.browser.project(ordered)

    def clear(self) -> None:
        self.selected = []
        self._update_labels()
        self.browser.clear_projection()


def right_anchor(name: Optional[str]):
    """Placement right of *name* (panel-local helper)."""
    from repro.windowing.wintypes import right_of

    if name is None:
        return at(0, 0)
    return right_of(name)
