"""Statistics-driven planning for pushed-down selections.

The object manager filters objects during cluster scans (paper §5.2); when
an :class:`~repro.ode.index.AttributeIndex` exists for an attribute used
in a sargable conjunct (``attr op literal``), the planner *may* probe the
index to fetch only candidate OIDs and evaluate the *residual* predicate
on those.  Whether it does is a cost decision, not a reflex: the
:class:`~repro.core.statistics.StatisticsCatalog` estimates how many rows
each candidate probe returns, and the probe is chosen only when its
estimated cost beats the full scan's.

The cost model is deliberately small:

* ``cost(scan)  = cardinality * SCAN_ROW_COST``
* ``cost(probe) = PROBE_BASE_COST + estimated_rows * PROBE_ROW_COST``

A probed row costs more than a scanned row (random OID lookups vs a
sequential cluster sweep) and the probe pays a fixed setup cost, so the
break-even lands near half the cluster — very selective predicates probe,
unselective ones scan, exactly the shape the BENCH_index ablation
measures.

Snapshot correctness: a probe answers *as of the reader's epoch*.  When
the calling thread holds a ``pinned()`` snapshot, the probe passes that
epoch to the index, whose epoch-versioned entries reconstruct the set of
matches visible at the pin — never entries a newer commit added.  Two
situations force a scan regardless of cost, because the index cannot
answer correctly: an open transaction (uncommitted writes are invisible
to the commit-driven index) and a pin older than the index's
``built_epoch`` (pre-build deletes left no entries to version).

Every plan renders an ``EXPLAIN`` text naming the chosen access path,
the estimated rows and costs it was chosen on, and the reader's epoch;
the most recent one is kept on the statistics catalog and surfaced in
the statistics window (and over the wire via OP_EXPLAIN).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

from repro.ode.database import Database
from repro.ode.objectmanager import ObjectBuffer
from repro.ode.oid import Oid
from repro.ode.opp import ast
from repro.ode.opp.predicate import PredicateEvaluator

_EQ = "=="
_RANGE_OPS = ("<", "<=", ">", ">=")

#: Relative row costs (see module docstring).  Tuned only to place the
#: break-even sensibly: probing is ~2x the per-row price of scanning.
SCAN_ROW_COST = 1.0
PROBE_ROW_COST = 2.0
PROBE_BASE_COST = 2.0

#: Bounds keyword sets for each range operator, as the index expects.
_RANGE_BOUNDS = {
    "<": dict(high=None, include_high=False),
    "<=": dict(high=None, include_high=True),
    ">": dict(low=None, include_low=False),
    ">=": dict(low=None, include_low=True),
}


def split_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten a tree of ``&&`` into its conjuncts."""
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = ast.Binary("&&", expr, part)
    return expr


def sargable(conjunct: ast.Expr) -> Optional[Tuple[str, str, Any]]:
    """``(attribute, op, literal)`` if the conjunct is index-usable."""
    if not isinstance(conjunct, ast.Binary):
        return None
    op = conjunct.op
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.Name) and isinstance(right, ast.Literal):
        attribute, literal = left.ident, right.value
    elif isinstance(right, ast.Name) and isinstance(left, ast.Literal):
        attribute, literal = right.ident, left.value
        # mirror the comparison: 3 < x  ==  x > 3
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    else:
        return None
    if op not in (_EQ,) + _RANGE_OPS:
        return None
    if literal is None:
        return None
    return attribute, op, literal


def _probe_bounds(op: str, literal: Any) -> dict:
    bounds = dict(_RANGE_BOUNDS[op])
    for side in ("low", "high"):
        if side in bounds:
            bounds[side] = literal
    return bounds


@dataclass
class QueryPlan:
    """How one selection will be executed, and why."""

    class_name: str
    access: str                         # "index-eq" | "index-range" | "scan"
    index_attribute: Optional[str]
    candidates: Optional[List[int]]     # OID numbers from the probe
    residual: Optional[ast.Expr]        # still checked per object
    #: The whole predicate.  The index probe answers as of the reader's
    #: epoch, but raw store mutations can still bypass the commit path —
    #: so every candidate is re-checked against the full predicate, not
    #: just the residual, and a candidate whose snapshot-visible value no
    #: longer satisfies the probed conjunct is filtered out.
    expr: Optional[ast.Expr] = None
    #: Cost-model inputs and outputs, for EXPLAIN and the regression
    #: battery.  ``estimated_rows`` is the statistics estimate the
    #: decision was made on (not the actual probe size).
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    scan_cost: float = 0.0
    cardinality: int = 0
    #: The snapshot epoch the probe answered at (None = head).
    epoch: Optional[int] = None
    #: One phrase of why this access path won.
    reason: str = ""

    def explain(self) -> str:
        """Human-readable plan, in the EXPLAIN tradition."""
        from repro.ode.opp.printer import expr_to_source

        parts = [f"select from cluster {self.class_name!r}"]
        if self.access == "scan":
            parts.append("  access: full cluster scan")
            parts.append(
                f"  estimated rows: {self.cardinality} of "
                f"{self.cardinality} (cost {self.scan_cost:.1f})")
        else:
            parts.append(
                f"  access: {self.access} probe on "
                f"{self.class_name}.{self.index_attribute} "
                f"({len(self.candidates or [])} candidates)")
            parts.append(
                f"  estimated rows: {self.estimated_rows:.1f} of "
                f"{self.cardinality} (cost {self.estimated_cost:.1f} "
                f"vs scan {self.scan_cost:.1f})")
        if self.reason:
            parts.append(f"  reason: {self.reason}")
        if self.residual is not None:
            parts.append(f"  filter: {expr_to_source(self.residual)}")
        parts.append("  epoch: head" if self.epoch is None
                     else f"  epoch: pinned @ {self.epoch}")
        return "\n".join(parts)


class SelectionPlanner:
    """Plans and executes validated selection expressions."""

    def __init__(self, database: Database, privileged: bool = False):
        self.database = database
        self.privileged = privileged
        self._evaluator = PredicateEvaluator(database.objects,
                                             privileged=privileged)

    def plan(self, class_name: str, expr: ast.Expr,
             force: Optional[str] = None) -> QueryPlan:
        """Choose an access path for ``select class_name where expr``.

        ``force`` overrides the cost decision: ``"scan"`` never probes,
        ``"index"`` probes the best usable index even when the model
        says scan (still scans when no index can answer at all) — the
        equivalence battery uses both to pit every path against each
        other.
        """
        objects = self.database.objects
        # A RemoteObjectManager has no local statistics, store, or
        # ambient pin — the server plans for it (select_pushdown); a
        # planner built against one anyway degrades to head-epoch
        # scans with a throwaway catalog.
        stats = getattr(objects, "statistics", None)
        if stats is None:
            from repro.core.statistics import StatisticsCatalog

            stats = StatisticsCatalog(objects)
        ambient = getattr(objects, "ambient_snapshot", None)
        snapshot = ambient() if ambient is not None else None
        epoch = snapshot.epoch if snapshot is not None else None
        cardinality = stats.cardinality(class_name)
        scan_cost = cardinality * SCAN_ROW_COST

        def scan(reason: str) -> QueryPlan:
            plan = QueryPlan(
                class_name=class_name, access="scan", index_attribute=None,
                candidates=None, residual=expr, expr=expr,
                estimated_rows=float(cardinality), estimated_cost=scan_cost,
                scan_cost=scan_cost, cardinality=cardinality, epoch=epoch,
                reason=reason)
            stats.last_explain = plan.explain()
            return plan

        if force == "scan":
            return scan("forced scan")
        if getattr(getattr(objects, "store", None), "in_transaction", False):
            # The commit-driven index cannot see this transaction's
            # uncommitted overlay; only the scan path reads through it.
            return scan("open transaction: uncommitted writes "
                        "are invisible to indexes")

        conjuncts = split_conjuncts(expr)
        # Every usable (indexed, sargable, epoch-answerable) conjunct,
        # costed: (estimated probe cost, rank, position, probe, index).
        choices: List[Tuple[float, int, int, Tuple[str, str, Any], Any]] = []
        stale_index = False
        for position, conjunct in enumerate(conjuncts):
            probe = sargable(conjunct)
            if probe is None:
                continue
            attribute, op, literal = probe
            index = objects.indexes.get(class_name, attribute)
            if index is None:
                continue
            if epoch is not None and epoch < index.built_epoch:
                # The build only saw live state: this pin predates it,
                # so the index cannot reconstruct the pin's matches.
                stale_index = True
                continue
            if op == _EQ:
                est = stats.estimate_equal(class_name, attribute, literal)
                rank = 0
            else:
                bounds = _probe_bounds(op, literal)
                est = stats.estimate_range(
                    class_name, attribute,
                    low=bounds.get("low"), high=bounds.get("high"))
                rank = 1
            cost = PROBE_BASE_COST + est * PROBE_ROW_COST
            choices.append((cost, rank, position, probe, index))

        if not choices:
            if stale_index:
                return scan("snapshot predates index build")
            return scan("no usable index")
        choices.sort(key=lambda c: (c[0], c[1], c[2]))
        cost, _rank, position, (attribute, op, literal), index = choices[0]
        if force != "index" and cost >= scan_cost:
            return scan(f"scan is cheaper (probe cost {cost:.1f} "
                        f">= scan cost {scan_cost:.1f})")

        if op == _EQ:
            numbers = index.equal(literal, epoch=epoch)
            access = "index-eq"
            est = stats.estimate_equal(class_name, attribute, literal)
        else:
            bounds = _probe_bounds(op, literal)
            numbers = index.range(epoch=epoch, **bounds)
            access = "index-range"
            est = stats.estimate_range(class_name, attribute,
                                       low=bounds.get("low"),
                                       high=bounds.get("high"))
        residual = join_conjuncts(
            [c for i, c in enumerate(conjuncts) if i != position])
        plan = QueryPlan(
            class_name=class_name, access=access, index_attribute=attribute,
            candidates=numbers, residual=residual, expr=expr,
            estimated_rows=est, estimated_cost=cost, scan_cost=scan_cost,
            cardinality=cardinality, epoch=epoch,
            reason=("forced index probe" if force == "index"
                    else f"probe cost {cost:.1f} < scan cost "
                         f"{scan_cost:.1f}"))
        stats.last_explain = plan.explain()
        return plan

    def execute(self, plan: QueryPlan) -> Iterator[ObjectBuffer]:
        objects = self.database.objects
        if plan.access == "scan":
            predicate = None
            if plan.residual is not None:
                predicate = self._evaluator.compile(plan.residual)
            yield from objects.select(plan.class_name, predicate)
            return
        database_name = objects.database
        # Full-predicate recheck, not residual-only: the candidates came
        # from the index at the plan's epoch, but the buffers are read at
        # the caller's current view, and raw store mutations can bypass
        # the commit-driven maintenance entirely.
        check = plan.expr if plan.expr is not None else plan.residual
        for number in plan.candidates or ():
            oid = Oid(database_name, plan.class_name, number)
            if not objects.exists(oid):
                continue  # index may lag a raw store mutation
            buffer = objects.get_buffer(oid)
            if check is None or self._evaluator.matches(check, buffer):
                yield buffer

    def select(self, class_name: str, expr: ast.Expr,
               force: Optional[str] = None) -> List[ObjectBuffer]:
        """Plan and execute under ONE pinned snapshot.

        The pin makes the probe epoch and the buffer reads agree: a
        commit that lands between planning and execution changes
        neither the candidate set nor the rechecked values.  An ambient
        pin already in effect is reused (pinning afresh would jump
        forward to head — the opposite of what the caller pinned for).
        """
        objects = self.database.objects
        ambient = getattr(objects, "ambient_snapshot", None)
        if ambient is not None and ambient() is not None:
            return list(self.execute(self.plan(class_name, expr,
                                               force=force)))
        with objects.pinned():
            return list(self.execute(self.plan(class_name, expr,
                                               force=force)))
