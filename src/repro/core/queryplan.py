"""Index-aware planning for pushed-down selections.

The object manager filters objects during cluster scans (paper §5.2); when
an :class:`~repro.ode.index.AttributeIndex` exists for an attribute used
in a sargable conjunct (``attr op literal``), the planner probes the index
to fetch only candidate OIDs and evaluates the *residual* predicate on
those.  The ABL-INDEX benchmark measures the scan-vs-probe shape.

The planner is deliberately simple — one index probe per query, best
conjunct chosen by kind (equality beats range beats nothing) — which is
all a browsing workload needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.ode.database import Database
from repro.ode.objectmanager import ObjectBuffer
from repro.ode.oid import Oid
from repro.ode.opp import ast
from repro.ode.opp.predicate import PredicateEvaluator

_EQ = "=="
_RANGE_OPS = ("<", "<=", ">", ">=")


def split_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten a tree of ``&&`` into its conjuncts."""
    if isinstance(expr, ast.Binary) and expr.op == "&&":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = ast.Binary("&&", expr, part)
    return expr


def sargable(conjunct: ast.Expr) -> Optional[Tuple[str, str, Any]]:
    """``(attribute, op, literal)`` if the conjunct is index-usable."""
    if not isinstance(conjunct, ast.Binary):
        return None
    op = conjunct.op
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.Name) and isinstance(right, ast.Literal):
        attribute, literal = left.ident, right.value
    elif isinstance(right, ast.Name) and isinstance(left, ast.Literal):
        attribute, literal = right.ident, left.value
        # mirror the comparison: 3 < x  ==  x > 3
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    else:
        return None
    if op not in (_EQ,) + _RANGE_OPS:
        return None
    if literal is None:
        return None
    return attribute, op, literal


@dataclass
class QueryPlan:
    """How one selection will be executed."""

    class_name: str
    access: str                         # "index-eq" | "index-range" | "scan"
    index_attribute: Optional[str]
    candidates: Optional[List[int]]     # OID numbers from the probe
    residual: Optional[ast.Expr]        # still checked per object
    #: The whole predicate.  The index probe answers against the *live*
    #: index, but execution may read through a pinned snapshot (an older
    #: epoch) — so every candidate is re-checked against the full
    #: predicate, not just the residual, and an object whose
    #: snapshot-visible value no longer satisfies the probed conjunct is
    #: filtered out instead of surfacing post-snapshot state.
    expr: Optional[ast.Expr] = None

    def explain(self) -> str:
        """Human-readable plan, in the EXPLAIN tradition."""
        from repro.ode.opp.printer import expr_to_source

        parts = [f"select from cluster {self.class_name!r}"]
        if self.access == "scan":
            parts.append("  access: full cluster scan")
        else:
            parts.append(
                f"  access: {self.access} probe on "
                f"{self.class_name}.{self.index_attribute} "
                f"({len(self.candidates or [])} candidates)")
        if self.residual is not None:
            parts.append(f"  filter: {expr_to_source(self.residual)}")
        return "\n".join(parts)


class SelectionPlanner:
    """Plans and executes validated selection expressions."""

    def __init__(self, database: Database, privileged: bool = False):
        self.database = database
        self.privileged = privileged
        self._evaluator = PredicateEvaluator(database.objects,
                                             privileged=privileged)

    def plan(self, class_name: str, expr: ast.Expr) -> QueryPlan:
        indexes = self.database.objects.indexes
        conjuncts = split_conjuncts(expr)
        best: Optional[Tuple[int, int, Tuple[str, str, Any]]] = None
        for position, conjunct in enumerate(conjuncts):
            probe = sargable(conjunct)
            if probe is None:
                continue
            attribute, op, _literal = probe
            if indexes.get(class_name, attribute) is None:
                continue
            rank = 0 if op == _EQ else 1  # prefer equality probes
            if best is None or rank < best[0]:
                best = (rank, position, probe)
        if best is None:
            return QueryPlan(class_name=class_name, access="scan",
                             index_attribute=None, candidates=None,
                             residual=expr, expr=expr)
        _rank, position, (attribute, op, literal) = best
        index = indexes.get(class_name, attribute)
        if op == _EQ:
            numbers = index.equal(literal)
            access = "index-eq"
        else:
            bounds = {
                "<": dict(high=literal, include_high=False),
                "<=": dict(high=literal, include_high=True),
                ">": dict(low=literal, include_low=False),
                ">=": dict(low=literal, include_low=True),
            }[op]
            numbers = index.range(**bounds)
            access = "index-range"
        residual = join_conjuncts(
            [c for i, c in enumerate(conjuncts) if i != position])
        return QueryPlan(class_name=class_name, access=access,
                         index_attribute=attribute, candidates=numbers,
                         residual=residual, expr=expr)

    def execute(self, plan: QueryPlan) -> Iterator[ObjectBuffer]:
        objects = self.database.objects
        if plan.access == "scan":
            predicate = None
            if plan.residual is not None:
                predicate = self._evaluator.compile(plan.residual)
            yield from objects.select(plan.class_name, predicate)
            return
        database_name = objects.database
        # Full-predicate recheck, not residual-only: the candidates came
        # from the live index, but the buffers are read at the caller's
        # (possibly pinned) epoch, and the two may disagree about the
        # probed attribute under concurrent commits.
        check = plan.expr if plan.expr is not None else plan.residual
        for number in plan.candidates or ():
            oid = Oid(database_name, plan.class_name, number)
            if not objects.exists(oid):
                continue  # index may lag a raw store mutation
            buffer = objects.get_buffer(oid)
            if check is None or self._evaluator.matches(check, buffer):
                yield buffer

    def select(self, class_name: str, expr: ast.Expr) -> List[ObjectBuffer]:
        return list(self.execute(self.plan(class_name, expr)))
