"""Object browsing: the object-set window and the object window.

Paper §3.2/§3.3: the *object set* window has a control panel (``reset`` /
``next`` / ``previous``) and an object panel with "buttons to view the
object" — one per display format the class offers — plus buttons for every
embedded reference (§3.3, Figures 7 and 8).  A single referenced object
opens an *object* window: the same object panel without a control panel.

Display state memory (§3.2): "OdeView remembers the display state of a
cluster and will display other objects in the cluster in the same display
state" — remembered here per (database, class) and applied when a new
browser over that cluster is created.

Display functions run inside a dedicated object-interactor process, so "if
there are bugs in this code, then only the corresponding object-interactor
process will be affected but not the whole OdeView" (§4.6) — a crash marks
this browser crashed and leaves everything else alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OdeViewError, ProcessCrashedError
from repro.core import navigation
from repro.core.navigation import Node, SetNode
from repro.core.sync import SyncReport, sequence
from repro.dynlink.protocol import BitVector, DisplayRequest
from repro.dynlink.registry import DisplayRegistry
from repro.ode.database import Database
from repro.procmodel.interactors import ObjectInteractor
from repro.procmodel.manager import ProcessManager
from repro.windowing.screen import Screen
from repro.windowing.wintypes import (
    WindowSpec,
    below,
    button,
    panel,
    right_of,
    text_window,
)


class DisplayStateMemory:
    """Remembered open display formats per (database, class) cluster."""

    def __init__(self) -> None:
        self._states: Dict[Tuple[str, str], List[str]] = {}

    def formats_for(self, database: str, class_name: str) -> List[str]:
        return list(self._states.get((database, class_name), ()))

    def remember(self, database: str, class_name: str,
                 formats: List[str]) -> None:
        self._states[(database, class_name)] = list(formats)


@dataclass
class UiContext:
    """Shared front-end context every browser needs."""

    screen: Screen
    processes: ProcessManager
    display_state: DisplayStateMemory = field(default_factory=DisplayStateMemory)
    privileged: bool = False


class ObjectBrowser:
    """Windows + behaviour for one navigation node."""

    def __init__(self, ctx: UiContext, database: Database, node: Node,
                 registry: Optional[DisplayRegistry] = None):
        self.ctx = ctx
        self.database = database
        self.node = node
        self.registry = registry or DisplayRegistry(database)
        self.crashed = False
        self.crash_reason = ""
        self.bitvec: Optional[BitVector] = None
        self.open_formats: List[str] = []
        self._format_windows: Dict[str, List[str]] = {}
        self.children: Dict[str, "ObjectBrowser"] = {}
        self._interactor_name = f"oi.{node.path}"
        self.ctx.processes.spawn(
            ObjectInteractor(
                self._interactor_name, database, node.class_name, self.registry
            )
        )
        self.formats = self._safe_formats()
        self.reference_attrs = navigation.reference_attributes(
            database.objects, node.class_name
        )
        self._build_windows()
        node.on_refresh.append(self._on_node_refresh)
        # Apply the cluster's remembered display state (paper §3.2).
        for format_name in ctx.display_state.formats_for(
                database.name, node.class_name):
            if format_name in self.formats:
                self.toggle_format(format_name)
        self._update_status()

    # -- names -------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self.node.path

    @property
    def is_set(self) -> bool:
        return isinstance(self.node, SetNode)

    def panel_name(self) -> str:
        return f"{self.path}.panel"

    def control_name(self) -> str:
        return f"{self.path}.control"

    def status_name(self) -> str:
        return f"{self.path}.status"

    def format_button_name(self, format_name: str) -> str:
        return f"{self.path}.fmt.{format_name}"

    def reference_button_name(self, attr_name: str) -> str:
        return f"{self.path}.ref.{attr_name}"

    def project_button_name(self) -> str:
        return f"{self.path}.projectbtn"

    def versions_button_name(self) -> str:
        return f"{self.path}.versionsbtn"

    def versions_window_name(self) -> str:
        return f"{self.path}.versions"

    # -- window construction ----------------------------------------------------------

    def _build_windows(self) -> None:
        screen = self.ctx.screen
        children: List[WindowSpec] = [
            text_window(self.status_name(), "(no current object)", width=44)
        ]
        anchor = self.status_name()
        previous = None
        first_format = None
        for format_name in self.formats:
            name = self.format_button_name(format_name)
            place = below(anchor) if previous is None else right_of(previous)
            children.append(button(name, format_name, f"format:{format_name}",
                                   placement=place))
            if first_format is None:
                first_format = name
            previous = name
        previous = None
        for attr_name in self.reference_attrs:
            name = self.reference_button_name(attr_name)
            if previous is None:
                place = below(first_format) if first_format else below(anchor)
            else:
                place = right_of(previous)
            children.append(button(name, attr_name, f"ref:{attr_name}",
                                   placement=place))
            previous = name
        project_anchor = previous or first_format or anchor
        children.append(
            button(self.project_button_name(), "project", "project",
                   placement=below(project_anchor))
        )
        self.versioned = self.database.schema.get_class(
            self.node.class_name).versioned
        if self.versioned:
            children.append(
                button(self.versions_button_name(), "versions", "versions",
                       placement=right_of(self.project_button_name()))
            )
        title = f"{self.node.class_name}"
        if self.is_set:
            title += " objects" if self.node.parent is None else " set"
        screen.create(panel(self.panel_name(), tuple(children), title=title))
        for format_name in self.formats:
            screen.on_click(
                self.format_button_name(format_name),
                lambda _event, f=format_name: self.toggle_format(f),
            )
        for attr_name in self.reference_attrs:
            screen.on_click(
                self.reference_button_name(attr_name),
                lambda _event, a=attr_name: self.open_reference(a),
            )
        if self.versioned:
            screen.on_click(
                self.versions_button_name(),
                lambda _event: self.show_versions(),
            )
        if self.is_set:
            from repro.windowing.widgets import control_panel

            screen.create(control_panel(self.path))
            for op, index in (("reset", 0), ("next", 1), ("previous", 2)):
                screen.on_click(
                    f"{self.path}.control.{op}.{index}",
                    lambda _event, o=op: self.sequence(o),
                )

    # -- interactor plumbing -------------------------------------------------------------

    def _safe_formats(self) -> Tuple[str, ...]:
        try:
            return tuple(
                self.ctx.processes.call(self._interactor_name, "formats")
            )
        except ProcessCrashedError as exc:
            self._mark_crashed(str(exc))
            return ("text",)

    def _call_display(self, format_name: str):
        request = DisplayRequest(
            format_name=format_name,
            bitvec=self.bitvec,
            privileged=self.ctx.privileged,
            window_prefix=f"{self.path}.{format_name}",
        )
        return self.ctx.processes.call(
            self._interactor_name, "display",
            oid=str(self.node.current), request=request,
        )

    def _mark_crashed(self, reason: str) -> None:
        self.crashed = True
        self.crash_reason = reason
        if self.ctx.screen.has(self.status_name()):
            self.ctx.screen.set_content(
                self.status_name(), f"** object-interactor crashed **"
            )

    def restart(self) -> None:
        """Respawn the object-interactor after a display-function fix."""
        self.ctx.processes.restart(
            self._interactor_name,
            lambda: ObjectInteractor(
                self._interactor_name, self.database,
                self.node.class_name, self.registry,
            ),
        )
        self.crashed = False
        self.crash_reason = ""
        self.registry.loader.invalidate(self.node.class_name)
        self._update_status()
        self._refresh_displays()

    # -- display state -----------------------------------------------------------------

    def toggle_format(self, format_name: str) -> None:
        """Click a display-format button: open or close that display."""
        if format_name not in self.formats:
            raise OdeViewError(
                f"class {self.node.class_name!r} has no display format "
                f"{format_name!r}"
            )
        screen = self.ctx.screen
        if format_name in self.open_formats:
            self.open_formats.remove(format_name)
            for window_name in self._format_windows.get(format_name, ()):
                if screen.has(window_name):
                    screen.close(window_name)
        else:
            self.open_formats.append(format_name)
            self._refresh_format(format_name)
            for window_name in self._format_windows.get(format_name, ()):
                screen.open(window_name)
        self.ctx.display_state.remember(
            self.database.name, self.node.class_name, self.open_formats
        )

    # -- refresh ------------------------------------------------------------------------

    def _on_node_refresh(self, _node: Node) -> None:
        if self.crashed:
            return
        self._update_status()
        self._refresh_displays()
        if self.ctx.screen.has(self.versions_window_name()):
            self.ctx.screen.set_content(
                self.versions_window_name(), self.version_history_text())

    def _update_status(self) -> None:
        screen = self.ctx.screen
        if not screen.has(self.status_name()):
            return
        if self.crashed:
            return
        current = self.node.current
        if current is None:
            text = "(no current object)"
            if self.is_set:
                text += f"  [{self.node.member_count()} in set]"
        else:
            text = f"object: {current}"
            if self.is_set:
                index = self.node.members().index(current) + 1
                text += f"  [{index}/{self.node.member_count()}]"
        screen.set_content(self.status_name(), text)

    def _refresh_displays(self) -> None:
        """Refresh every format that has windows — open *or closed* (§4.4)."""
        formats = list(self.open_formats)
        for format_name in self._format_windows:
            if format_name not in formats:
                formats.append(format_name)
        for format_name in formats:
            self._refresh_format(format_name)

    def _refresh_format(self, format_name: str) -> None:
        screen = self.ctx.screen
        if self.node.current is None:
            for window_name in self._format_windows.get(format_name, ()):
                if screen.has(window_name):
                    window = screen.get(window_name)
                    if isinstance(window.content, str):
                        window.set_content("(no current object)")
            return
        try:
            resources = self._call_display(format_name)
        except ProcessCrashedError as exc:
            self._mark_crashed(str(exc))
            return
        names: List[str] = []
        for spec in resources.windows:
            names.append(spec.name)
            if screen.has(spec.name):
                screen.set_content(spec.name, spec.content)
            else:
                window = screen.create(spec)
                if format_name not in self.open_formats:
                    window.is_open = False
        # windows the new resources no longer mention disappear
        for window_name in self._format_windows.get(format_name, ()):
            if window_name not in names and screen.has(window_name):
                screen.destroy(window_name)
        self._format_windows[format_name] = names

    # -- sequencing (control panel) --------------------------------------------------------

    def sequence(self, op: str) -> SyncReport:
        if not self.is_set:
            raise OdeViewError(
                f"object window {self.path!r} has no control panel"
            )
        return sequence(self.node, op)

    def reset(self) -> SyncReport:
        return self.sequence("reset")

    def next(self) -> SyncReport:
        return self.sequence("next")

    def previous(self) -> SyncReport:
        return self.sequence("previous")

    # -- version history (O++ versioned objects) ------------------------------------------

    def version_history_text(self) -> str:
        """The version window's content for the current object."""
        if self.node.current is None:
            return "(no current object)"
        history = self.database.objects.versions.history(self.node.current)
        if not history:
            return "(no previous versions)"
        lines = []
        for record in history:
            scalars = ", ".join(
                f"{name}={value!r}" for name, value in record.state.items()
                if isinstance(value, (int, float, str, bool))
            )
            lines.append(f"v{record.sequence}: {scalars}")
        return "\n".join(lines)

    def show_versions(self) -> None:
        """Click the versions button: open/refresh the history window."""
        if not self.versioned:
            raise OdeViewError(
                f"class {self.node.class_name!r} is not versioned")
        screen = self.ctx.screen
        name = self.versions_window_name()
        if screen.has(name):
            screen.set_content(name, self.version_history_text())
            screen.open(name)
        else:
            screen.create(text_window(
                name, self.version_history_text(),
                title=f"{self.node.class_name} versions",
                scrollable=True, height=6, width=60,
            ))

    # -- navigation (reference buttons, §3.3) ------------------------------------------------

    def open_reference(self, attr_name: str) -> "ObjectBrowser":
        """Click a reference button: open the object/object-set window."""
        if attr_name in self.children:
            return self.children[attr_name]
        if self.node.current is None:
            raise OdeViewError(
                f"no current object in {self.path!r}; sequence first"
            )
        child_node = self.node.child(attr_name)
        child = ObjectBrowser(self.ctx, self.database, child_node, self.registry)
        self.children[attr_name] = child
        return child

    # -- projection (paper §5.1) ----------------------------------------------------------------

    def displaylist(self) -> List[str]:
        return self.registry.displaylist(self.node.class_name)

    def project(self, selected: List[str]) -> None:
        """Project onto *selected* attributes (must be in the displaylist)."""
        displaylist = self.displaylist()
        self.bitvec = BitVector.from_selection(displaylist, selected)
        self._refresh_displays()

    def project_all(self) -> None:
        """The ALL button: project on every displaylist attribute."""
        self.bitvec = BitVector.all_set(len(self.displaylist()))
        self._refresh_displays()

    def clear_projection(self) -> None:
        self.bitvec = None
        self._refresh_displays()

    # -- teardown -------------------------------------------------------------------------------

    def destroy(self) -> None:
        """Close this browser, its windows, its children, its interactor."""
        for child in list(self.children.values()):
            child.destroy()
        self.children.clear()
        screen = self.ctx.screen
        for names in self._format_windows.values():
            for window_name in names:
                if screen.has(window_name):
                    screen.destroy(window_name)
        self._format_windows.clear()
        for window_name in (self.panel_name(), self.control_name(),
                            self.versions_window_name()):
            if screen.has(window_name):
                screen.destroy(window_name)
        if self.ctx.processes.has(self._interactor_name):
            self.ctx.processes.remove(self._interactor_name)
        if self._on_node_refresh in self.node.on_refresh:
            self.node.on_refresh.remove(self._on_node_refresh)
