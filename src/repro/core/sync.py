"""Synchronized browsing (paper §3.4, §4.4).

"Once the user has displayed a network of objects and the user applies a
sequencing operation to any object in this network, the sequencing
operation is automatically propagated over the network."

The propagation machinery itself lives in the navigation tree
(:meth:`Node._set_current` recursively pulls every child from its parent);
this module adds the measurable wrapper: apply a sequencing operation at a
node and report exactly which part of the subtree was refreshed — including
nodes whose windows are closed, which the paper calls out explicitly
("the refreshing is done irrespective of whether window is open or
closed").
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import OdeViewError
from repro.core.navigation import Node, SetNode
from repro.obs import get_registry
from repro.ode.oid import Oid

SEQUENCING_OPS = ("next", "previous", "reset")


@dataclass(frozen=True)
class SyncReport:
    """What one sequencing operation touched."""

    op: str
    at: str                           # path of the node the user clicked
    result: Optional[Oid]             # new current object of that node
    refreshed_paths: tuple            # every node refreshed, tree order
    refresh_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def nodes_refreshed(self) -> int:
        return len(self.refreshed_paths)


def subtree_refresh_counts(node: Node) -> Dict[str, int]:
    return {descendant.path: descendant.refreshes for descendant in node.walk()}


def sequence(node: Node, op: str) -> SyncReport:
    """Apply a control-panel operation at *node* and propagate (paper §4.4).

    The subtree rooted at *node* is refreshed recursively; ancestors are
    untouched (the paper propagates along embedded references, i.e. down
    the window tree).
    """
    if op not in SEQUENCING_OPS:
        raise OdeViewError(f"unknown sequencing operation {op!r}")
    if not isinstance(node, SetNode):
        raise OdeViewError(
            f"node {node.path!r} has no control panel (not an object set)"
        )
    registry = get_registry()
    registry.counter("sync.operations").inc()
    before = subtree_refresh_counts(node)
    # Pin one snapshot for the whole propagation: every buffer fetched
    # and every cluster walked while the subtree refreshes comes from a
    # single commit epoch, so the refreshed network renders one
    # consistent database state even under concurrent writers.  Remote
    # managers pin per-operation on the server instead (their pinned()
    # is a no-op).
    pin = getattr(node.manager, "pinned", None)
    context = pin() if callable(pin) else nullcontext()
    with registry.histogram("sync.propagate_seconds").time(), context:
        if op == "next":
            result = node.next()
        elif op == "previous":
            result = node.previous()
        else:
            node.reset()
            result = None
    after = subtree_refresh_counts(node)
    refreshed = tuple(
        path for path in after if after[path] > before.get(path, 0)
    )
    return SyncReport(
        op=op,
        at=node.path,
        result=result,
        refreshed_paths=refreshed,
        refresh_counts=after,
    )


def network_paths(root: Node) -> List[str]:
    """Every node path in the displayed network, tree order."""
    return [descendant.path for descendant in root.walk()]
