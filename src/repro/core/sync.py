"""Synchronized browsing (paper §3.4, §4.4).

"Once the user has displayed a network of objects and the user applies a
sequencing operation to any object in this network, the sequencing
operation is automatically propagated over the network."

The propagation machinery itself lives in the navigation tree
(:meth:`Node._set_current` recursively pulls every child from its parent);
this module adds the measurable wrapper: apply a sequencing operation at a
node and report exactly which part of the subtree was refreshed — including
nodes whose windows are closed, which the paper calls out explicitly
("the refreshing is done irrespective of whether window is open or
closed").
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OdeViewError
from repro.core.navigation import Node, SetNode
from repro.obs import get_registry
from repro.ode.oid import Oid
from repro.windowing.events import DataChanged, EventLoop

SEQUENCING_OPS = ("next", "previous", "reset")


@dataclass(frozen=True)
class SyncReport:
    """What one sequencing operation touched."""

    op: str
    at: str                           # path of the node the user clicked
    result: Optional[Oid]             # new current object of that node
    refreshed_paths: tuple            # every node refreshed, tree order
    refresh_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def nodes_refreshed(self) -> int:
        return len(self.refreshed_paths)


def subtree_refresh_counts(node: Node) -> Dict[str, int]:
    return {descendant.path: descendant.refreshes for descendant in node.walk()}


def sequence(node: Node, op: str) -> SyncReport:
    """Apply a control-panel operation at *node* and propagate (paper §4.4).

    The subtree rooted at *node* is refreshed recursively; ancestors are
    untouched (the paper propagates along embedded references, i.e. down
    the window tree).
    """
    if op not in SEQUENCING_OPS:
        raise OdeViewError(f"unknown sequencing operation {op!r}")
    if not isinstance(node, SetNode):
        raise OdeViewError(
            f"node {node.path!r} has no control panel (not an object set)"
        )
    registry = get_registry()
    registry.counter("sync.operations").inc()
    before = subtree_refresh_counts(node)
    # Pin one snapshot for the whole propagation: every buffer fetched
    # and every cluster walked while the subtree refreshes comes from a
    # single commit epoch, so the refreshed network renders one
    # consistent database state even under concurrent writers.  Remote
    # managers pin per-operation on the server instead (their pinned()
    # is a no-op).
    pin = getattr(node.manager, "pinned", None)
    context = pin() if callable(pin) else nullcontext()
    with registry.histogram("sync.propagate_seconds").time(), context:
        if op == "next":
            result = node.next()
        elif op == "previous":
            result = node.previous()
        else:
            node.reset()
            result = None
    after = subtree_refresh_counts(node)
    refreshed = tuple(
        path for path in after if after[path] > before.get(path, 0)
    )
    return SyncReport(
        op=op,
        at=node.path,
        result=result,
        refreshed_paths=refreshed,
        refresh_counts=after,
    )


def network_paths(root: Node) -> List[str]:
    """Every node path in the displayed network, tree order."""
    return [descendant.path for descendant in root.walk()]


class ReactiveBrowse:
    """A displayed network that refreshes on server push instead of polling.

    Bridges a CDC subscription (:meth:`RemoteDatabase.watch`) to a
    navigation subtree across the thread boundary: change events arrive
    on the client's network thread, which may not touch the tree — it
    only queues the event here and posts a
    :class:`~repro.windowing.events.DataChanged` to the event loop.  The
    UI thread's handler then calls :meth:`apply_pending`, which refreshes
    exactly the nodes whose clusters the accumulated deltas named (every
    node, after a resync or reconnect).  The buffer cache has already
    been precisely invalidated by the time the event lands, so the
    refresh re-fetches only objects that actually changed.
    """

    def __init__(self, root: Node, database,
                 event_loop: Optional[EventLoop] = None,
                 window: str = "", clusters: Optional[List[str]] = None):
        watch = getattr(database, "watch", None)
        if not callable(watch):
            raise OdeViewError(
                "reactive browsing needs a remote database (CDC push); "
                "a local database commits in-process and refreshes inline")
        self.root = root
        self.window = window or root.path
        self._loop = event_loop
        self._lock = threading.Lock()
        self._queued: List = []          # network thread -> UI thread
        registry = get_registry()
        self._m_events = registry.counter("sync.reactive.events")
        self._m_applied = registry.counter("sync.reactive.applied")
        self._m_refreshed = registry.counter("sync.reactive.nodes_refreshed")
        self._m_lost = registry.counter("sync.reactive.lost")
        self.subscription = watch(clusters=clusters,
                                  on_refresh=self._on_event)

    # -- network thread ----------------------------------------------------------

    def _on_event(self, event) -> None:
        """Queue the event and wake the UI; never touches the tree."""
        self._m_events.inc()
        if event.lost:
            self._m_lost.inc()
        with self._lock:
            self._queued.append(event)
        if self._loop is not None:
            self._loop.post(DataChanged(
                window=self.window, epoch=event.epoch,
                clusters=tuple(event.changes),
                resync=bool(event.resync or event.lost)))

    # -- UI thread ---------------------------------------------------------------

    def pending(self) -> int:
        with self._lock:
            return len(self._queued)

    def apply_pending(self) -> Tuple[str, ...]:
        """Refresh the subtree for every queued event; returns the paths
        refreshed.  Safe to call with nothing queued (no-op)."""
        with self._lock:
            events, self._queued = self._queued, []
        if not events:
            return ()
        wholesale = any(e.resync or e.lost for e in events)
        touched = set()
        for event in events:
            touched.update(event.changes)
        before = subtree_refresh_counts(self.root)
        self._refresh(self.root, touched, wholesale)
        after = subtree_refresh_counts(self.root)
        refreshed = tuple(
            path for path in after if after[path] > before.get(path, 0))
        self._m_applied.inc()
        self._m_refreshed.inc(len(refreshed))
        return refreshed

    def _refresh(self, node: Node, touched: set, wholesale: bool) -> None:
        """Refresh *node* if its cluster was touched, else recurse.

        Refreshing a node re-pulls its whole subtree (``_set_current``
        propagates), so recursion stops at the shallowest touched node.
        """
        if wholesale or node.class_name in touched:
            if isinstance(node, SetNode):
                current = node.current
                node.reload_members()
                members = node.members()
                if current is not None and current in members:
                    # The display keeps its place; members and buffers
                    # around it re-render from fresh data.
                    node._index = members.index(current)
                    node._set_current(current)
                else:
                    # Our object vanished (or position is stale): land on
                    # the first member, like a parent-driven pull.
                    node._index = 0 if members else -1
                    node._set_current(members[0] if members else None)
            elif node.parent is not None:
                node.pull_from_parent()
            else:
                node._set_current(node.current)
            return
        for child in node.children.values():
            self._refresh(child, touched, wholesale)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.subscription.alive

    def close(self) -> None:
        self.subscription.close()

    def __enter__(self) -> "ReactiveBrowse":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
