"""The OdeView application.

"Upon entering OdeView, the user is presented with a scrollable 'database'
window containing the names and iconified images of the current Ode
databases" (paper §3.1, Figure 1).  Clicking an icon opens the database:
a db-interactor process is spawned and the schema window appears (§4.6).
"Note that we can be examining several databases and their schemas
simultaneously" (§3.4) — sessions are independent and concurrently open.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import OdeViewError
from repro.core.navigation import SetNode
from repro.core.objectbrowser import DisplayStateMemory, ObjectBrowser, UiContext
from repro.core.schemabrowser import SchemaBrowser
from repro.dynlink.registry import DisplayRegistry
from repro.ode.database import Database, ICON_FILE, discover_databases
from repro.procmodel.interactors import DbInteractor
from repro.procmodel.manager import ProcessManager
from repro.windowing.screen import Screen
from repro.windowing.textbackend import TextBackend
from repro.windowing.wintypes import at, below, button, panel, text_window


class DbSession:
    """One open database: db-interactor, schema browser, object browsers."""

    def __init__(self, app: "OdeView", source: Union[Path, object]):
        self.app = app
        if isinstance(source, (str, Path)):
            self.database = Database.open(Path(source))
        else:
            # An already-open database: local or a repro.net RemoteDatabase.
            self.database = source
        self.name = self.database.name
        self._interactor_name = f"dbi.{self.name}"
        app.processes.spawn(DbInteractor(self._interactor_name, self.database))
        self.registry = DisplayRegistry(self.database)
        self.schema = SchemaBrowser(
            app.ctx, self.database, self._interactor_name,
            on_objects=self.open_object_set,
        )
        self.object_sets: List[ObjectBrowser] = []
        self._set_counter = itertools.count(0)

    # -- object browsing entry point (the 'objects' button, §3.2) ----------------

    def open_object_set(self, class_name: str, predicate=None) -> ObjectBrowser:
        """Open an object-set window over a class's cluster."""
        self.database.schema.get_class(class_name)
        path = f"{self.name}.{class_name}.set{next(self._set_counter)}"
        node = SetNode(
            self.database.objects, class_name, path, predicate=predicate
        )
        browser = ObjectBrowser(self.app.ctx, self.database, node, self.registry)
        self.object_sets.append(browser)
        return browser

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        screen = self.app.ctx.screen
        for browser in list(self.object_sets):
            browser.destroy()
        self.object_sets.clear()
        for window_name in (
            [self.schema.schema_window_name()]
            + self.schema.info_open
            + self.schema.def_open
        ):
            if screen.has(window_name):
                screen.destroy(window_name)
        if self.app.processes.has(self._interactor_name):
            self.app.processes.remove(self._interactor_name)
        self.database.close()


class OdeView:
    """The graphical front end to Ode."""

    DATABASE_WINDOW = "databases"

    def __init__(self, root_dir: Union[str, Path], backend=None,
                 screen_width: int = 150, privileged: bool = False):
        self.root = Path(root_dir)
        self.screen = Screen(backend or TextBackend(), width=screen_width)
        self.processes = ProcessManager()
        self.ctx = UiContext(
            screen=self.screen,
            processes=self.processes,
            display_state=DisplayStateMemory(),
            privileged=privileged,
        )
        self.sessions: Dict[str, DbSession] = {}
        self._build_database_window()

    # -- the database window (Figure 1) --------------------------------------------

    def database_directories(self) -> List[Path]:
        return discover_databases(self.root)

    def _icon_text(self, directory: Path) -> str:
        icon_path = directory / ICON_FILE
        if icon_path.exists():
            text = icon_path.read_text(encoding="utf-8").strip()
            if text:
                return text.split("\n")[0]
        return "[db]"

    def _build_database_window(self) -> None:
        if self.screen.has(self.DATABASE_WINDOW):
            self.screen.destroy(self.DATABASE_WINDOW)
        directories = self.database_directories()
        children = []
        previous = None
        for directory in directories:
            db_name = directory.name.removesuffix(".odb")
            icon_name = f"{self.DATABASE_WINDOW}.icon.{db_name}"
            label = f"{self._icon_text(directory)} {db_name}"
            placement = at(0, 0) if previous is None else below(previous)
            children.append(button(icon_name, label, f"open:{db_name}",
                                   placement=placement))
            previous = icon_name
        if not children:
            children.append(
                text_window(f"{self.DATABASE_WINDOW}.empty",
                            "(no Ode databases found)", placement=at(0, 0))
            )
        self.screen.create(
            panel(self.DATABASE_WINDOW, tuple(children),
                  title="Ode databases")
        )
        for directory in directories:
            db_name = directory.name.removesuffix(".odb")
            self.screen.on_click(
                f"{self.DATABASE_WINDOW}.icon.{db_name}",
                lambda _event, n=db_name: self.open_database(n),
            )

    def refresh_database_window(self) -> None:
        """Re-scan the root directory (a new database was created)."""
        self._build_database_window()

    # -- sessions ----------------------------------------------------------------------

    def open_database(self, name: str) -> DbSession:
        """Click a database icon: open it and show its schema window."""
        if name in self.sessions:
            return self.sessions[name]
        for directory in self.database_directories():
            if directory.name.removesuffix(".odb") == name:
                session = DbSession(self, directory)
                self.sessions[name] = session
                return session
        raise OdeViewError(f"no database named {name!r} under {self.root}")

    def attach_database(self, database) -> DbSession:
        """Open a session over an already-open database object.

        This is how a remote database joins the application: the caller
        connects a :class:`repro.net.remote.RemoteDatabase` and attaches
        it; browsers, schema windows, and display functions run over it
        exactly as over a local one.
        """
        if database.name in self.sessions:
            raise OdeViewError(f"database {database.name!r} is already open")
        session = DbSession(self, database)
        self.sessions[database.name] = session
        return session

    def connect_database(self, host: str, port: int, name: str,
                         **kwargs) -> DbSession:
        """Connect to an OdeServer and open one of its databases."""
        from repro.net.remote import RemoteDatabase

        return self.attach_database(
            RemoteDatabase.connect(host, port, name, **kwargs))

    def close_database(self, name: str) -> None:
        session = self.sessions.pop(name, None)
        if session is None:
            raise OdeViewError(f"database {name!r} is not open")
        session.close()

    def session(self, name: str) -> DbSession:
        try:
            return self.sessions[name]
        except KeyError:
            raise OdeViewError(f"database {name!r} is not open") from None

    # -- interaction -----------------------------------------------------------------------

    def click(self, window_name: str) -> None:
        self.screen.click(window_name)

    def render(self) -> str:
        return self.screen.render()

    def shutdown(self) -> None:
        for name in list(self.sessions):
            self.close_database(name)
