"""The interactive selection window (paper §5.2's two schemes, as UI).

"A predicate is formed by selecting from a menu of attribute names and
operators and typing in values ... Another alternative is to use a
condition box similar to QBE and type in the selection condition as a
string."

The panel offers both at once:

* two pop-up menus (attribute names from the class's selectlist, operators)
  plus a value field typed via keyboard input, combined by the ``add``
  button — the simple scheme;
* a condition box accepting a predicate string — the complex scheme.

``apply`` validates everything against the selectlist and the schema,
compiles the predicate, and opens an object-set window over the matching
objects (the pushdown happens in the object manager, as the paper says).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SelectionError
from repro.core.selection import SelectionBuilder
from repro.windowing.events import KeyInput, MenuSelect
from repro.windowing.wintypes import at, below, button, menu, panel, right_of, text_window


def parse_value(text: str) -> Any:
    """Interpret a typed value: int, float, bool, or (possibly quoted) string."""
    stripped = text.strip()
    if not stripped:
        raise SelectionError("empty value typed into the selection panel")
    if stripped in ("true", "false"):
        return stripped == "true"
    if (len(stripped) >= 2 and stripped[0] == stripped[-1]
            and stripped[0] in "\"'"):
        return stripped[1:-1]
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


class SelectionPanel:
    """Windows + behaviour for building one selection interactively."""

    def __init__(self, db_session, class_name: str):
        self.session = db_session
        self.class_name = class_name
        self.builder = SelectionBuilder(
            db_session.database, class_name, db_session.registry,
            privileged=db_session.app.ctx.privileged,
        )
        self.picked_attribute: Optional[str] = None
        self.picked_operator: Optional[str] = None
        self.typed_value: Optional[str] = None
        self.result_browser = None
        self._window = f"{db_session.name}.select.{class_name}"
        self._build()

    # -- names ---------------------------------------------------------------

    @property
    def window_name(self) -> str:
        return self._window

    def part(self, suffix: str) -> str:
        return f"{self._window}.{suffix}"

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        screen = self.session.app.ctx.screen
        attributes = tuple(self.builder.attributes())
        if not attributes:
            raise SelectionError(
                f"class {self.class_name!r} has an empty selectlist")
        children = (
            menu(self.part("attrs"), attributes, title="attribute",
                 placement=at(0, 0)),
            menu(self.part("ops"), tuple(self.builder.operators()),
                 title="operator", placement=right_of(self.part("attrs"))),
            text_window(self.part("value"), "(type a value)", title="value",
                        width=18, placement=right_of(self.part("ops"))),
            button(self.part("add"), "add", "add",
                   placement=below(self.part("attrs"))),
            text_window(self.part("condition"), "(condition box: empty)",
                        title="condition box", width=44, height=2,
                        scrollable=True,
                        placement=below(self.part("add"))),
            button(self.part("apply"), "apply", "apply",
                   placement=below(self.part("condition"))),
            button(self.part("clear"), "clear", "clear",
                   placement=right_of(self.part("apply"))),
        )
        screen.create(panel(self._window, children,
                            title=f"select {self.class_name}"))
        events = screen.events
        events.on(self.part("attrs"), self._on_event)
        events.on(self.part("ops"), self._on_event)
        events.on(self.part("value"), self._on_event)
        events.on(self.part("condition"), self._on_event)
        screen.on_click(self.part("add"), lambda _e: self.add_condition())
        screen.on_click(self.part("apply"), lambda _e: self.apply())
        screen.on_click(self.part("clear"), lambda _e: self.clear())

    # -- event handling --------------------------------------------------------------

    def _on_event(self, event) -> None:
        screen = self.session.app.ctx.screen
        if isinstance(event, MenuSelect):
            if event.window == self.part("attrs"):
                self.picked_attribute = event.item
            elif event.window == self.part("ops"):
                self.picked_operator = event.item
        elif isinstance(event, KeyInput):
            if event.window == self.part("value"):
                self.typed_value = event.text
                screen.set_content(self.part("value"), event.text)
            elif event.window == self.part("condition"):
                self.set_condition(event.text)

    # -- the two schemes ---------------------------------------------------------------

    def add_condition(self) -> None:
        """The menu scheme: combine the current attribute/operator/value."""
        if not (self.picked_attribute and self.picked_operator
                and self.typed_value is not None):
            raise SelectionError(
                "pick an attribute, an operator, and type a value first")
        self.builder.add_condition(
            self.picked_attribute, self.picked_operator,
            parse_value(self.typed_value))
        self._refresh_condition_box()

    def set_condition(self, source: str) -> None:
        """The condition box: a predicate string, validated immediately."""
        self.builder.set_condition(source)
        self._refresh_condition_box()

    def _refresh_condition_box(self) -> None:
        screen = self.session.app.ctx.screen
        try:
            text = self.builder.source()
        except SelectionError:
            text = "(condition box: empty)"
        screen.set_content(self.part("condition"), text)

    # -- actions -----------------------------------------------------------------------

    def apply(self):
        """Compile and push down; open an object set over the matches."""
        predicate = self.builder.build()
        self.result_browser = self.session.open_object_set(
            self.class_name, predicate=predicate)
        return self.result_browser

    def clear(self) -> None:
        self.builder = SelectionBuilder(
            self.session.database, self.class_name, self.session.registry,
            privileged=self.session.app.ctx.privileged,
        )
        self.picked_attribute = None
        self.picked_operator = None
        self.typed_value = None
        self._refresh_condition_box()
        screen = self.session.app.ctx.screen
        screen.set_content(self.part("value"), "(type a value)")

    def destroy(self) -> None:
        screen = self.session.app.ctx.screen
        if screen.has(self._window):
            screen.destroy(self._window)
