"""Selection (paper §5.2).

Two predicate-construction schemes, exactly as the paper proposes:

* the **menu scheme** ("a predicate is formed by selecting from a menu of
  attribute names and operators and typing in values") — good for simple
  predicates;
* the **condition box** ("similar to QBE and type in the selection
  condition as a string") — good for complex ones.

Both validate that every attribute used comes from the class's
``selectlist`` (synthesized when the designer provided none), type-check
the predicate, and compile it to a callable the object manager applies
while scanning — the pushdown of §5.2.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set

from repro.errors import SelectionError, TypeCheckError
from repro.dynlink.registry import DisplayRegistry
from repro.ode.database import Database
from repro.ode.opp import ast
from repro.ode.opp.parser import parse_expression
from repro.ode.opp.predicate import PredicateEvaluator
from repro.ode.opp.printer import expr_to_source
from repro.ode.opp.typecheck import check_selection_predicate

#: Operators the menu scheme offers.
MENU_OPERATORS = ("==", "!=", "<", "<=", ">", ">=")


def used_attributes(expr: ast.Expr) -> Set[str]:
    """Every bare attribute name a predicate mentions (its root names)."""
    names: Set[str] = set()

    def visit(node: ast.Expr) -> None:
        if isinstance(node, ast.Name):
            names.add(node.ident)
        elif isinstance(node, ast.FieldAccess):
            visit(node.base)
        elif isinstance(node, ast.Index):
            visit(node.base)
            visit(node.subscript)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, ast.Unary):
            visit(node.operand)
        elif isinstance(node, ast.Binary):
            visit(node.left)
            visit(node.right)

    visit(expr)
    return names


class SelectionBuilder:
    """Builds a validated, compiled selection predicate for one class."""

    def __init__(self, database: Database, class_name: str,
                 registry: Optional[DisplayRegistry] = None,
                 privileged: bool = False):
        database.schema.get_class(class_name)
        self.database = database
        self.class_name = class_name
        self.registry = registry or DisplayRegistry(database)
        self.privileged = privileged
        self._conjuncts: List[ast.Expr] = []
        self._condition: Optional[ast.Expr] = None

    # -- what the user may select on -----------------------------------------------

    def attributes(self) -> List[str]:
        """The selectlist: "the user must be informed as to what attributes
        can be used to construct the selection predicate" (§5.2)."""
        return self.registry.selectlist(self.class_name)

    def operators(self) -> tuple:
        return MENU_OPERATORS

    # -- scheme 1: menus ---------------------------------------------------------------

    def add_condition(self, attribute: str, operator: str, value: Any) -> None:
        """One menu-built comparison; conditions AND together."""
        if attribute not in self.attributes():
            raise SelectionError(
                f"attribute {attribute!r} is not in the selectlist of "
                f"{self.class_name!r}"
            )
        if operator not in MENU_OPERATORS:
            raise SelectionError(f"unknown operator {operator!r}")
        if isinstance(value, str):
            literal: ast.Expr = ast.Literal(value)
        elif isinstance(value, bool):
            literal = ast.Literal(value)
        elif isinstance(value, (int, float)):
            literal = ast.Literal(value)
        else:
            raise SelectionError(
                f"menu values must be scalars, got {type(value).__name__}"
            )
        self._conjuncts.append(
            ast.Binary(operator, ast.Name(attribute), literal)
        )

    # -- scheme 2: the condition box ------------------------------------------------------

    def set_condition(self, source: str) -> None:
        """Type a predicate string into the QBE-style condition box."""
        expr = parse_expression(source)
        self._validate(expr)
        self._condition = expr

    # -- build ------------------------------------------------------------------------------

    def expression(self) -> ast.Expr:
        parts: List[ast.Expr] = list(self._conjuncts)
        if self._condition is not None:
            parts.append(self._condition)
        if not parts:
            raise SelectionError("no selection condition given")
        expr = parts[0]
        for part in parts[1:]:
            expr = ast.Binary("&&", expr, part)
        return expr

    def source(self) -> str:
        return expr_to_source(self.expression())

    def _validate(self, expr: ast.Expr) -> None:
        allowed = set(self.attributes())
        used = used_attributes(expr)
        outside = used - allowed
        if outside:
            raise SelectionError(
                f"attributes not in the selectlist of {self.class_name!r}: "
                f"{sorted(outside)}"
            )
        try:
            check_selection_predicate(
                expr, self.class_name, self.database.schema,
                privileged=self.privileged,
            )
        except TypeCheckError as exc:
            raise SelectionError(f"bad selection predicate: {exc}") from exc

    def build(self) -> Callable[[Any], bool]:
        """Validate and compile: the callable handed to the object manager."""
        expr = self.expression()
        self._validate(expr)
        evaluator = PredicateEvaluator(
            self.database.objects, privileged=self.privileged
        )
        return evaluator.compile(expr)

    def count_matches(self) -> int:
        predicate = self.build()
        return sum(
            1 for _buffer in self.database.objects.select(self.class_name,
                                                          predicate)
        )

    # -- index-aware execution ---------------------------------------------------

    def plan(self, force: Optional[str] = None):
        """An index-aware :class:`~repro.core.queryplan.QueryPlan`."""
        from repro.core.queryplan import SelectionPlanner

        expr = self.expression()
        self._validate(expr)
        planner = SelectionPlanner(self.database, privileged=self.privileged)
        return planner.plan(self.class_name, expr, force=force)

    def execute(self, force: Optional[str] = None):
        """Validate, plan, and run the selection (index probe when the
        cost model prefers it).

        Against a remote database the whole selection crosses the wire:
        the *server* plans against its statistics and indexes and
        returns only the matches — §5.2's pushdown with index
        acceleration, instead of the client scanning the cluster over
        the network.
        """
        from repro.core.queryplan import SelectionPlanner

        expr = self.expression()
        self._validate(expr)
        if getattr(self.database, "remote", False):
            return self.database.objects.select_pushdown(
                self.class_name, expr_to_source(expr),
                force=force, privileged=self.privileged)
        planner = SelectionPlanner(self.database, privileged=self.privileged)
        return planner.select(self.class_name, expr, force=force)

    def explain(self, force: Optional[str] = None) -> str:
        """The EXPLAIN text for this selection as currently built.

        Local databases plan locally; remote ones ask the server (one
        OP_EXPLAIN round trip), whose statistics drive the plan that
        :meth:`execute` would actually run.
        """
        expr = self.expression()
        self._validate(expr)
        if getattr(self.database, "remote", False):
            reply = self.database.objects.explain(
                self.class_name, expr_to_source(expr),
                force=force, privileged=self.privileged)
            return str(reply.get("explain", ""))
        return self.plan(force=force).explain()


def select_objects(database: Database, class_name: str, condition: str,
                   registry: Optional[DisplayRegistry] = None,
                   privileged: bool = False):
    """One-call pushdown selection: buffers matching a condition string."""
    builder = SelectionBuilder(database, class_name, registry, privileged)
    builder.set_condition(condition)
    predicate = builder.build()
    return list(database.objects.select(class_name, predicate))
