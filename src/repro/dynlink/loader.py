"""The dynamic linker for display modules.

"Every time OdeView needs to display an object, it dynamically loads the
object file containing the appropriate display function (if it is not
already loaded)" (paper §4.5).  Here the "object files" are Python modules
named ``<class>.py`` in a database's ``display/`` directory, loaded through
:mod:`importlib` at run time.

The loader caches loaded modules keyed by (path, mtime, size) so editing a
display module on disk — the analogue of recompiling a class's display
function — is picked up on the next display call without restarting
OdeView.  Adding a brand-new class therefore requires zero changes to
OdeView itself, the property §4.5 is about (ABL-DYN demonstrates it).
"""

from __future__ import annotations

import importlib.util
import itertools
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import DynlinkError
from repro.obs import get_registry


@dataclass
class LoaderStats:
    loads: int = 0          # actual module executions (cold loads)
    cache_hits: int = 0
    invalidations: int = 0  # reloads because the file changed


class DisplayModuleLoader:
    """Loads and caches per-class display modules from one directory."""

    _instance_counter = itertools.count(1)

    def __init__(self, display_dir: Union[str, Path]):
        self.display_dir = Path(display_dir)
        self._cache: Dict[str, Tuple[Tuple[float, int], object]] = {}
        self._uid = next(DisplayModuleLoader._instance_counter)
        self.stats = LoaderStats()
        registry = get_registry()
        self._m_loads = registry.counter("dynlink.loads")
        self._m_cache_hits = registry.counter("dynlink.cache_hits")
        self._m_invalidations = registry.counter("dynlink.invalidations")
        self._m_load_time = registry.histogram("dynlink.load_seconds")

    # -- paper-named entry points (§4.2 code fragment) -------------------------

    def get_dispfn(self, class_name: str) -> Optional[Path]:
        """Locate the display module for a class; None when not provided."""
        if not class_name.isidentifier():
            raise DynlinkError(f"bad class name {class_name!r}")
        path = self.display_dir / f"{class_name}.py"
        return path if path.exists() else None

    def ld_dispfn(self, class_name: str):
        """Load (or re-use) the display module for a class.

        Returns the module object, or ``None`` when the class designer
        provided no display module (the caller then synthesizes one).
        """
        path = self.get_dispfn(class_name)
        if path is None:
            return None
        stat = path.stat()
        fingerprint = (stat.st_mtime, stat.st_size)
        cached = self._cache.get(class_name)
        if cached is not None:
            cached_fingerprint, module = cached
            if cached_fingerprint == fingerprint:
                self.stats.cache_hits += 1
                self._m_cache_hits.inc()
                return module
            self.stats.invalidations += 1
            self._m_invalidations.inc()
        with self._m_load_time.time():
            module = self._execute(class_name, path)
        self._cache[class_name] = (fingerprint, module)
        self.stats.loads += 1
        self._m_loads.inc()
        return module

    # -- internals -----------------------------------------------------------------

    def _execute(self, class_name: str, path: Path):
        # Unique module name per loader instance so two open databases with
        # same-named classes never collide in sys.modules.
        module_name = f"_odeview_display_{self._uid}_{class_name}"
        try:
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:
                raise DynlinkError(f"cannot create import spec for {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except Exception:
                sys.modules.pop(module_name, None)
                raise
            return module
        except DynlinkError:
            raise
        except Exception as exc:
            raise DynlinkError(
                f"display module for class {class_name!r} failed to load: {exc}"
            ) from exc

    def invalidate(self, class_name: Optional[str] = None) -> None:
        """Drop cached modules (all, or one class)."""
        if class_name is None:
            self._cache.clear()
        else:
            self._cache.pop(class_name, None)

    def loaded_classes(self):
        return sorted(self._cache)
