"""Dynamic linking of display functions + the display protocol."""

from repro.dynlink.loader import DisplayModuleLoader, LoaderStats
from repro.dynlink.protocol import (
    BitVector,
    DisplayRequest,
    DisplayResources,
    ensure_display_resources,
)
from repro.dynlink.registry import DisplayRegistry
from repro.dynlink.synthesize import format_value, synthesize_display, visible_attributes

__all__ = [
    "BitVector",
    "DisplayModuleLoader",
    "DisplayRegistry",
    "DisplayRequest",
    "DisplayResources",
    "LoaderStats",
    "ensure_display_resources",
    "format_value",
    "synthesize_display",
    "visible_attributes",
]
