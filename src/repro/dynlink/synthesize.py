"""Synthesized display functions.

"If the display function is not provided, then OdeView will synthesize a
display function, possibly a rudimentary one" (paper §4.1).  Likewise §5.1
and §5.2: "A rudimentary displaylist/selectlist display function is
automatically synthesized if not explicitly provided by the class
designer."

The synthesized display is generic: it walks the object buffer's public
view (private too, in privileged mode), renders nested structures indented
and sets as brace lists — the "fixed display schemes" §4.1 describes — and
shows references as OID arrows.  It honours the projection bit vector.
"""

from __future__ import annotations

import datetime
from typing import Any, List, Sequence, Tuple

from repro.dynlink.protocol import (
    DisplayRequest,
    DisplayResources,
    text_window,
)
from repro.ode.oid import Oid


def format_value(value: Any, indent: int = 0) -> List[str]:
    """Render one attribute value as indented text lines."""
    pad = "  " * indent
    if value is None:
        return [pad + "(null)"]
    if isinstance(value, Oid):
        return [pad + f"-> {value.cluster}:{value.number}"]
    if isinstance(value, bool):
        return [pad + ("true" if value else "false")]
    if isinstance(value, float):
        return [pad + f"{value:g}"]
    if isinstance(value, datetime.date):
        return [pad + value.isoformat()]
    if isinstance(value, dict):
        lines: List[str] = []
        for key in value:
            nested = isinstance(value[key], (dict, list, tuple))
            inner = format_value(value[key], indent + 1)
            if not nested and len(inner) == 1:
                lines.append(f"{pad}  {key}: {inner[0].strip()}")
            else:
                lines.append(f"{pad}  {key}:")
                lines.extend(inner)
        return lines or [pad + "{}"]
    if isinstance(value, (list, tuple)):
        scalars = [item for item in value
                   if not isinstance(item, (dict, list, tuple))]
        if len(scalars) == len(value):
            rendered = ", ".join(
                format_value(item)[0].strip() for item in value
            )
            return [pad + "{" + rendered + "}"]
        lines = [pad + "{"]
        for item in value:
            lines.extend(format_value(item, indent + 1))
        lines.append(pad + "}")
        return lines
    return [pad + str(value)]


def visible_attributes(buffer, request: DisplayRequest,
                       displaylist: Sequence[str]) -> List[Tuple[str, Any]]:
    """The (name, value) pairs the synthesized display shows.

    Order follows the buffer's public names (schema order), then computed
    attributes; private attributes are appended only in privileged mode,
    marked as such.  The projection bit vector filters names that appear in
    *displaylist*.
    """
    pairs: List[Tuple[str, Any]] = []
    for name in buffer.attribute_names(privileged=request.privileged):
        if not request.wants(name, displaylist):
            continue
        value = buffer.value(name, privileged=request.privileged)
        label = name
        if name not in buffer.public_names and name not in buffer.computed:
            label = f"{name} (private)"
        pairs.append((label, value))
    return pairs


def synthesize_display(buffer, request: DisplayRequest,
                       displaylist: Sequence[str]) -> DisplayResources:
    """The rudimentary text display OdeView falls back to."""
    pairs = visible_attributes(buffer, request, displaylist)
    width = max((len(name) for name, _ in pairs), default=0)
    lines: List[str] = []
    for name, value in pairs:
        rendered = format_value(value)
        nested = isinstance(value, dict)
        if not nested and len(rendered) == 1:
            lines.append(f"{name.ljust(width)} : {rendered[0].strip()}")
        else:
            lines.append(f"{name.ljust(width)} :")
            lines.extend(rendered)
    body = "\n".join(lines) if lines else "(no visible attributes)"
    window = text_window(
        request.window_name("text"),
        body,
        title=f"{buffer.class_name} {buffer.oid.cluster}:{buffer.oid.number}",
    )
    return DisplayResources(format_name=request.format_name, windows=(window,))
