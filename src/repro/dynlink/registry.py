"""The per-database display-function registry.

Ties the dynamic linker to one database: given a class name it answers the
four protocol questions — which display formats exist, what does a format's
display look like for a buffer, what is the displaylist, what is the
selectlist — consulting the class's display module when one exists and
synthesizing the paper's "rudimentary" fallbacks otherwise.

Every call into class-designer code is guarded: a crash inside a display
module surfaces as :class:`DynlinkError`, which the object-interactor
process turns into an isolated failure (paper §4.6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import DynlinkError
from repro.dynlink.loader import DisplayModuleLoader
from repro.dynlink.protocol import (
    DisplayRequest,
    DisplayResources,
    ensure_display_resources,
)
from repro.dynlink.synthesize import synthesize_display
from repro.ode.database import Database
from repro.ode.types import (
    BoolType,
    DateType,
    FloatType,
    IntType,
    StringType,
)

_SCALAR_TYPES = (IntType, FloatType, BoolType, StringType, DateType)
DEFAULT_FORMATS: Tuple[str, ...] = ("text",)


class DisplayRegistry:
    """Display protocol dispatch for one open database."""

    def __init__(self, database: Database):
        self.database = database
        self.loader = DisplayModuleLoader(database.display_dir)

    # -- module access -----------------------------------------------------------

    def module_for(self, class_name: str):
        """The class's display module, or None if the designer provided none."""
        self.database.schema.get_class(class_name)  # unknown class -> SchemaError
        return self.loader.ld_dispfn(class_name)

    def has_display_module(self, class_name: str) -> bool:
        return self.loader.get_dispfn(class_name) is not None

    # -- protocol: formats ----------------------------------------------------------

    def formats(self, class_name: str) -> Tuple[str, ...]:
        """Display format names — one object-panel button each (paper §3.2)."""
        module = self.module_for(class_name)
        if module is not None and hasattr(module, "FORMATS"):
            formats = tuple(module.FORMATS)
            if not formats:
                raise DynlinkError(
                    f"display module of {class_name!r} declares empty FORMATS"
                )
            return formats
        return DEFAULT_FORMATS

    # -- protocol: display ------------------------------------------------------------

    def display(self, buffer, request: DisplayRequest) -> DisplayResources:
        """Invoke the display function for one buffer and format."""
        class_name = buffer.class_name
        module = self.module_for(class_name)
        if module is not None and hasattr(module, "display"):
            try:
                result = module.display(buffer, request)
            except DynlinkError:
                raise
            except Exception as exc:
                raise DynlinkError(
                    f"display function of class {class_name!r} crashed: {exc}"
                ) from exc
            return ensure_display_resources(result, class_name)
        return synthesize_display(buffer, request, self.displaylist(class_name))

    # -- protocol: displaylist / selectlist ----------------------------------------------

    def displaylist(self, class_name: str) -> List[str]:
        """Attributes projection can select (paper §5.1)."""
        module = self.module_for(class_name)
        if module is not None and hasattr(module, "displaylist"):
            try:
                names = list(module.displaylist())
            except Exception as exc:
                raise DynlinkError(
                    f"displaylist of class {class_name!r} crashed: {exc}"
                ) from exc
            return names
        return self._synthesized_displaylist(class_name)

    def selectlist(self, class_name: str) -> List[str]:
        """Attributes usable in selection predicates (paper §5.2)."""
        module = self.module_for(class_name)
        if module is not None and hasattr(module, "selectlist"):
            try:
                names = list(module.selectlist())
            except Exception as exc:
                raise DynlinkError(
                    f"selectlist of class {class_name!r} crashed: {exc}"
                ) from exc
            return names
        return self._synthesized_selectlist(class_name)

    def _synthesized_displaylist(self, class_name: str) -> List[str]:
        """Rudimentary fallback: public attributes plus computed attributes."""
        schema = self.database.schema
        names = [
            attr.name for attr in schema.all_attributes(class_name) if attr.is_public
        ]
        names += [
            method.name
            for method in schema.all_methods(class_name)
            if method.is_public and not method.side_effects
        ]
        return names

    def _synthesized_selectlist(self, class_name: str) -> List[str]:
        """Rudimentary fallback: public *scalar* attributes (predicable)."""
        schema = self.database.schema
        return [
            attr.name
            for attr in schema.all_attributes(class_name)
            if attr.is_public and isinstance(attr.type_spec, _SCALAR_TYPES)
        ]
