"""The communication protocol between OdeView and display functions.

This module is the *entire* surface a class designer sees — the "principle
of separation" (paper §4.2): "The class writer should not have to know the
specifics of object display (windowing) software and the display software
should not have to know about object types."

A display module is a Python file named after its class in the database's
``display/`` directory.  It may define:

``FORMATS``
    Tuple of display format names the class offers, e.g.
    ``("text", "picture")``.  The object panel creates one button per
    format (paper §3.2).  Defaults to ``("text",)``.

``display(buffer, request) -> DisplayResources``
    Build the windows for one format.  *buffer* is the object buffer the
    object manager produced (values, public names, computed attributes);
    *request* is a :class:`DisplayRequest` naming the format and carrying
    the projection bit vector (paper §5.1).  The return value is pure
    window-spec data.

``displaylist() -> sequence of attribute names``
    The attributes on which projection may be performed (paper §5.1).

``selectlist() -> sequence of attribute names``
    The attributes usable in selection predicates (paper §5.2).

Each of these is optional; OdeView synthesizes rudimentary fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import DisplayProtocolError, ProjectionError
# Re-exported so display modules import ONLY this module:
from repro.windowing.raster import RasterImage, procedural_portrait  # noqa: F401
from repro.windowing.wintypes import (  # noqa: F401
    DisplayResources,
    Placement,
    ROOT,
    WindowKind,
    WindowSpec,
    at,
    below,
    button,
    menu,
    oid_button,
    panel,
    raster_window,
    right_of,
    text_window,
)


class BitVector:
    """The projection bit vector of paper §5.1.

    "OdeView ... makes a bit vector corresponding to the attributes
    selected by the user.  The bit positions correspond to the positions of
    the attributes returned by displaylist."
    """

    def __init__(self, bits: Sequence[bool]):
        self._bits: Tuple[bool, ...] = tuple(bool(bit) for bit in bits)

    @classmethod
    def all_set(cls, length: int) -> "BitVector":
        return cls([True] * length)

    @classmethod
    def from_selection(cls, displaylist: Sequence[str],
                       selected: Sequence[str]) -> "BitVector":
        unknown = set(selected) - set(displaylist)
        if unknown:
            raise ProjectionError(
                f"attributes not in displaylist: {sorted(unknown)}"
            )
        chosen = set(selected)
        return cls([name in chosen for name in displaylist])

    def __len__(self) -> int:
        return len(self._bits)

    def __getitem__(self, index: int) -> bool:
        return self._bits[index]

    def __iter__(self):
        return iter(self._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitVector) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def select(self, displaylist: Sequence[str]) -> Tuple[str, ...]:
        """The attribute names this vector keeps, given the displaylist."""
        if len(displaylist) != len(self._bits):
            raise ProjectionError(
                f"bit vector of length {len(self._bits)} does not match "
                f"displaylist of length {len(displaylist)}"
            )
        return tuple(
            name for name, bit in zip(displaylist, self._bits) if bit
        )

    def __repr__(self) -> str:
        return "BitVector(" + "".join("1" if b else "0" for b in self._bits) + ")"


@dataclass(frozen=True)
class DisplayRequest:
    """Everything OdeView passes to a display function besides the buffer.

    ``bitvec`` is ``None`` when no projection is active; the display
    function then uses its own default attribute set (paper §5.1: "If the
    bit vector argument is not supplied, then the display function uses a
    default bit vector (chosen by the class designer)").  ``privileged``
    turns on the debugging mode of §4.1(3) in which private data may be
    shown.  ``window_prefix`` must prefix every window name the function
    creates so simultaneous displays never collide.
    """

    format_name: str = "text"
    bitvec: Optional[BitVector] = None
    privileged: bool = False
    window_prefix: str = "obj"

    def wants(self, attribute: str, displaylist: Sequence[str]) -> bool:
        """Should *attribute* be shown under the current projection?"""
        if self.bitvec is None:
            return True
        if attribute not in displaylist:
            return True  # outside the projectable set; designer's choice
        return attribute in self.bitvec.select(displaylist)

    def window_name(self, suffix: str) -> str:
        return f"{self.window_prefix}.{suffix}"


def ensure_display_resources(value, class_name: str) -> DisplayResources:
    """Validate a display function's return value (protocol enforcement)."""
    if not isinstance(value, DisplayResources):
        raise DisplayProtocolError(
            f"display function of class {class_name!r} returned "
            f"{type(value).__name__}, not DisplayResources"
        )
    if not value.windows:
        raise DisplayProtocolError(
            f"display function of class {class_name!r} returned no windows"
        )
    return value
