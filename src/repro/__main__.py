"""``python -m repro <root>`` — the interactive OdeView CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
