"""RemoteDatabase / RemoteObjectManager: the database over the wire.

These present the same interface as :class:`~repro.ode.database.Database`
and its object manager, so every consumer — object browsers, schema
browsers, synchronized browsing, the display-function protocol, the
selection planner — runs unchanged against a server-hosted database.

What stays local and what crosses the wire:

* the **schema** is fetched once at connect and rebuilt locally, so all
  schema-shaped questions (attribute lookup, inheritance walks, display
  lists) cost nothing;
* **display modules** are fetched into a client-side directory, so the
  dynamic linker loads and runs display functions exactly as it does
  locally (the paper's object-interactor loads display code into *its*
  address space, not the server's);
* **object buffers** cross the wire with computed attributes already
  evaluated server-side, and land in a bounded client cache.  The cache
  is **epoch-keyed**: every server reply reports the commit epoch it was
  served at, every cached buffer is tagged with that epoch, and
  invalidation advances an epoch *floor* instead of flushing — a buffer
  fetched at the still-current epoch is provably not stale and survives,
  so there is no flush race between an invalidation and an in-flight
  fetch.  Writes inside an open transaction read uncommitted overlay
  state that no epoch can describe, so those paths purge physically;
* **sequencing cursors** live on the server (they are the
  object-interactor's cursor) and own a pinned snapshot there; ``reset``
  refreshes that snapshot and advances the client cache's epoch floor —
  a resequenced browse re-reads current data.

Cluster scans are batched: ``RemoteCluster.oids()`` pulls the whole
cluster in :data:`SCAN_BATCH`-sized pages through the object cache, so
browsing N objects costs N/SCAN_BATCH round trips, not N.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import (
    NetworkError,
    SessionLostError,
    StorageError,
    TransactionError,
)
from repro.net import protocol as P
from repro.net.client import OdeClient
from repro.ode.oid import Oid
from repro.ode.schema import Schema
from repro.ode.versions import VersionRecord

#: Buffers fetched per SCAN_CLUSTER round trip.
SCAN_BATCH = 64

#: Object buffers kept in the client-side cache.
CACHE_CAPACITY = 512


class BufferCache:
    """A bounded LRU of object buffers keyed by OID, tagged by epoch.

    Every entry carries the server commit epoch its buffer was served
    at; ``latest`` tracks the newest epoch observed in *any* reply.
    :meth:`invalidate` advances an epoch ``floor`` to ``latest`` — every
    entry tagged below the floor stops being served — instead of
    flushing the table.  A buffer fetched at the still-current epoch is
    provably identical to what a re-fetch would return, so it survives;
    and because a reply tagged with a *newer* epoch can never be killed
    by an older invalidation, there is no flush race between an
    invalidation and an in-flight fetch.

    :meth:`purge` keeps the old drop-everything semantics for the paths
    where epochs cannot express staleness: uncommitted transaction
    overlay state, and abort (which reverts without minting an epoch).

    **CDC precise invalidation.**  With a push subscription attached
    (:meth:`RemoteObjectManager.watch`), the cache stops invalidating
    wholesale: each delta event names exactly the OIDs that changed at
    its epoch, so :meth:`apply_delta` evicts those and *re-certifies*
    every other entry at the delta's epoch.  ``_cdc_epoch`` tracks how
    far the contiguous delta stream has been consumed; re-certification
    is only sound for entries tagged at or above the previous basis —
    an entry cached from a lagging replica *below* the basis might have
    been written after its naming delta was already consumed, so it is
    killed by the floor instead of certified.  Overflow downgrades to
    wholesale (:meth:`note_resync`) and a lost connection to
    :meth:`purge` — precision degrades, correctness never does.

    All methods are thread-safe: push deliveries mutate the cache from
    a network thread while the application reads it.
    """

    def __init__(self, capacity: int = CACHE_CAPACITY):
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Oid, Tuple[int, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.delta_evictions = 0   # OIDs evicted by name via apply_delta
        self.delta_applied = 0     # delta events consumed precisely
        self.resyncs = 0           # wholesale fallbacks (overflow/lost)
        self.floor = 0    # entries tagged below this epoch are dead
        self.latest = 0   # newest server epoch observed in any reply
        #: Delta-consumption basis: epoch the contiguous CDC stream has
        #: been consumed through; ``None`` until a subscription attaches.
        self._cdc_epoch: Optional[int] = None

    @property
    def cdc_epoch(self) -> Optional[int]:
        with self._lock:
            return self._cdc_epoch

    def observe_epoch(self, epoch: Any) -> None:
        with self._lock:
            if isinstance(epoch, int) and epoch > self.latest:
                self.latest = epoch

    def get(self, oid: Oid):
        with self._lock:
            entry = self._entries.get(oid)
            if entry is not None and entry[0] < self.floor:
                del self._entries[oid]   # lazily drop an invalidated entry
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(oid)
            self.hits += 1
            return entry[1]

    def put(self, buffer, epoch: Optional[int] = None) -> None:
        with self._lock:
            tag = self.latest if epoch is None else epoch
            if tag < self.floor:
                return  # the epoch this was read at is already invalidated
            self._entries[buffer.oid] = (tag, buffer)
            self._entries.move_to_end(buffer.oid)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def evict(self, oid: Oid) -> None:
        with self._lock:
            self._entries.pop(oid, None)

    def invalidate(self) -> None:
        """Advance the floor: entries older than ``latest`` stop serving."""
        with self._lock:
            if self._entries:
                self.invalidations += 1
            self._raise_floor(self.latest)

    def purge(self) -> None:
        """Unconditionally drop every entry (epoch bookkeeping kept)."""
        with self._lock:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()

    #: Back-compat alias: external callers asking for a hard clear get one.
    clear = purge

    # -- CDC precise invalidation -------------------------------------------------

    def _raise_floor(self, epoch: int) -> None:
        """Lock held.  Raise the floor and drop everything beneath it."""
        self.floor = max(self.floor, epoch)
        stale = [oid for oid, (tag, _) in self._entries.items()
                 if tag < self.floor]
        for oid in stale:
            del self._entries[oid]

    def begin_deltas(self, epoch: int) -> None:
        """A subscription acked at *epoch*: deltas are contiguous from
        here.  Entries below the ack cannot be certified by any future
        delta (their changes predate the stream), so the floor rises to
        the ack — the one wholesale cut that buys precision forever
        after."""
        with self._lock:
            self.observe_epoch(epoch)
            self._raise_floor(epoch)
            self._cdc_epoch = (epoch if self._cdc_epoch is None
                               else max(self._cdc_epoch, epoch))

    def apply_delta(self, epoch: int, oids) -> int:
        """Consume one delta event: evict exactly the named OIDs and
        re-certify every surviving entry at *epoch*.

        Returns the number of entries evicted by name.  A delta at or
        below the basis (the subscribe-gap duplicate) still evicts —
        a harmless extra miss — but certifies nothing.  Without a basis
        (no ``begin_deltas`` yet: the event raced the subscribe reply)
        the delta degrades to a wholesale cut at its epoch, which is
        always sound.
        """
        with self._lock:
            self.observe_epoch(epoch)
            purged = 0
            for oid in oids:
                key = Oid.parse(oid) if isinstance(oid, str) else oid
                if self._entries.pop(key, None) is not None:
                    purged += 1
            self.delta_evictions += purged
            basis = self._cdc_epoch
            if basis is None:
                self.resyncs += 1
                self._raise_floor(epoch)
                return purged
            if epoch > basis:
                # Every survivor tagged in [basis, epoch) is proven
                # unchanged through *epoch* by the contiguous stream.
                for key, (tag, buffer) in self._entries.items():
                    if basis <= tag < epoch:
                        self._entries[key] = (epoch, buffer)
                self._cdc_epoch = epoch
            # Entries below the old basis (stale-replica strays) die here.
            self._raise_floor(epoch)
            self.delta_applied += 1
            return purged

    def note_resync(self, epoch: int) -> None:
        """Delta detail was lost (overflow): invalidate wholesale up to
        *epoch* and resume precise consumption from there."""
        with self._lock:
            self.observe_epoch(epoch)
            self.resyncs += 1
            # Only up to the resync epoch: the marker's epoch already
            # covers every coalesced commit, and entries cached above it
            # are as fresh as a re-fetch would be.
            self._raise_floor(epoch)
            if self._cdc_epoch is not None:
                self._cdc_epoch = max(self._cdc_epoch, epoch)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class RemoteIndexManager:
    """The server's attribute indexes, managed over the wire.

    Index *structures and maintenance* live on the server, inside the
    object manager that applies the writes; the client sees definitions
    and sizes (for the statistics window) and creates/drops indexes with
    one round trip.  A client-side planner plans scans (``get`` returns
    no probe-able structure) — index-accelerated selection crosses the
    wire whole via :meth:`RemoteObjectManager.select_pushdown`, where
    the *server's* cost model picks probe vs scan.
    """

    def __init__(self, manager: "RemoteObjectManager"):
        self._manager = manager

    def _definitions(self) -> List[Dict[str, Any]]:
        return self._manager.database.server_stats().get("indexes", [])

    def indexes(self) -> List["RemoteIndexInfo"]:
        return [RemoteIndexInfo(d["class"], d["attribute"], d["entries"])
                for d in self._definitions()]

    def has_index(self, class_name: str, attribute: str) -> bool:
        return any(d["class"] == class_name and d["attribute"] == attribute
                   for d in self._definitions())

    def get(self, class_name: str, attribute: str) -> None:
        return None  # no client-side index structure: planner falls back to scan

    def create_index(self, class_name: str, attribute: str) -> None:
        self._manager._call(P.OP_CREATE_INDEX,
                            {"class": class_name, "attribute": attribute})

    def drop_index(self, class_name: str, attribute: str) -> None:
        self._manager._call(P.OP_DROP_INDEX,
                            {"class": class_name, "attribute": attribute})


class RemoteIndexInfo:
    """Size-and-name view of one server-side index (statistics window)."""

    def __init__(self, class_name: str, attribute: str, entries: int):
        self.class_name = class_name
        self.attribute = attribute
        self._entries = entries

    def __len__(self) -> int:
        return self._entries


class RemoteVersionManager:
    """Version histories fetched over the wire."""

    def __init__(self, manager: "RemoteObjectManager"):
        self._manager = manager

    def history(self, oid: Oid) -> List[VersionRecord]:
        reply = self._manager._call(P.OP_VERSION_HISTORY, {"oid": str(oid)})
        return [
            VersionRecord(of=oid, sequence=entry["seq"], state=entry["state"])
            for entry in reply["history"]
        ]

    def version_count(self, oid: Oid) -> int:
        return len(self.history(oid))

    def get_version(self, oid: Oid, sequence: int) -> VersionRecord:
        for record in self.history(oid):
            if record.sequence == sequence:
                return record
        raise StorageError(f"object {oid} has no version {sequence}")


class RemoteCluster:
    """Read view of one class's extent on the server."""

    def __init__(self, manager: "RemoteObjectManager", class_name: str):
        self._manager = manager
        self.database = manager.database.name
        self.class_name = class_name

    def __len__(self) -> int:
        return self._manager.count(self.class_name)

    def numbers(self) -> List[int]:
        reply = self._manager._call(
            P.OP_CLUSTER_NUMBERS,
            {"db": self.database, "class": self.class_name})
        return list(reply["numbers"])

    def oid(self, number: int) -> Oid:
        return Oid(self.database, self.class_name, number)

    def oids(self) -> List[Oid]:
        """All member OIDs — and, as a side effect, warm the cache.

        The batched scan ships the buffers alongside the OIDs, so the
        browse that follows (get_buffer per member) is served locally.
        """
        return [b.oid for b in self._manager.scan(self.class_name)]

    def first(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[0]) if numbers else None

    def last(self) -> Optional[Oid]:
        numbers = self.numbers()
        return self.oid(numbers[-1]) if numbers else None


class RemoteCursor:
    """A server-side sequencing cursor, optionally filtered client-side.

    next/previous/reset/current/seek mirror
    :class:`~repro.ode.cluster.ClusterCursor`.  A predicate (display
    functions may push one down) is applied on the client: the cursor
    advances on the server until a matching buffer is found.  The
    server-side cursor owns a pinned snapshot; ``epoch`` reports which
    commit epoch that snapshot serves.  ``reset`` refreshes the snapshot
    and advances the manager's cache floor — resequencing is the browse
    starting over, and it must see current data.
    """

    def __init__(self, manager: "RemoteObjectManager", class_name: str,
                 predicate=None):
        self._manager = manager
        self.class_name = class_name
        self._predicate = predicate
        reply = manager._call(
            P.OP_CURSOR_OPEN,
            {"db": manager.database.name, "class": class_name})
        self._cursor_id = reply["cursor"]
        self.epoch: Optional[int] = reply.get("epoch")
        # The cursor lives in the *server session* it was opened in; if
        # the client reconnects (new generation), that session and this
        # cursor are gone — fail fast rather than asking a fresh
        # session about a cursor id it never issued.
        self._generation = manager.database.client.generation

    def _call(self, opcode: int,
              payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._manager.database.client.generation != self._generation:
            raise SessionLostError(
                "sequencing cursor lost: the connection to the server was "
                "dropped and its session state discarded; reopen the cursor")
        reply = self._manager._call(opcode, payload)
        if isinstance(reply.get("epoch"), int):
            self.epoch = reply["epoch"]
        return reply

    def _step(self, opcode: int) -> Optional[Oid]:
        while True:
            reply = self._call(opcode, {"cursor": self._cursor_id})
            text = reply.get("oid")
            if text is None:
                return None
            oid = Oid.parse(text)
            if self._predicate is None:
                return oid
            if self._predicate(self._manager.get_buffer(oid)):
                return oid

    def next(self) -> Optional[Oid]:
        return self._step(P.OP_CURSOR_NEXT)

    def previous(self) -> Optional[Oid]:
        return self._step(P.OP_CURSOR_PREVIOUS)

    def reset(self) -> None:
        self._call(P.OP_CURSOR_RESET, {"cursor": self._cursor_id})
        # The reply reported the refreshed snapshot's epoch (observed by
        # _call), so advancing the floor kills exactly the entries older
        # than the state this resequenced browse will see.
        self._manager.cache.invalidate()

    def current(self) -> Optional[Oid]:
        reply = self._call(
            P.OP_CURSOR_CURRENT, {"cursor": self._cursor_id})
        text = reply.get("oid")
        return Oid.parse(text) if text else None

    def seek(self, oid: Oid) -> None:
        self._call(
            P.OP_CURSOR_SEEK, {"cursor": self._cursor_id, "oid": str(oid)})

    def close(self) -> None:
        if self._manager.database.client.generation != self._generation:
            return  # the server session (and the cursor with it) is gone
        self._manager._call(P.OP_CURSOR_CLOSE, {"cursor": self._cursor_id})


class RemoteObjectManager:
    """The object manager's interface, served over the wire."""

    def __init__(self, database: "RemoteDatabase"):
        self.database = database
        self.schema = database.schema
        self.cache = BufferCache()
        self.indexes = RemoteIndexManager(self)
        #: EXPLAIN text of the last server-planned selection (see
        #: select_pushdown/explain); the statistics window shows the
        #: server's own via the STATS "statistics" rows.
        self.last_explain: Optional[str] = None
        self._version_manager: Optional[RemoteVersionManager] = None
        self._txid: Optional[int] = None         # open remote transaction
        self._tx_generation: Optional[int] = None  # connection it lives on

    def _call(self, opcode: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        payload.setdefault("db", self.database.name)
        reply = self.database.client.call(opcode, payload)
        self.cache.observe_epoch(reply.get("epoch"))
        return reply

    @property
    def epoch(self) -> int:
        """Newest server commit epoch this client has observed."""
        return self.cache.latest

    @contextmanager
    def pinned(self) -> Iterator[None]:
        """Consistency pinning is a no-op over the wire.

        The *server* pins a snapshot per request (and per cursor), so a
        remote client cannot hold one epoch across several round trips;
        callers written against the local manager's ``pinned()`` (e.g.
        synchronized browsing) still run unchanged.
        """
        yield None

    @property
    def versions(self) -> RemoteVersionManager:
        if self._version_manager is None:
            self._version_manager = RemoteVersionManager(self)
        return self._version_manager

    # -- reads -------------------------------------------------------------------

    def get_buffer(self, oid: Oid):
        cached = self.cache.get(oid)
        if cached is not None:
            return cached
        reply = self._call(P.OP_GET_OBJECT, {"oid": str(oid)})
        buffer = P.buffer_from_value(reply["buffer"])
        self.cache.put(buffer, reply.get("epoch"))
        return buffer

    def get_buffers(self, oids: List[Oid]) -> List[Any]:
        """Fetch many buffers, one round trip for all cache misses."""
        missing = [oid for oid in oids if self.cache.get(oid) is None]
        if missing:
            reply = self._call(
                P.OP_GET_OBJECTS, {"oids": [str(oid) for oid in missing]})
            for value in reply["buffers"]:
                self.cache.put(P.buffer_from_value(value), reply.get("epoch"))
        return [self.get_buffer(oid) for oid in oids]

    def scan(self, class_name: str) -> List[Any]:
        """The whole cluster, fetched in SCAN_BATCH pages through the cache."""
        buffers: List[Any] = []
        after = -1
        while True:
            reply = self._call(P.OP_SCAN_CLUSTER, {
                "class": class_name, "after": after, "limit": SCAN_BATCH,
            })
            for value in reply["buffers"]:
                buffer = P.buffer_from_value(value)
                self.cache.put(buffer, reply.get("epoch"))
                buffers.append(buffer)
            after = reply["after"]
            if reply["done"] or not reply["buffers"]:
                return buffers

    def cluster(self, class_name: str) -> RemoteCluster:
        self.schema.get_class(class_name)
        return RemoteCluster(self, class_name)

    def count(self, class_name: str) -> int:
        return self._call(P.OP_COUNT, {"class": class_name})["count"]

    def exists(self, oid: Oid) -> bool:
        if self.cache.get(oid) is not None:
            return True
        return self._call(P.OP_EXISTS, {"oid": str(oid)})["exists"]

    def cursor(self, class_name: str, predicate=None) -> RemoteCursor:
        return RemoteCursor(self, class_name, predicate)

    def watch(self, clusters: Optional[List[str]] = None, on_refresh=None):
        """Attach a CDC push subscription that keeps this cache fresh.

        From here on the cache invalidates *precisely*: each server
        push evicts exactly the OIDs that changed and re-certifies the
        rest, so a browse over a hot database stops re-fetching objects
        that did not move.  *on_refresh* (optional) is called after the
        cache has absorbed each event — on a network thread, so it must
        be quick and must not call back into the connection; UIs should
        post to their event loop (see ``core.sync.ReactiveBrowse``).

        Returns the :class:`~repro.cdc.Subscription`; closing it stops
        the pushes and the cache falls back to wholesale invalidation.
        """
        cache = self.cache

        def _absorb(event) -> None:
            if event.lost:
                cache.purge()  # no delta knowledge survives the session
            elif event.resync:
                cache.note_resync(event.epoch)
            else:
                cache.apply_delta(event.epoch, event.oids())
            if on_refresh is not None:
                try:
                    on_refresh(event)
                except Exception:
                    from repro.obs import get_registry
                    get_registry().counter(
                        "cdc.client.callback_errors").inc()

        subscription = self.database.client.subscribe(
            self.database.name, clusters=clusters, on_event=_absorb)
        # Events racing this call are already sound: apply_delta with
        # no basis degrades to a wholesale cut at the event's epoch.
        cache.begin_deltas(subscription.epoch)
        return subscription

    def select(self, class_name: str, predicate=None) -> Iterator[Any]:
        for buffer in self.scan(class_name):
            if predicate is None or predicate(buffer):
                yield buffer

    def select_pushdown(self, class_name: str, condition: str,
                        force: Optional[str] = None,
                        privileged: bool = False) -> List[Any]:
        """Planned selection on the *server*: one round trip ships the
        condition string; the server's cost model picks index-probe vs
        scan against its statistics and returns only the matches (the
        paper's §5.2 pushdown, now with index acceleration).  The plan's
        EXPLAIN text is kept at ``last_explain`` for the statistics
        window."""
        payload: Dict[str, Any] = {"class": class_name,
                                   "condition": condition}
        if force is not None:
            payload["force"] = force
        if privileged:
            payload["privileged"] = True
        reply = self._call(P.OP_SELECT, payload)
        self.last_explain = reply.get("explain")
        buffers = []
        for value in reply["buffers"]:
            buffer = P.buffer_from_value(value)
            self.cache.put(buffer, reply.get("epoch"))
            buffers.append(buffer)
        return buffers

    def explain(self, class_name: str, condition: str,
                force: Optional[str] = None,
                privileged: bool = False) -> Dict[str, Any]:
        """The server's plan for a condition, without executing it."""
        payload: Dict[str, Any] = {"class": class_name,
                                   "condition": condition}
        if force is not None:
            payload["force"] = force
        if privileged:
            payload["privileged"] = True
        reply = self._call(P.OP_EXPLAIN, payload)
        self.last_explain = reply.get("explain")
        return reply

    # -- writes ------------------------------------------------------------------

    def _check_transaction_live(self) -> None:
        """A write inside an open transaction must reach *that* session.

        If the connection was dropped since ``begin``, the server has
        already aborted the transaction; sending the write to a fresh
        session would silently autocommit it outside the transaction.
        Fail fast instead — the caller aborts locally and begins again.
        """
        if (self._txid is not None
                and self.database.client.generation != self._tx_generation):
            raise TransactionError(
                "transaction lost: the connection to the server dropped "
                "mid-transaction and the server rolled it back; abort and "
                "begin again")

    def new_object(self, class_name: str,
                   values: Optional[Mapping[str, Any]] = None,
                   oid: Optional[Oid] = None) -> Oid:
        self._check_transaction_live()
        payload: Dict[str, Any] = {
            "class": class_name, "values": dict(values or {})}
        if oid is not None:
            payload["oid"] = str(oid)
        reply = self._call(P.OP_NEW_OBJECT, payload)
        return Oid.parse(reply["oid"])

    def update(self, oid: Oid, updates: Mapping[str, Any]):
        self._check_transaction_live()
        reply = self._call(
            P.OP_UPDATE, {"oid": str(oid), "updates": dict(updates)})
        # Triggers may have touched other objects, and inside an open
        # transaction the new state is uncommitted overlay data that no
        # epoch describes — purge physically rather than by epoch.
        self.cache.purge()
        buffer = P.buffer_from_value(reply["buffer"])
        self.cache.put(buffer)
        return buffer

    def delete(self, oid: Oid) -> None:
        self._check_transaction_live()
        self._call(P.OP_DELETE, {"oid": str(oid)})
        self.cache.purge()

    # -- transactions ------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txid is not None

    def _end_transaction(self) -> None:
        if self._txid is not None:
            self._txid = None
            self._tx_generation = None
            self.database.client.release_session()

    def begin(self) -> int:
        txid = self._call(P.OP_BEGIN, {})["txid"]
        self._txid = txid
        self._tx_generation = self.database.client.generation
        # Pin the session: while the transaction is open, a connection
        # failure raises SessionLostError instead of reconnecting.
        self.database.client.retain_session()
        return txid

    def commit(self) -> None:
        self._check_transaction_live()
        try:
            self._call(P.OP_COMMIT, {})
        finally:
            # Whatever the outcome, the server session no longer has a
            # transaction: op_commit clears it on both success and error.
            # Entries cached during the transaction were overlay reads
            # tagged with the pre-commit epoch; purge physically.
            self._end_transaction()
            self.cache.purge()

    def abort(self) -> None:
        if (self._txid is not None
                and self.database.client.generation != self._tx_generation):
            # The server aborted the orphan when the connection died;
            # only local bookkeeping is left to clean up.
            self._end_transaction()
            self.cache.purge()
            return
        try:
            self._call(P.OP_ABORT, {})
        finally:
            # Abort reverts without minting an epoch, so overlay reads
            # cached during the transaction can only be dropped physically.
            self._end_transaction()
            self.cache.purge()


class RemoteDatabase:
    """A server-hosted database, presented like a local one."""

    #: Lets callers (statistics, CLI) branch without importing this module.
    remote = True

    def __init__(self, client: OdeClient, name: str):
        self.client = client
        reply = client.call(P.OP_OPEN_DATABASE, {"db": name})
        self.name = reply["name"]
        self.schema = Schema.from_dict(reply["schema"])
        self.icon = reply["icon"]
        self.objects = RemoteObjectManager(self)
        self._display_dir: Optional[Path] = None

    @classmethod
    def connect(cls, host: str, port: int, name: str,
                timeout: float = 10.0, replicas=None,
                **client_kwargs) -> "RemoteDatabase":
        """Connect to *name* served at ``host:port`` (the primary).

        ``replicas=[(host, port), ...]`` names read replicas the
        client may route per-object reads to; the
        :class:`~repro.net.client.OdeClient` epoch floor guarantees
        the session still reads its own writes and never steps
        backwards in time (see client docs).
        """
        client = OdeClient(host, port, timeout=timeout,
                           replicas=replicas, **client_kwargs)
        client.connect()
        try:
            return cls(client, name)
        except Exception:
            client.close()
            raise

    # -- the display-function protocol -------------------------------------------

    @property
    def display_dir(self) -> Path:
        """Display modules, fetched from the server into a local directory.

        The dynamic linker loads display functions into the *client's*
        address space (paper §4.6: the object-interactor, not the
        database, runs display code), so the sources must exist locally.
        """
        if self._display_dir is None:
            reply = self.client.call(
                P.OP_GET_DISPLAY_MODULES, {"db": self.name})
            directory = Path(tempfile.mkdtemp(prefix=f"odeview-{self.name}-"))
            for filename, source in sorted(reply["modules"].items()):
                (directory / filename).write_text(source, encoding="utf-8")
            self._display_dir = directory
        return self._display_dir

    # -- maintenance ---------------------------------------------------------------

    def subscribe(self, clusters=None, on_event=None):
        """Raw change feed for this database (no cache coupling); see
        :meth:`RemoteObjectManager.watch` for the cache-coupled form."""
        return self.client.subscribe(
            self.name, clusters=clusters, on_event=on_event)

    def watch(self, clusters=None, on_refresh=None):
        """Reactive browsing: push-invalidate the object cache; see
        :meth:`RemoteObjectManager.watch`."""
        return self.objects.watch(clusters=clusters, on_refresh=on_refresh)

    def vacuum(self) -> int:
        reclaimed = self.client.call(P.OP_VACUUM, {"db": self.name})["reclaimed"]
        self.objects.cache.purge()
        return reclaimed

    def server_stats(self) -> Dict[str, Any]:
        return self.client.call(P.OP_STATS, {"db": self.name})

    def group_commit_stats(self) -> Dict[str, Any]:
        """The server store's commit-barrier numbers (batch sizes, the
        one-fsync-per-batch counters, commit wait latency) — the remote
        face of :meth:`repro.ode.store.ObjectStore.group_commit_stats`.
        Writes from many clients batch on the server's barrier, so this
        is where a tuning pass reads the effect of
        ``group_commit_window_ms``."""
        return self.server_stats().get("group_commit", {})

    def close(self) -> None:
        try:
            self.client.close()
        except NetworkError:
            pass
        if self._display_dir is not None:
            shutil.rmtree(self._display_dir, ignore_errors=True)
            self._display_dir = None
