"""OdeServer: socket servers hosting Ode databases over the wire protocol.

One server process owns the databases (and therefore their directory
locks); any number of OdeView front ends connect and browse the same
data concurrently — the paper's multi-user premise made literal.

Two I/O cores share one hosting layer (:class:`ServerCore`) and one
request dispatcher (:class:`~repro.net.session.ServerSession`):

:class:`AsyncOdeServer` (the default)
    an ``asyncio`` event loop on one background thread.  Connections
    are coroutines, frames reassemble incrementally from whatever the
    socket has, snapshot reads run inline on the loop, and writes hop
    to a small executor for the group-commit stage/wait so the loop
    never blocks on an fsync.  Connection count is bounded by file
    descriptors, not OS threads.

:class:`ThreadedOdeServer`
    the original accept-thread + thread-per-connection core, kept for
    one release as the A/B baseline (``--io-model threaded``).  Each
    connection's session takes the target database's write lock per
    mutation; readers are lock-free either way (MVCC snapshots).

``OdeServer(...)`` is a factory: it honours the ``io_model`` keyword,
then the ``ODE_IO_MODEL`` environment variable, and defaults to the
event-loop core — so every existing caller (tests, CLI, benchmarks)
exercises the async server without change.

Shutdown drains gracefully on both cores: the listener closes first
(no new connections), in-flight requests finish, replication feeds
close (unparking long-pollers with a clean error), and if connections
fail to drain the group-commit barrier cancels its parked waiters
rather than leaking them past the drain deadline.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cdc.router import ChangeRouter
from repro.errors import NetworkError, OdeError, StorageError
from repro.net import protocol as P
from repro.net.rwlock import ReadWriteLock
from repro.net.session import HostedDatabase, ServerSession
from repro.obs.metrics import get_registry
from repro.ode.database import Database
from repro.repl.feed import ReplicationFeed
from repro.repl.replica import ReplicaApplier, bootstrap_replica

#: How long a threaded connection blocks in recv before re-checking the
#: server's stop flag.  The event-loop core has no such poll — its
#: readers park on the selector — but keeps the knob for API parity.
_POLL_SECONDS = 0.5

#: How long shutdown waits for in-flight connection threads to drain.
_DRAIN_SECONDS = 5.0

#: Listen backlog.  Sized for the connection-count sweep: a 4096-client
#: ramp connects in waves larger than the old backlog of 32.
_LISTEN_BACKLOG = 512


class PushChannel:
    """Serialized frame writes to one connection's socket.

    Replies (the connection thread) and unsolicited CDC events (one
    pump thread per subscription) share a socket; the channel's lock
    keeps their frames from interleaving mid-write.  A wedged peer can
    only wedge its own channel — every other connection, and the commit
    path, write elsewhere.
    """

    def __init__(self, conn: socket.socket):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, request_id: int, opcode: int,
             payload: Optional[Dict[str, Any]] = None) -> int:
        with self._lock:
            return P.write_frame(self._conn, request_id, opcode, payload)

    def send_push(self, opcode: int, payload: Dict[str, Any]) -> int:
        """An unsolicited frame: request id 0 marks it as no one's reply."""
        return self.send(0, opcode, payload)


class ServerCore:
    """Everything both I/O cores share: hosting, replication, stats.

    Owns the databases, their replication feeds and change routers, the
    replica appliers, the session-id well, and the request metrics.
    Subclasses provide the transport: ``start``, ``port``, ``shutdown``
    and whatever moves frames.
    """

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, poll_seconds: float = _POLL_SECONDS,
                 replica_of: Optional[Tuple[str, int]] = None,
                 replica_peers: Optional[List[Tuple[str, int]]] = None,
                 cdc_flush_seconds: Optional[float] = None,
                 **database_kwargs):
        self.root = Path(root)
        self.host = host
        self._requested_port = port
        #: Stop-flag poll interval, also the threaded core's per-
        #: connection recv timeout.  Torture tests shrink it so a
        #: shutdown with stuck connections drains quickly.
        self.poll_seconds = poll_seconds
        #: CDC flush tick: with a value set, each subscriber's pump
        #: batches a burst of commits into one merged OP_CDC_EVENT per
        #: tick.  None (the default) ships one frame per commit.
        self.cdc_flush_seconds = cdc_flush_seconds
        #: ``(host, port)`` of the primary when serving as a read
        #: replica: databases are cloned from there at start, kept
        #: current by one applier thread each, and writes are refused.
        self.replica_of = replica_of
        #: Other members of the replica set (``(host, port)`` pairs).
        #: Appliers probe these after losing the upstream to discover a
        #: promoted, higher-term primary and re-target themselves.
        self.replica_peers = list(replica_peers or [])
        self._database_kwargs = database_kwargs
        self._hosted: Dict[str, HostedDatabase] = {}
        self._feeds: Dict[str, ReplicationFeed] = {}
        self._routers: Dict[str, ChangeRouter] = {}
        self._appliers: Dict[str, ReplicaApplier] = {}
        self._stopping = threading.Event()
        # itertools.count, NOT iter(range(...)): a finite range would
        # eventually StopIteration inside the accept path and the server
        # would silently stop taking connections.
        self._session_ids = itertools.count(1)
        self._active_sessions = 0
        self._active_lock = threading.Lock()

        registry = get_registry()
        self._m_bytes_in = registry.counter("net.server.bytes_in")
        self._m_bytes_out = registry.counter("net.server.bytes_out")
        self._m_sessions_opened = registry.counter("net.server.sessions.opened")
        self._m_sessions_closed = registry.counter("net.server.sessions.closed")
        self._m_errors = registry.counter("net.server.errors")
        self._m_request_seconds = registry.histogram("net.server.request_seconds")
        #: Reader loop iterations; on an idle server this should sit
        #: still — the "no recv-poll wakeups" contract has a test.
        self._m_wakeups = registry.counter("net.server.wakeups")
        self._m_requests: Dict[int, object] = {}

    # -- database hosting --------------------------------------------------------

    def _discover(self) -> None:
        """Open every database directory directly under the root.

        A directory is a database iff it has a catalog file; the root
        itself may also be a single database directory.
        """
        candidates = []
        if (self.root / "catalog.json").exists():
            candidates.append(self.root)
        else:
            candidates.extend(
                path for path in sorted(self.root.iterdir())
                if path.is_dir() and (path / "catalog.json").exists()
            )
        if not candidates:
            raise StorageError(f"no databases found under {self.root}")
        for path in candidates:
            database = Database.open(path, **self._database_kwargs)
            self._hosted[database.name] = HostedDatabase(
                database, ReadWriteLock())
            # Every hosted database gets a feed, whatever the role: on
            # a primary it serves replicas; on a replica it makes the
            # node a valid upstream for chained replication (the
            # store's subscribe hook fires on replicated applies too).
            self._feeds[database.name] = ReplicationFeed(database.store)
            # ... and a change router, for the same reason: a replica
            # serves CDC from its own applied feed, so push fan-out
            # scales with the replica set instead of piling onto the
            # primary.
            self._routers[database.name] = ChangeRouter(
                database.name, database.store)

    def _bootstrap_from_primary(self) -> None:
        """Clone the primary's databases that are missing under root."""
        from repro.net.client import OdeClient

        host, port = self.replica_of
        client = OdeClient(host, port)
        try:
            names = client.call(P.OP_LIST_DATABASES, {})["databases"]
            if not names:
                raise StorageError(f"primary {host}:{port} hosts no databases")
            for name in names:
                if not (self.root / f"{name}.odb" / "catalog.json").exists():
                    bootstrap_replica(self.root, name, client)
        finally:
            client.close()

    def _start_appliers(self) -> None:
        host, port = self.replica_of
        for name, entry in self._hosted.items():
            self._appliers[name] = ReplicaApplier(
                entry.database, host, port,
                peers=self.replica_peers).start()

    def _stop_appliers(self) -> None:
        for applier in self._appliers.values():
            applier.stop()
        self._appliers.clear()

    def promote(self) -> Dict[str, int]:
        """Promote this replica to primary; returns ``{db: new term}``.

        Stops the appliers (no more units pulled from the dead or
        demoted upstream), flips the role to primary (write_prepare
        stops refusing), and durably mints the next fenced term in every
        database's WAL — in that order, so by the time a write can be
        accepted its term fence is already on disk.  Idempotent on a
        primary: no appliers to stop, but a fresh term is still minted
        (each call is one promotion; callers must not blind-retry it).
        The feeds and change routers were created at start regardless of
        role, so replicas and CDC subscribers of this node keep working
        across the flip — downstream appliers see the raised term in
        their next fetch and resync under it.
        """
        self._stop_appliers()
        self.replica_of = None
        return {name: entry.database.store.promote_term()
                for name, entry in sorted(self._hosted.items())}

    def _close_feeds(self) -> None:
        """Close the replication feeds, unparking long-pollers cleanly."""
        for feed in self._feeds.values():
            feed.close()

    def _cancel_commit_waiters(self) -> None:
        """Fail parked ``commit_wait`` callers with a clean error.

        The drain-deadline escape hatch: a connection wedged on the
        group-commit barrier (e.g. behind a fault proxy) must not leak
        past shutdown — cancelling the barrier wakes it with a typed
        :class:`~repro.errors.GroupCommitError` instead.
        """
        for entry in self._hosted.values():
            try:
                entry.database.store.cancel_commit_waits(
                    "server shutting down")
            except Exception:
                get_registry().counter("net.teardown_error").inc()

    def _close_hosted(self) -> None:
        """Tear down routers and databases (run from the caller's thread)."""
        for router in self._routers.values():
            router.close()
        for entry in self._hosted.values():
            try:
                entry.database.close()
            except OdeError:
                # A simulated crash or failed recovery already tore the
                # store down; the directory lock still gets released.
                get_registry().counter("net.teardown_error").inc()
        self._hosted.clear()
        self._feeds.clear()
        self._routers.clear()

    def hosted(self, name: str) -> HostedDatabase:
        entry = self._hosted.get(name)
        if entry is None:
            raise StorageError(f"server does not host a database named {name!r}")
        return entry

    def feed(self, name: str) -> ReplicationFeed:
        feed = self._feeds.get(name)
        if feed is None:
            raise StorageError(f"server does not host a database named {name!r}")
        return feed

    def router(self, name: str) -> ChangeRouter:
        router = self._routers.get(name)
        if router is None:
            raise StorageError(f"server does not host a database named {name!r}")
        return router

    def applier(self, name: str) -> ReplicaApplier:
        applier = self._appliers.get(name)
        if applier is None:
            raise StorageError(f"no replication applier for {name!r}")
        return applier

    @property
    def role(self) -> str:
        return "replica" if self.replica_of else "primary"

    @property
    def is_replica(self) -> bool:
        return self.replica_of is not None

    @property
    def primary_address(self) -> Optional[str]:
        if self.replica_of is None:
            return None
        host, port = self.replica_of
        return f"{host}:{port}"

    def replication_stats(self, name: str) -> Dict[str, Any]:
        """Role-appropriate replication detail for one database."""
        applier = self._appliers.get(name)
        if applier is not None:
            return applier.stats()
        feed = self._feeds.get(name)
        return feed.stats() if feed is not None else {}

    def database_names(self) -> List[str]:
        return sorted(self._hosted)

    @property
    def active_sessions(self) -> int:
        with self._active_lock:
            return self._active_sessions

    def _session_started(self) -> None:
        self._m_sessions_opened.inc()
        with self._active_lock:
            self._active_sessions += 1

    def _session_finished(self) -> None:
        with self._active_lock:
            self._active_sessions -= 1
        self._m_sessions_closed.inc()

    def _request_counter(self, opcode: int):
        counter = self._m_requests.get(opcode)
        if counter is None:
            counter = get_registry().counter(
                f"net.server.requests.{P.opcode_name(opcode)}")
            self._m_requests[opcode] = counter
        return counter

    # -- lifecycle (shared surface) ----------------------------------------------

    def start(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def shutdown(self, drain: float = _DRAIN_SECONDS) -> None:  # pragma: no cover
        raise NotImplementedError

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` is called (e.g. from a signal).

        No busy poll: the stop event parks this thread.  The wait is
        chunked only so the main thread stays promptly interruptible by
        KeyboardInterrupt — one wakeup a minute, not two a second.
        """
        if not self.started:
            self.start()
        while not self._stopping.is_set():
            self._stopping.wait(60.0)

    @property
    def started(self) -> bool:  # pragma: no cover - trivial override hook
        return False

    def __enter__(self) -> "ServerCore":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()


class ThreadedOdeServer(ServerCore):
    """The original threaded core: accept thread + thread per connection."""

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, poll_seconds: float = _POLL_SECONDS,
                 replica_of: Optional[Tuple[str, int]] = None,
                 replica_peers: Optional[List[Tuple[str, int]]] = None,
                 cdc_flush_seconds: Optional[float] = None,
                 **database_kwargs):
        super().__init__(root, host=host, port=port,
                         poll_seconds=poll_seconds, replica_of=replica_of,
                         replica_peers=replica_peers,
                         cdc_flush_seconds=cdc_flush_seconds,
                         **database_kwargs)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._threads_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Open the databases and begin accepting connections."""
        if self._listener is not None:
            raise NetworkError("server already started")
        if self.replica_of is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._bootstrap_from_primary()
        self._discover()
        if self.replica_of is not None:
            self._start_appliers()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(_LISTEN_BACKLOG)
        listener.settimeout(self.poll_seconds)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ode-server-accept", daemon=True)
        self._accept_thread.start()

    @property
    def started(self) -> bool:
        return self._accept_thread is not None

    @property
    def port(self) -> int:
        if self._listener is None:
            raise NetworkError("server not started")
        return self._listener.getsockname()[1]

    def shutdown(self, drain: float = _DRAIN_SECONDS) -> None:
        """Stop accepting, let in-flight requests finish, close databases."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                get_registry().counter("net.teardown_error").inc()
        self._stop_appliers()
        # Before joining connection threads: a fetch parked on a feed's
        # long poll wakes immediately with a clean error instead of
        # riding out its wait against the drain budget.
        self._close_feeds()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain)
        with self._threads_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=drain)
        if any(thread.is_alive() for thread in threads):
            # Something is still parked past the drain deadline — most
            # likely on the group-commit barrier behind a wedged peer.
            # Cancel the waiters (clean GroupCommitError) and give the
            # threads one more beat to exit.
            self._cancel_commit_waiters()
            for thread in threads:
                thread.join(timeout=1.0)
        self._close_hosted()
        self._listener = None
        self._accept_thread = None

    # -- connection handling -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            # Allocated here, on the single accept thread: the plain
            # iterator needs no lock and ids are never duplicated.
            session_id = next(self._session_ids)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, session_id),
                name="ode-server-conn", daemon=True)
            with self._threads_lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, session_id: int) -> None:
        conn.settimeout(self.poll_seconds)
        session = ServerSession(self, session_id, channel=PushChannel(conn))
        self._session_started()
        try:
            while not self._stopping.is_set():
                try:
                    frame = P.read_frame(conn, idle_ok=True)
                except P.IdleTimeout:
                    self._m_wakeups.inc()
                    continue  # no frame started; re-check the stop flag
                except NetworkError:
                    break  # closed, stalled, or corrupt: drop the connection
                self._handle_frame(session, frame)
        finally:
            session.close()
            self._session_finished()
            try:
                conn.close()
            except OSError:
                get_registry().counter("net.teardown_error").inc()

    def _handle_frame(self, session: ServerSession, frame: P.Frame) -> None:
        self._m_bytes_in.inc(frame.wire_size)
        self._request_counter(frame.opcode).inc()
        with self._m_request_seconds.time():
            try:
                result = session.dispatch(frame.opcode, frame.payload)
                reply_op, reply = P.OP_REPLY, result
            except Exception as exc:  # marshal any failure to the client
                self._m_errors.inc()
                reply_op = P.OP_ERROR
                reply = {"kind": type(exc).__name__, "message": str(exc)}
        try:
            # Through the channel: replies must not tear a CDC push
            # frame a subscription pump is writing concurrently.
            sent = session.channel.send(frame.request_id, reply_op, reply)
            self._m_bytes_out.inc(sent)
        except NetworkError:
            pass  # client vanished mid-reply; the finally block cleans up


def OdeServer(root: Union[str, Path], host: str = "127.0.0.1",
              port: int = 0, io_model: Optional[str] = None,
              **kwargs) -> ServerCore:
    """Build a server with the selected I/O core.

    Selection order: the ``io_model`` keyword, then the ``ODE_IO_MODEL``
    environment variable, then the default (``async``).  Keeping the
    constructor-shaped factory under the old name means every existing
    call site — tests, fixtures, the CLI, benchmarks — runs against the
    event-loop core unchanged, and can pin the threaded baseline with
    one keyword or one environment variable.
    """
    model = (io_model or os.environ.get("ODE_IO_MODEL") or "async").lower()
    if model in ("threaded", "thread", "threads"):
        return ThreadedOdeServer(root, host=host, port=port, **kwargs)
    if model in ("async", "asyncio", "loop"):
        from repro.net.aserver import AsyncOdeServer

        return AsyncOdeServer(root, host=host, port=port, **kwargs)
    raise NetworkError(
        f"unknown io model {model!r}; expected 'async' or 'threaded'")
