"""AsyncOdeServer: the event-loop I/O core.

One ``asyncio`` loop on one background thread replaces the accept
thread and the thread-per-connection fleet.  Connections are
coroutines, so their cost is a file descriptor and a small heap object
— the connection-count ceiling moves from "how many OS threads can the
box stand" to the fd limit.

Division of labour around the loop:

reads
    dispatched inline on the loop.  MVCC makes them lock-free (each
    request pins a snapshot), so there is nothing to wait on and a hop
    to another thread would only add latency.
writes
    serialized per database by an ``asyncio.Lock`` (the thread-affine
    rw-lock cannot follow a request across executor threads) and run on
    a small thread pool in two steps: ``write_prepare`` — overlay apply
    plus ``commit_stage`` — under the lock, then ``commit_wait`` with
    the lock *released*, so the loop never blocks on an fsync and
    concurrent sessions' commits batch into one ``wal.group.sync``.
CDC push
    loop-native pump tasks.  The subscriber's wakeup notifier posts to
    the loop (``call_soon_threadsafe``), the pump drains the bounded
    queue and writes frames through the connection's serialized writer
    — an idle subscription parks on an event and costs zero wakeups.
replication long-poll
    loop-native too: an ``OP_REPL_FETCH`` with nothing to stream parks
    an ``asyncio.Event`` registered as a feed waiter instead of a
    thread in the feed's condition variable.

Backpressure is the transport's: replies and pushes go through
``StreamWriter.drain()``, so a peer that stops reading suspends only
its own connection's coroutines at the transport high-water mark; the
commit path and every other connection keep moving.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cdc import CdcSubscriber, merge_summaries, summary_to_wire
from repro.errors import NetworkError, OdeError
from repro.net import protocol as P
from repro.net.server import (
    _DRAIN_SECONDS,
    _LISTEN_BACKLOG,
    _POLL_SECONDS,
    ServerCore,
)
from repro.net.session import ServerSession
from repro.obs import get_registry
from repro.repl.feed import MAX_WAIT_SECONDS

#: Bytes asked of the transport per reader iteration.  Large enough
#: that a bulk reply's worth of requests arrives in few syscalls, small
#: enough not to hoard buffers per connection.
_READ_CHUNK = 64 * 1024

#: Executor threads for the blocking slice of the write path
#: (``write_prepare`` + ``commit_wait``) and replica snapshots.  A
#: commit_wait parks a worker for at most one group flush — and the
#: barrier elects one of its own waiters as leader, so progress never
#: depends on a free worker beyond those already parked.
_EXECUTOR_WORKERS = 16


class _AsyncSubscription:
    """One CDC subscription's loop-side state (queue + pump task)."""

    __slots__ = ("sub_id", "db_name", "subscriber", "wake", "task")

    def __init__(self, sub_id: int, db_name: str,
                 subscriber: CdcSubscriber, wake: asyncio.Event):
        self.sub_id = sub_id
        self.db_name = db_name
        self.subscriber = subscriber
        self.wake = wake
        self.task: Optional[asyncio.Task] = None


class _AsyncConnection:
    """One client connection: reader coroutine, dispatcher, pumps."""

    def __init__(self, server: "AsyncOdeServer",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, session_id: int):
        self._server = server
        self._reader = reader
        self._writer = writer
        # No rw-lock participation (thread_locks=False): writes hop
        # executor threads, serialization is the server's asyncio lock.
        self._session = ServerSession(server, session_id, channel=None,
                                      thread_locks=False)
        #: Frame writes interleave from the dispatcher and any number of
        #: CDC pump tasks; the lock keeps them whole on the wire.
        self._wlock = asyncio.Lock()
        #: The per-database writer lock held across this session's open
        #: transaction (BEGIN..COMMIT/ABORT), else None.
        self._tx_lock: Optional[asyncio.Lock] = None
        self._subscriptions: Dict[int, _AsyncSubscription] = {}
        self._sub_ids = itertools.count(1)
        self._closing = False
        self._handling = False
        self.task: Optional[asyncio.Task] = None

    # -- reader loop -------------------------------------------------------------

    async def run(self) -> None:
        server = self._server
        server._session_started()
        reassembler = P.FrameReassembler()
        try:
            while not self._closing and not server._stopping.is_set():
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break  # peer closed; EOF, not a poll timeout
                server._m_wakeups.inc()
                self._handling = True
                try:
                    reassembler.feed(data)
                    while True:
                        frame = reassembler.next_frame()
                        if frame is None:
                            break
                        await self._handle_frame(frame)
                except P.ProtocolError:
                    break  # corrupt stream: drop the connection
                finally:
                    self._handling = False
        finally:
            self._teardown()

    def request_close(self) -> None:
        """Shutdown's wind-down signal (runs on the loop, no await).

        A connection mid-request finishes it — and gets its reply —
        before the loop condition breaks; one parked in ``read`` has no
        request in flight, so closing the transport just unparks it.
        """
        self._closing = True
        if not self._handling:
            try:
                self._writer.close()
            except Exception:
                pass

    def _teardown(self) -> None:
        """Synchronous cleanup — safe even when the task was cancelled
        (no awaits, so it cannot be re-interrupted mid-flight)."""
        server = self._server
        for sub in list(self._subscriptions.values()):
            sub.subscriber.close()
            try:
                server.router(sub.db_name).unregister(sub.subscriber)
            except OdeError:
                pass  # server shutting down; the router is already gone
            if sub.task is not None and not sub.task.done():
                sub.task.cancel()
        self._subscriptions.clear()
        try:
            self._session.close()  # aborts an open tx, drops cursor pins
        except Exception:
            get_registry().counter("net.teardown_error").inc()
        if self._tx_lock is not None:
            lock, self._tx_lock = self._tx_lock, None
            if lock.locked():
                lock.release()
        server._session_finished()
        try:
            self._writer.close()
        except Exception:
            pass

    # -- frame handling ----------------------------------------------------------

    async def _handle_frame(self, frame: P.Frame) -> None:
        server = self._server
        server._m_bytes_in.inc(frame.wire_size)
        server._request_counter(frame.opcode).inc()
        with server._m_request_seconds.time():
            try:
                result = await self._dispatch(frame.opcode, frame.payload)
                reply_op, reply = P.OP_REPLY, result
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # marshal any failure to the client
                server._m_errors.inc()
                reply_op = P.OP_ERROR
                reply = {"kind": type(exc).__name__, "message": str(exc)}
        try:
            sent = await self._send(frame.request_id, reply_op, reply)
            server._m_bytes_out.inc(sent)
        except (NetworkError, OSError, ConnectionError):
            pass  # client vanished mid-reply; the reader loop cleans up

    async def _send(self, request_id: int, opcode: int,
                    payload: Optional[Dict[str, Any]]) -> int:
        data = P.encode_frame(request_id, opcode, payload)
        async with self._wlock:
            self._writer.write(data)
            await self._writer.drain()
        return len(data)

    async def _dispatch(self, opcode: int,
                        payload: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session
        if opcode == P.OP_CDC_SUBSCRIBE:
            return await self._cdc_subscribe(payload)
        if opcode == P.OP_CDC_UNSUBSCRIBE:
            return await self._cdc_unsubscribe(payload)
        if opcode == P.OP_REPL_FETCH:
            return await self._repl_fetch(payload)
        if opcode in (P.OP_REPL_SNAPSHOT, P.OP_REPL_PROMOTE):
            # Snapshot: a full-state copy-out, too much CPU for the
            # loop.  Promote: fsyncs a TERM record per database — the
            # loop must never block on an fsync.
            return await asyncio.get_running_loop().run_in_executor(
                self._server._executor, session.dispatch, opcode, payload)
        if opcode in P.WRITE_OPCODES:
            return await self._dispatch_write(opcode, payload)
        # Everything else is a lock-free snapshot read (or session-local
        # cursor work): inline on the loop, no hop.
        return session.dispatch(opcode, payload)

    # -- writes ------------------------------------------------------------------

    async def _dispatch_write(self, opcode: int,
                              payload: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session
        loop = asyncio.get_running_loop()
        lock = self._tx_lock
        if lock is None:
            hosted = session.resolve_hosted(payload)
            lock = self._server._write_lock_for(hosted.database.name)
            await lock.acquire()
        staged: Optional[int] = None
        hosted = None
        try:
            result, staged, hosted = await loop.run_in_executor(
                self._server._executor, session.write_prepare, opcode,
                payload)
        finally:
            if session.tx_database is not None:
                # BEGIN (or a write inside the tx): the transaction owns
                # the writer lock until COMMIT/ABORT or disconnect.
                self._tx_lock = lock
            else:
                self._tx_lock = None
                lock.release()
        if staged is not None:
            # Writer lock is down: the fsync wait happens on the shared
            # group-commit barrier, where concurrent commits batch.
            await loop.run_in_executor(
                self._server._executor,
                hosted.database.objects.commit_wait, staged)
        result.setdefault("epoch", hosted.database.store.epoch)
        return result

    # -- replication long-poll ---------------------------------------------------

    async def _repl_fetch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session
        hosted = session.resolve_hosted(payload)
        feed = self._server.feed(hosted.database.name)
        after = payload.get("after", 0)
        if not isinstance(after, int) or after < 0:
            raise NetworkError(f"bad replication offset {after!r}")
        max_units = int(payload.get("max", 64))
        wait_seconds = min(
            max(int(payload.get("wait_ms", 0)) / 1000.0, 0.0),
            MAX_WAIT_SECONDS)
        loop = asyncio.get_running_loop()
        fetch = functools.partial(feed.fetch, after, max_units=max_units,
                                  wait_seconds=0.0)
        # In the executor, not inline: a fetch below the ring floor
        # re-reads units from the WAL file.
        result = await loop.run_in_executor(self._server._executor, fetch)
        if result["units"] or wait_seconds <= 0.0:
            return result
        # Nothing to stream yet: park loop-natively as a feed waiter.
        # The waiter fires on the committer's thread (and on feed
        # close), so it only posts the event back to the loop.
        wake = asyncio.Event()

        def notify() -> None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop already shut down

        feed.add_waiter(notify)
        try:
            try:
                await asyncio.wait_for(wake.wait(), wait_seconds)
            except asyncio.TimeoutError:
                pass  # empty long-poll: reply with no units
        finally:
            feed.remove_waiter(notify)
        # A closed feed (server shutdown) raises a clean NetworkError
        # here rather than leaving the poller parked past the drain.
        return await loop.run_in_executor(self._server._executor, fetch)

    # -- change-data-capture -----------------------------------------------------

    async def _cdc_subscribe(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session
        hosted = session.resolve_hosted(payload)
        database = hosted.database
        clusters = payload.get("clusters")
        if clusters is not None:
            clusters = tuple(str(c) for c in clusters)
            for name in clusters:
                database.schema.get_class(name)  # raises on unknown class
        capacity = payload.get("capacity")
        sub_id = next(self._sub_ids)
        subscriber = CdcSubscriber(sub_id, database.name, clusters=clusters,
                                   **({"capacity": capacity}
                                      if isinstance(capacity, int) else {}))
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()

        def notify() -> None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop already shut down

        subscriber.set_notifier(notify)
        sub = _AsyncSubscription(sub_id, database.name, subscriber, wake)
        router = self._server.router(database.name)
        # Same ordering proof as the threaded path: register BEFORE
        # reading the ack epoch, so no commit can fall between them
        # unseen — a duplicate at/below the ack epoch is harmless.
        router.register(subscriber)
        epoch = database.store.epoch
        self._subscriptions[sub_id] = sub
        sub.task = asyncio.create_task(self._pump(sub))
        return {"sub": sub_id, "epoch": epoch}

    async def _cdc_unsubscribe(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        sub = self._subscriptions.pop(payload.get("sub"), None)
        if sub is None:
            return {"closed": False}
        sub.subscriber.close()
        try:
            self._server.router(sub.db_name).unregister(sub.subscriber)
        except OdeError:
            pass
        if sub.task is not None:
            try:
                await asyncio.wait_for(sub.task, timeout=2.0)
            except asyncio.TimeoutError:
                sub.task.cancel()
            except Exception:
                pass
        return {"closed": True}

    async def _pump(self, sub: _AsyncSubscription) -> None:
        """Loop-native SubscriberPump: drain the queue, write frames.

        Parks on the subscription's wake event — zero idle wakeups.
        With the server's CDC flush tick set, a burst is merged into one
        frame per tick (:func:`~repro.cdc.summary.merge_summaries`);
        otherwise delivery is exactly one frame per commit.
        """
        registry = get_registry()
        m_events = registry.counter("cdc.batch.events_in")
        m_frames = registry.counter("cdc.batch.frames_out")
        m_merged = registry.counter("cdc.batch.merged")
        m_send_errors = registry.counter("cdc.send_errors")
        flush = self._server.cdc_flush_seconds
        subscriber = sub.subscriber
        while True:
            await sub.wake.wait()
            sub.wake.clear()
            if flush is not None and flush > 0.0 and not subscriber.closed:
                await asyncio.sleep(flush)  # let the burst land
            while True:
                batch = subscriber.drain()
                if not batch:
                    break
                if flush is None:
                    summaries = batch
                else:
                    summaries = [merge_summaries(batch)]
                    if len(batch) > 1:
                        m_merged.inc(len(batch) - 1)
                try:
                    for summary in summaries:
                        sent = await self._send(0, P.OP_CDC_EVENT, {
                            "db": sub.db_name, "sub": sub.sub_id,
                            **summary_to_wire(summary)})
                        self._server._m_bytes_out.inc(sent)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    m_send_errors.inc()
                    subscriber.close()
                    try:
                        self._server.router(sub.db_name).unregister(
                            subscriber)
                    except OdeError:
                        pass
                    return
                m_events.inc(len(batch))
                m_frames.inc(len(summaries))
            if subscriber.closed:
                return


class AsyncOdeServer(ServerCore):
    """The event-loop core: one loop thread, coroutine connections."""

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, poll_seconds: float = _POLL_SECONDS,
                 replica_of: Optional[Tuple[str, int]] = None,
                 replica_peers: Optional[List[Tuple[str, int]]] = None,
                 cdc_flush_seconds: Optional[float] = None,
                 **database_kwargs):
        super().__init__(root, host=host, port=port,
                         poll_seconds=poll_seconds, replica_of=replica_of,
                         replica_peers=replica_peers,
                         cdc_flush_seconds=cdc_flush_seconds,
                         **database_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._aserver: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections: set = set()
        self._write_locks: Dict[str, asyncio.Lock] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=_EXECUTOR_WORKERS,
            thread_name_prefix="ode-server-exec")

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Open the databases, then bring the loop up on its thread.

        Discovery/bootstrap runs synchronously here (same as the
        threaded core), so a bad root or a crashed open raises in the
        caller, not on a background thread.
        """
        if self._loop_thread is not None:
            raise NetworkError("server already started")
        if self.replica_of is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._bootstrap_from_primary()
        self._discover()
        if self.replica_of is not None:
            self._start_appliers()
        self._ready.clear()
        self._startup_error = None
        thread = threading.Thread(target=self._run_loop,
                                  name="ode-server-loop", daemon=True)
        self._loop_thread = thread
        thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            exc = self._startup_error
            thread.join(timeout=1.0)
            self._loop_thread = None
            self._loop = None
            self._stop_appliers()
            self._close_feeds()
            self._close_hosted()
            raise exc

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._on_connect, self.host, self._requested_port,
                    backlog=_LISTEN_BACKLOG))
            except BaseException as exc:
                self._startup_error = exc
                return
            self._aserver = server
            self._port = server.sockets[0].getsockname()[1]
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                # Straggler tasks (cancelled pumps, dying connections)
                # get one chance to unwind before the loop closes.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
        finally:
            self._ready.set()
            asyncio.set_event_loop(None)
            loop.close()

    @property
    def started(self) -> bool:
        return self._loop_thread is not None

    @property
    def port(self) -> int:
        if self._port is None:
            raise NetworkError("server not started")
        return self._port

    def shutdown(self, drain: float = _DRAIN_SECONDS) -> None:
        """Stop accepting, drain in-flight requests, close databases."""
        self._stopping.set()
        self._stop_appliers()
        loop, thread = self._loop, self._loop_thread
        if loop is None or thread is None or not thread.is_alive():
            # Never started (or the loop already died): just tear down
            # whatever hosting state exists.
            self._close_feeds()
            self._close_hosted()
            self._loop = None
            self._loop_thread = None
            self._executor.shutdown(wait=False, cancel_futures=True)
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown_async(drain), loop)
            future.result(timeout=drain + 5.0)
        except Exception:
            get_registry().counter("net.teardown_error").inc()
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass  # loop already stopped
        thread.join(timeout=drain)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._close_hosted()
        self._loop = None
        self._loop_thread = None
        self._aserver = None

    async def _shutdown_async(self, drain: float) -> None:
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        # Feeds first: a replication long-poll parked on a feed waiter
        # wakes immediately with a clean error instead of riding out
        # its wait against the drain budget.
        self._close_feeds()
        for conn in list(self._connections):
            conn.request_close()
        tasks = [conn.task for conn in list(self._connections)
                 if conn.task is not None and not conn.task.done()]
        if tasks:
            _done, pending = await asyncio.wait(tasks, timeout=drain)
            if pending:
                # Something is parked past the drain deadline — most
                # likely a commit_wait behind a wedged peer.  Cancel the
                # barrier's waiters (clean GroupCommitError), then give
                # the tasks one more beat before cancelling them.
                self._cancel_commit_waiters()
                _done2, still = await asyncio.wait(pending, timeout=1.0)
                for task in still:
                    task.cancel()
                if still:
                    await asyncio.wait(still, timeout=1.0)

    # -- connections -------------------------------------------------------------

    def _write_lock_for(self, name: str) -> asyncio.Lock:
        # Loop-thread only, so plain dict ops need no lock.
        lock = self._write_locks.get(name)
        if lock is None:
            lock = self._write_locks.setdefault(name, asyncio.Lock())
        return lock

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        if self._stopping.is_set():
            writer.close()
            return
        session_id = next(self._session_ids)
        conn = _AsyncConnection(self, reader, writer, session_id)
        conn.task = asyncio.current_task()
        self._connections.add(conn)
        try:
            await conn.run()
        except asyncio.CancelledError:
            raise
        except BaseException:
            # Includes simulated crashes from faultsim: the coordinator
            # (GroupCommit) already recorded the damage; here it only
            # kills this one connection, exactly like the thread it
            # replaced.
            get_registry().counter("net.teardown_error").inc()
        finally:
            self._connections.discard(conn)
