"""OdeClient: one connection from a front end to an OdeServer.

The client owns a single socket, hands out monotonically increasing
request ids, and matches replies to requests by id.  Two calling
conventions:

* :meth:`call` — one request, one reply (the common case);
* :meth:`call_many` — pipelining: write every request frame before
  reading any reply, so a batched cluster scan pays one round trip's
  latency instead of one per object.

Failure policy: requests whose opcode is in
:data:`~repro.net.protocol.READ_OPCODES` are idempotent and are retried
after a connection failure — bounded attempts, exponential backoff,
reconnecting in between.  Writes are never retried automatically: the
frame may have been applied before the connection died, and replaying it
would double-apply.

Reconnecting creates a *new server session*, and session-affine state
(an open transaction, sequencing cursors) does not survive: the server
aborts the orphaned transaction and discards the cursors.  Holders of
such state register it via :meth:`OdeClient.retain_session`; while any
is registered, a connection failure raises
:class:`~repro.errors.SessionLostError` instead of transparently
reconnecting — otherwise later writes would silently autocommit on the
fresh session, outside the transaction the caller believes is open.
Every dropped connection bumps :attr:`OdeClient.generation`, so state
holders can detect between their calls that the session they were
using is gone.

Server-reported failures arrive as ``OP_ERROR`` frames carrying the
exception's class name; the client re-raises the matching class from
:mod:`repro.errors`, so remote failures look exactly like local ones.
Re-raised remote errors are tagged ``remote=True``: even when the class
is a :class:`~repro.errors.NetworkError` subclass (the server validates
requests with it), the connection itself is healthy and is not dropped
or retried.

Replica routing.  Constructed with ``replicas=[(host, port), ...]``,
the client spreads per-object reads across the replica set, rotating
round-robin, with the primary as the fallback of last resort.  The
session invariant is *monotonic reads with read-your-writes*: the
client tracks an **epoch floor** — the highest epoch any reply it has
returned carried, commits included — and a routed reply below the
floor is discarded unseen (the replica lags this session) and the read
moves on to the next endpoint, ultimately the primary, whose epoch can
never trail an epoch it acked.  A replica that fails to answer is put
in a cooldown and the read fails over the same way.  Reads inside an
open transaction and every write bypass routing entirely — they are
session-affine to the primary.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.errors as errors
from repro.errors import NetworkError, OdeError, RemoteError, SessionLostError
from repro.net import protocol as P
from repro.obs.metrics import get_registry

#: Read opcodes the client may serve from a replica: per-object /
#: per-cluster data reads, where "which epoch answered" is well defined
#: and carried in the reply.  Catalog and maintenance reads (hello,
#: stats, display modules, ...) describe *a particular server* and
#: always go where the client points.
ROUTED_OPCODES = frozenset({
    P.OP_GET_OBJECT, P.OP_GET_OBJECTS, P.OP_SCAN_CLUSTER,
    P.OP_CLUSTER_NUMBERS, P.OP_COUNT, P.OP_EXISTS, P.OP_VERSION_HISTORY,
})

#: How long a replica sits out after a connection failure.
REPLICA_COOLDOWN_SECONDS = 1.0


class _ReplicaEndpoint:
    """One replica the client may route reads to."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        # No automatic retries: a flaky replica should fail over to the
        # next endpoint immediately, not sit in a backoff loop.
        self.client = OdeClient(host, port, timeout=timeout, retries=0)
        self.down_until = 0.0


def _raise_remote(payload: Dict[str, Any]) -> None:
    """Re-raise an OP_ERROR payload as its local exception class.

    The exception is tagged ``remote=True``: it reports the *server's*
    verdict on a request the connection delivered fine.  The retry loop
    checks the tag so a remote ``NetworkError`` (the server's request
    validation) is never mistaken for a dead connection.
    """
    kind = str(payload.get("kind", "OdeError"))
    message = str(payload.get("message", ""))
    cls = getattr(errors, kind, None)
    if isinstance(cls, type) and issubclass(cls, OdeError):
        exc = cls(message)
    else:
        exc = RemoteError(kind, message)
    exc.remote = True
    raise exc


class OdeClient:
    """A connection to an :class:`~repro.net.server.OdeServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 retries: int = 3, backoff: float = 0.05,
                 replicas: Optional[Sequence[Tuple[str, int]]] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self._sock: Optional[socket.socket] = None
        # itertools.count, NOT iter(range(...)): a long-lived client
        # must never exhaust its id space mid-session (StopIteration
        # out of an exchange would be indistinguishable from a bug).
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()
        # Replica routing state, guarded by its own lock: routing
        # decisions happen *before* the main request lock is taken.
        self._route_lock = threading.Lock()
        self._replicas = [
            _ReplicaEndpoint(rhost, rport, timeout)
            for rhost, rport in (replicas or [])
        ]
        self._route_next = 0
        self._epoch_floor = 0
        self.server_info: Dict[str, Any] = {}
        #: Bumped every time the connection is dropped — the moment the
        #: server session (and its transaction/cursors) dies.  Session-
        #: affine holders compare it to detect that their server-side
        #: state is gone, whether or not a reconnect happened yet.
        self.generation = 0
        self._session_resources = 0   # live session-affine resources
        self._session_generation: Optional[int] = None

        registry = get_registry()
        self._m_bytes_in = registry.counter("net.client.bytes_in")
        self._m_bytes_out = registry.counter("net.client.bytes_out")
        self._m_retries = registry.counter("net.client.retries")
        self._m_reconnects = registry.counter("net.client.reconnects")
        self._m_request_seconds = registry.histogram("net.client.request_seconds")
        self._m_requests: Dict[int, Any] = {}
        self._m_route_replica = registry.counter("net.route.replica")
        self._m_route_primary = registry.counter("net.route.primary")
        self._m_route_stale = registry.counter("net.route.stale")
        self._m_route_failover = registry.counter("net.route.failover")

    # -- connection management ---------------------------------------------------

    def connect(self) -> "OdeClient":
        """Open the socket and perform the HELLO handshake."""
        with self._lock:
            self._connect_locked()
        return self

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise NetworkError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        try:
            self.server_info = self._exchange_locked(
                P.OP_HELLO, {"version": P.PROTOCOL_VERSION})
        except OdeError:
            self._drop_locked()
            raise

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                get_registry().counter("net.teardown_error").inc()
            self._sock = None
            self.generation += 1

    def close(self) -> None:
        with self._lock:
            self._drop_locked()
        for endpoint in self._replicas:
            endpoint.client.close()

    # -- session-affine state ----------------------------------------------------

    def retain_session(self) -> None:
        """Register a live session-affine resource (an open transaction).

        While any resource is registered, a connection failure raises
        :class:`~repro.errors.SessionLostError` instead of reconnecting:
        the server has already aborted the transaction, and requests on
        a fresh session would autocommit outside it.
        """
        with self._lock:
            self._session_resources += 1
            if self._session_resources == 1:
                self._session_generation = self.generation

    def release_session(self) -> None:
        """Unregister a resource registered by :meth:`retain_session`."""
        with self._lock:
            self._session_resources = max(0, self._session_resources - 1)
            if self._session_resources == 0:
                self._session_generation = None

    def _check_session_locked(self) -> None:
        if (self._session_resources
                and self._session_generation != self.generation):
            raise SessionLostError(
                "server session lost: the connection dropped while a "
                "transaction was open; the server rolled it back — abort "
                "locally and begin again")

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "OdeClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- replica routing ---------------------------------------------------------

    @property
    def epoch_floor(self) -> int:
        """Highest epoch any reply returned by this client has carried.

        The session's monotonic-read watermark: no read this client
        returns will ever be served below it.
        """
        with self._route_lock:
            return self._epoch_floor

    def _observe_epoch(self, epoch: Any) -> None:
        if isinstance(epoch, int):
            with self._route_lock:
                if epoch > self._epoch_floor:
                    self._epoch_floor = epoch

    def _routable(self, opcode: int) -> bool:
        return (bool(self._replicas)
                and opcode in ROUTED_OPCODES
                # Transaction open: reads must see the session's own
                # uncommitted writes, which live only on the primary.
                and not self._session_resources)

    def _route_read(self, opcode: int,
                    payload: Optional[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
        """Try the replica set; ``None`` means "ask the primary".

        Serve-then-verify: the replica answers from whatever epoch it
        has applied, and the reply is *discarded* if that epoch is below
        the session floor — a stale answer is never returned, it only
        costs the hop to the next endpoint.
        """
        with self._route_lock:
            floor = self._epoch_floor
            start = self._route_next
            self._route_next = (self._route_next + 1) % len(self._replicas)
            now = time.monotonic()
            order = [
                endpoint
                for offset in range(len(self._replicas))
                for endpoint in [
                    self._replicas[(start + offset) % len(self._replicas)]]
                if endpoint.down_until <= now
            ]
        for endpoint in order:
            try:
                reply = endpoint.client.call(opcode, payload)
            except NetworkError as exc:
                if getattr(exc, "remote", False):
                    # The replica *served* the request and rejected it;
                    # let the primary give the authoritative verdict.
                    continue
                with self._route_lock:
                    endpoint.down_until = (
                        time.monotonic() + REPLICA_COOLDOWN_SECONDS)
                self._m_route_failover.inc()
                continue
            except OdeError:
                # A data-level verdict (e.g. "no such object") from a
                # replica that may simply not have applied the commit
                # yet: only the primary can refuse authoritatively.
                continue
            epoch = reply.get("epoch")
            if isinstance(epoch, int) and epoch < floor:
                self._m_route_stale.inc()
                continue
            self._observe_epoch(epoch)
            self._m_route_replica.inc()
            return reply
        self._m_route_primary.inc()
        return None

    # -- request / reply ---------------------------------------------------------

    def _exchange_locked(self, opcode: int,
                         payload: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """One request and its reply on the open socket.  Lock held."""
        request_id = next(self._request_ids)
        sent = P.write_frame(self._sock, request_id, opcode, payload)
        self._m_bytes_out.inc(sent)
        frame = P.read_frame(self._sock)
        self._m_bytes_in.inc(frame.wire_size)
        if frame.request_id != request_id:
            raise errors.ProtocolError(
                f"reply for request {frame.request_id}, expected {request_id}")
        if frame.opcode == P.OP_ERROR:
            _raise_remote(frame.payload)
        if frame.opcode != P.OP_REPLY:
            raise errors.ProtocolError(
                f"unexpected opcode {P.opcode_name(frame.opcode)} in reply")
        return frame.payload

    def call(self, opcode: int,
             payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Send one request; return the reply payload.

        Connection failures on idempotent (read) opcodes reconnect and
        retry with exponential backoff, up to ``retries`` extra attempts
        — unless session-affine state is registered, in which case any
        connection failure (and any reconnect that would discard that
        state) raises :class:`~repro.errors.SessionLostError` instead.
        """
        self._count_request(opcode)
        if self._routable(opcode):
            reply = self._route_read(opcode, payload)
            if reply is not None:
                return reply
        attempts = 1 + (self.retries if opcode in P.READ_OPCODES else 0)
        delay = self.backoff
        with self._m_request_seconds.time():
            with self._lock:
                for attempt in range(attempts):
                    try:
                        self._connect_locked()
                        self._check_session_locked()
                        result = self._exchange_locked(opcode, payload)
                        self._observe_epoch(result.get("epoch"))
                        return result
                    except errors.RemoteError:
                        raise
                    except SessionLostError:
                        raise
                    except NetworkError as exc:
                        if getattr(exc, "remote", False):
                            # The server rejected the request; the
                            # connection itself is healthy.
                            raise
                        self._drop_locked()
                        if self._session_resources:
                            raise SessionLostError(
                                "connection lost with a transaction open; "
                                "the server rolled it back") from exc
                        if attempt + 1 >= attempts:
                            raise
                        self._m_retries.inc()
                        self._m_reconnects.inc()
                        time.sleep(delay)
                        delay *= 2
        raise NetworkError("unreachable")  # pragma: no cover

    def call_many(self, requests: Sequence[Tuple[int, Dict[str, Any]]]
                  ) -> List[Dict[str, Any]]:
        """Pipeline several requests: write all frames, then read all replies.

        Replies are returned in request order.  A server-side error in
        any request raises after all replies are drained, so the
        connection stays usable.  Not retried: a batch may mix opcodes.
        """
        if not requests:
            return []
        for opcode, _payload in requests:
            self._count_request(opcode)
        with self._m_request_seconds.time():
            with self._lock:
                self._connect_locked()
                self._check_session_locked()
                ids = []
                try:
                    for opcode, payload in requests:
                        request_id = next(self._request_ids)
                        ids.append(request_id)
                        sent = P.write_frame(
                            self._sock, request_id, opcode, payload)
                        self._m_bytes_out.inc(sent)
                    by_id: Dict[int, P.Frame] = {}
                    for _ in ids:
                        frame = P.read_frame(self._sock)
                        self._m_bytes_in.inc(frame.wire_size)
                        by_id[frame.request_id] = frame
                except NetworkError as exc:
                    self._drop_locked()
                    if self._session_resources:
                        raise SessionLostError(
                            "connection lost with a transaction open; "
                            "the server rolled it back") from exc
                    raise
                if set(by_id) != set(ids):
                    # The reply stream is out of step with the request
                    # stream (a reply missing, or an id never sent).
                    # Later exchanges on this socket would pair requests
                    # with the wrong replies, so the connection must die
                    # with the batch.
                    self._drop_locked()
                    missing = sorted(set(ids) - set(by_id))
                    unknown = sorted(set(by_id) - set(ids))
                    raise errors.ProtocolError(
                        f"pipelined reply stream out of step: "
                        f"missing ids {missing}, unknown ids {unknown}")
                results: List[Dict[str, Any]] = []
                error: Optional[Dict[str, Any]] = None
                for request_id in ids:
                    frame = by_id[request_id]
                    if frame.opcode == P.OP_ERROR:
                        error = error or frame.payload
                        results.append({})
                    else:
                        results.append(frame.payload)
                if error is not None:
                    _raise_remote(error)
                for result in results:
                    self._observe_epoch(result.get("epoch"))
                return results

    def _count_request(self, opcode: int) -> None:
        counter = self._m_requests.get(opcode)
        if counter is None:
            counter = get_registry().counter(
                f"net.client.requests.{P.opcode_name(opcode)}")
            self._m_requests[opcode] = counter
        counter.inc()
