"""OdeClient: one connection from a front end to an OdeServer.

The client owns a single socket, hands out monotonically increasing
request ids, and matches replies to requests by id.  Two calling
conventions:

* :meth:`call` — one request, one reply (the common case);
* :meth:`call_many` — pipelining: write every request frame before
  reading any reply, so a batched cluster scan pays one round trip's
  latency instead of one per object.

Failure policy: requests whose opcode is in
:data:`~repro.net.protocol.READ_OPCODES` are idempotent and are retried
after a connection failure — bounded attempts, exponential backoff,
reconnecting in between.  Writes are never retried automatically: the
frame may have been applied before the connection died, and replaying it
would double-apply.  The one exception is a failed *connect* — the frame
provably never left this process — which triggers primary failover when
a replica set is configured: the client probes the replicas for the
highest-term node now serving as primary (``OP_REPL_PROMOTE`` made one),
re-points at it, keeps its epoch floor (read-your-writes survives the
switch) and re-sends.  A resurrected old primary is refused at the
handshake with :class:`~repro.errors.StalePrimaryError`: its fenced term
is below one this session has already observed.

Reconnecting creates a *new server session*, and session-affine state
(an open transaction, sequencing cursors) does not survive: the server
aborts the orphaned transaction and discards the cursors.  Holders of
such state register it via :meth:`OdeClient.retain_session`; while any
is registered, a connection failure raises
:class:`~repro.errors.SessionLostError` instead of transparently
reconnecting — otherwise later writes would silently autocommit on the
fresh session, outside the transaction the caller believes is open.
Every dropped connection bumps :attr:`OdeClient.generation`, so state
holders can detect between their calls that the session they were
using is gone.

Server-reported failures arrive as ``OP_ERROR`` frames carrying the
exception's class name; the client re-raises the matching class from
:mod:`repro.errors`, so remote failures look exactly like local ones.
Re-raised remote errors are tagged ``remote=True``: even when the class
is a :class:`~repro.errors.NetworkError` subclass (the server validates
requests with it), the connection itself is healthy and is not dropped
or retried.

Replica routing.  Constructed with ``replicas=[(host, port), ...]``,
the client spreads per-object reads across the replica set, rotating
round-robin, with the primary as the fallback of last resort.  The
session invariant is *monotonic reads with read-your-writes*: the
client tracks an **epoch floor** — the highest epoch any reply it has
returned carried, commits included — and a routed reply below the
floor is discarded unseen (the replica lags this session) and the read
moves on to the next endpoint, ultimately the primary, whose epoch can
never trail an epoch it acked.  A replica that fails to answer is put
in a cooldown and the read fails over the same way.  Reads inside an
open transaction and every write bypass routing entirely — they are
session-affine to the primary.
"""

from __future__ import annotations

import itertools
import select
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.errors as errors
from repro.cdc import ChangeEvent, Subscription, summary_from_wire
from repro.errors import (
    NetworkError,
    OdeError,
    RemoteError,
    SessionLostError,
    StalePrimaryError,
)
from repro.net import protocol as P
from repro.obs.metrics import get_registry

#: Read opcodes the client may serve from a replica: per-object /
#: per-cluster data reads, where "which epoch answered" is well defined
#: and carried in the reply.  Catalog and maintenance reads (hello,
#: stats, display modules, ...) describe *a particular server* and
#: always go where the client points.
ROUTED_OPCODES = frozenset({
    P.OP_GET_OBJECT, P.OP_GET_OBJECTS, P.OP_SCAN_CLUSTER,
    P.OP_CLUSTER_NUMBERS, P.OP_COUNT, P.OP_EXISTS, P.OP_VERSION_HISTORY,
})

#: How long a replica sits out after a connection failure.
REPLICA_COOLDOWN_SECONDS = 1.0

#: Pump poll interval: how often the idle-delivery thread checks the
#: socket for unsolicited push frames while no request is in flight.
PUSH_POLL_SECONDS = 0.2

#: Socket timeout while the pump drains a frame it believes is there.
#: Short: if a concurrent caller consumed the bytes first, the pump's
#: read must give up quickly (IdleTimeout) and release the lock.
PUSH_READ_TIMEOUT = 0.25


class _ReplicaEndpoint:
    """One replica the client may route reads to."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        # No automatic retries: a flaky replica should fail over to the
        # next endpoint immediately, not sit in a backoff loop.
        self.client = OdeClient(host, port, timeout=timeout, retries=0)
        self.down_until = 0.0


def _raise_remote(payload: Dict[str, Any]) -> None:
    """Re-raise an OP_ERROR payload as its local exception class.

    The exception is tagged ``remote=True``: it reports the *server's*
    verdict on a request the connection delivered fine.  The retry loop
    checks the tag so a remote ``NetworkError`` (the server's request
    validation) is never mistaken for a dead connection.
    """
    kind = str(payload.get("kind", "OdeError"))
    message = str(payload.get("message", ""))
    cls = getattr(errors, kind, None)
    if isinstance(cls, type) and issubclass(cls, OdeError):
        exc = cls(message)
    else:
        exc = RemoteError(kind, message)
    exc.remote = True
    raise exc


class OdeClient:
    """A connection to an :class:`~repro.net.server.OdeServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 retries: int = 3, backoff: float = 0.05,
                 replicas: Optional[Sequence[Tuple[str, int]]] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self._sock: Optional[socket.socket] = None
        # itertools.count, NOT iter(range(...)): a long-lived client
        # must never exhaust its id space mid-session (StopIteration
        # out of an exchange would be indistinguishable from a bug).
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()
        # Replica routing state, guarded by its own lock: routing
        # decisions happen *before* the main request lock is taken.
        self._route_lock = threading.Lock()
        self._replicas = [
            _ReplicaEndpoint(rhost, rport, timeout)
            for rhost, rport in (replicas or [])
        ]
        self._route_next = 0
        self._epoch_floor = 0
        # Highest fenced primary term this session has observed (from
        # hellos and failover probes).  A node claiming to be primary at
        # a lower term was failed over away from — writing through it
        # would split-brain, so the connect is refused.
        self._term_floor = 0
        self.server_info: Dict[str, Any] = {}
        #: Bumped every time the connection is dropped — the moment the
        #: server session (and its transaction/cursors) dies.  Session-
        #: affine holders compare it to detect that their server-side
        #: state is gone, whether or not a reconnect happened yet.
        self.generation = 0
        self._session_resources = 0   # live session-affine resources
        self._session_generation: Optional[int] = None
        # Push demux state.  _push_lock guards the two dicts; event
        # delivery itself happens outside it (Subscription has its own
        # condition).  Orphans hold events whose OP_CDC_EVENT frame
        # arrived before the subscribe reply was processed — the server
        # pump races the reply writer on purpose (register-then-ack).
        self._push_lock = threading.Lock()
        self._push_subs: Dict[int, Subscription] = {}
        self._orphan_events: Dict[int, List[ChangeEvent]] = {}
        self._pump: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()

        registry = get_registry()
        self._m_bytes_in = registry.counter("net.client.bytes_in")
        self._m_bytes_out = registry.counter("net.client.bytes_out")
        self._m_retries = registry.counter("net.client.retries")
        self._m_reconnects = registry.counter("net.client.reconnects")
        self._m_request_seconds = registry.histogram("net.client.request_seconds")
        self._m_requests: Dict[int, Any] = {}
        self._m_route_replica = registry.counter("net.route.replica")
        self._m_route_primary = registry.counter("net.route.primary")
        self._m_route_stale = registry.counter("net.route.stale")
        self._m_route_failover = registry.counter("net.route.failover")
        self._m_push_events = registry.counter("net.client.push_events")
        self._m_subscribes = registry.counter("net.client.subscribes")

    # -- connection management ---------------------------------------------------

    def connect(self) -> "OdeClient":
        """Open the socket and perform the HELLO handshake."""
        with self._lock:
            self._connect_locked()
        return self

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            failure = NetworkError(
                f"cannot connect to {self.host}:{self.port}: {exc}")
            # The frame was provably never sent, so even a write is
            # safe to re-send elsewhere — the failover path keys on it.
            failure.connect_failure = True
            raise failure from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        try:
            self.server_info = self._exchange_locked(
                P.OP_HELLO, {"version": P.PROTOCOL_VERSION})
        except OdeError:
            self._drop_locked()
            raise
        self._check_term_locked(self.server_info)

    def _check_term_locked(self, info: Dict[str, Any]) -> None:
        """Fence a resurrected old primary at the handshake.

        Terms only rise; a *primary* announcing a term below one this
        session has already observed was failed over away from, and a
        write through it would split-brain.  Replicas are not fenced
        here — their terms legitimately lag until the stream catches
        them up — the epoch floor already guards routed reads.
        """
        term = info.get("term")
        if not isinstance(term, int) or term <= 0:
            return
        with self._route_lock:
            if (info.get("role") == "primary" and term < self._term_floor):
                stale = StalePrimaryError(
                    f"{self.host}:{self.port} claims primary at term "
                    f"{term}, but this session has observed term "
                    f"{self._term_floor}")
                self._drop_locked()
                raise stale
            if term > self._term_floor:
                self._term_floor = term

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                get_registry().counter("net.teardown_error").inc()
            self._sock = None
            self.generation += 1
            # Subscriptions are session-affine: the server side died
            # with the connection, so every local one is now lost.
            with self._push_lock:
                lost = list(self._push_subs.values())
                self._push_subs.clear()
                self._orphan_events.clear()
            for subscription in lost:
                subscription.connection_lost()

    def close(self) -> None:
        self._pump_stop.set()
        pump = self._pump
        with self._lock:
            self._drop_locked()
        if pump is not None and pump is not threading.current_thread():
            pump.join(timeout=2.0)
        for endpoint in self._replicas:
            endpoint.client.close()

    # -- session-affine state ----------------------------------------------------

    def retain_session(self) -> None:
        """Register a live session-affine resource (an open transaction).

        While any resource is registered, a connection failure raises
        :class:`~repro.errors.SessionLostError` instead of reconnecting:
        the server has already aborted the transaction, and requests on
        a fresh session would autocommit outside it.
        """
        with self._lock:
            self._session_resources += 1
            if self._session_resources == 1:
                self._session_generation = self.generation

    def release_session(self) -> None:
        """Unregister a resource registered by :meth:`retain_session`."""
        with self._lock:
            self._session_resources = max(0, self._session_resources - 1)
            if self._session_resources == 0:
                self._session_generation = None

    def _check_session_locked(self) -> None:
        if (self._session_resources
                and self._session_generation != self.generation):
            raise SessionLostError(
                "server session lost: the connection dropped while a "
                "transaction was open; the server rolled it back — abort "
                "locally and begin again")

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "OdeClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- replica routing ---------------------------------------------------------

    @property
    def epoch_floor(self) -> int:
        """Highest epoch any reply returned by this client has carried.

        The session's monotonic-read watermark: no read this client
        returns will ever be served below it.
        """
        with self._route_lock:
            return self._epoch_floor

    @property
    def term_floor(self) -> int:
        """Highest fenced primary term this session has observed."""
        with self._route_lock:
            return self._term_floor

    def _observe_epoch(self, epoch: Any) -> None:
        if isinstance(epoch, int):
            with self._route_lock:
                if epoch > self._epoch_floor:
                    self._epoch_floor = epoch

    def _failover_locked(self) -> bool:
        """Probe the replica set for a promoted primary and re-point.

        Runs after a *connect* failure (no frame reached the old
        primary, so re-sending is safe even for writes).  Every replica
        endpoint is asked for a fresh hello — cooldowns ignored, a dead
        probe fails fast — and the highest-term node now serving as
        primary becomes this client's primary.  The old primary's
        address joins the replica set in its place: once fenced and
        re-subscribed it will serve routed reads again.  The epoch
        floor is deliberately kept across the switch — read-your-writes
        outlives the failover.  Returns True when the primary changed.
        """
        if not self._replicas:
            return False
        with self._route_lock:
            floor = self._term_floor
        best: Optional[_ReplicaEndpoint] = None
        best_term = 0
        for endpoint in self._replicas:
            try:
                info = endpoint.client.call(
                    P.OP_HELLO, {"version": P.PROTOCOL_VERSION})
            except OdeError:
                continue
            term = info.get("term")
            term = term if isinstance(term, int) and term > 0 else 1
            if info.get("role") != "primary" or term < max(floor, 1):
                continue
            if term > best_term:
                best, best_term = endpoint, term
        if best is None:
            return False
        old = _ReplicaEndpoint(self.host, self.port, self.timeout)
        with self._route_lock:
            old.down_until = time.monotonic() + REPLICA_COOLDOWN_SECONDS
            self._replicas = [old if entry is best else entry
                              for entry in self._replicas]
            if best_term > self._term_floor:
                self._term_floor = best_term
        self.host, self.port = best.host, best.port
        best.client.close()
        self._m_route_failover.inc()
        return True

    def _routable(self, opcode: int) -> bool:
        return (bool(self._replicas)
                and opcode in ROUTED_OPCODES
                # Transaction open: reads must see the session's own
                # uncommitted writes, which live only on the primary.
                and not self._session_resources)

    def _route_read(self, opcode: int,
                    payload: Optional[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
        """Try the replica set; ``None`` means "ask the primary".

        Serve-then-verify: the replica answers from whatever epoch it
        has applied, and the reply is *discarded* if that epoch is below
        the session floor — a stale answer is never returned, it only
        costs the hop to the next endpoint.
        """
        with self._route_lock:
            floor = self._epoch_floor
            start = self._route_next
            self._route_next = (self._route_next + 1) % len(self._replicas)
            now = time.monotonic()
            order = [
                endpoint
                for offset in range(len(self._replicas))
                for endpoint in [
                    self._replicas[(start + offset) % len(self._replicas)]]
                if endpoint.down_until <= now
            ]
        for endpoint in order:
            try:
                reply = endpoint.client.call(opcode, payload)
            except NetworkError as exc:
                if getattr(exc, "remote", False):
                    # The replica *served* the request and rejected it;
                    # let the primary give the authoritative verdict.
                    continue
                with self._route_lock:
                    endpoint.down_until = (
                        time.monotonic() + REPLICA_COOLDOWN_SECONDS)
                self._m_route_failover.inc()
                continue
            except OdeError:
                # A data-level verdict (e.g. "no such object") from a
                # replica that may simply not have applied the commit
                # yet: only the primary can refuse authoritatively.
                continue
            epoch = reply.get("epoch")
            if isinstance(epoch, int) and epoch < floor:
                self._m_route_stale.inc()
                continue
            self._observe_epoch(epoch)
            self._m_route_replica.inc()
            return reply
        self._m_route_primary.inc()
        return None

    # -- request / reply ---------------------------------------------------------

    def _read_reply_locked(self) -> P.Frame:
        """Read the next *reply* frame, dispatching any push frames.

        Unsolicited ``OP_CDC_EVENT`` frames interleave with pipelined
        replies on the same socket; every reply reader must demux by
        opcode, not assume the next frame answers its request.
        """
        while True:
            frame = P.read_frame(self._sock)
            self._m_bytes_in.inc(frame.wire_size)
            if frame.opcode in P.PUSH_OPCODES:
                self._dispatch_push(frame)
                continue
            return frame

    def _exchange_locked(self, opcode: int,
                         payload: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """One request and its reply on the open socket.  Lock held."""
        request_id = next(self._request_ids)
        sent = P.write_frame(self._sock, request_id, opcode, payload)
        self._m_bytes_out.inc(sent)
        frame = self._read_reply_locked()
        if frame.request_id != request_id:
            raise errors.ProtocolError(
                f"reply for request {frame.request_id}, expected {request_id}")
        if frame.opcode == P.OP_ERROR:
            _raise_remote(frame.payload)
        if frame.opcode != P.OP_REPLY:
            raise errors.ProtocolError(
                f"unexpected opcode {P.opcode_name(frame.opcode)} in reply")
        return frame.payload

    def call(self, opcode: int,
             payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Send one request; return the reply payload.

        Connection failures on idempotent (read) opcodes reconnect and
        retry with exponential backoff, up to ``retries`` extra attempts
        — unless session-affine state is registered, in which case any
        connection failure (and any reconnect that would discard that
        state) raises :class:`~repro.errors.SessionLostError` instead.

        Failover: when the *connect itself* fails — the frame provably
        never left this process, so nothing may have been applied — and
        a replica set is configured, the client probes it for a
        promoted (highest-term) primary and re-sends there, writes
        included.  At most one failover per call; any later failure
        follows the normal policy.
        """
        self._count_request(opcode)
        if self._routable(opcode):
            reply = self._route_read(opcode, payload)
            if reply is not None:
                return reply
        attempts = 1 + (self.retries if opcode in P.READ_OPCODES else 0)
        delay = self.backoff
        failed_over = False
        with self._m_request_seconds.time():
            with self._lock:
                attempt = 0
                while True:
                    try:
                        self._connect_locked()
                        self._check_session_locked()
                        result = self._exchange_locked(opcode, payload)
                        self._observe_epoch(result.get("epoch"))
                        return result
                    except errors.RemoteError:
                        raise
                    except SessionLostError:
                        raise
                    except NetworkError as exc:
                        if getattr(exc, "remote", False):
                            # The server rejected the request; the
                            # connection itself is healthy.
                            raise
                        self._drop_locked()
                        if self._session_resources:
                            raise SessionLostError(
                                "connection lost with a transaction open; "
                                "the server rolled it back") from exc
                        if (getattr(exc, "connect_failure", False)
                                and not failed_over
                                and self._failover_locked()):
                            # Doesn't consume a retry attempt: the
                            # re-send goes to a *different* server.
                            failed_over = True
                            continue
                        attempt += 1
                        if attempt >= attempts:
                            raise
                        self._m_retries.inc()
                        self._m_reconnects.inc()
                        time.sleep(delay)
                        delay *= 2

    def call_many(self, requests: Sequence[Tuple[int, Dict[str, Any]]]
                  ) -> List[Dict[str, Any]]:
        """Pipeline several requests: write all frames, then read all replies.

        Replies are returned in request order.  A server-side error in
        any request raises after all replies are drained, so the
        connection stays usable.  Not retried: a batch may mix opcodes.
        """
        if not requests:
            return []
        for opcode, _payload in requests:
            self._count_request(opcode)
        with self._m_request_seconds.time():
            with self._lock:
                self._connect_locked()
                self._check_session_locked()
                ids = []
                try:
                    for opcode, payload in requests:
                        request_id = next(self._request_ids)
                        ids.append(request_id)
                        sent = P.write_frame(
                            self._sock, request_id, opcode, payload)
                        self._m_bytes_out.inc(sent)
                    by_id: Dict[int, P.Frame] = {}
                    for _ in ids:
                        frame = self._read_reply_locked()
                        by_id[frame.request_id] = frame
                except NetworkError as exc:
                    self._drop_locked()
                    if self._session_resources:
                        raise SessionLostError(
                            "connection lost with a transaction open; "
                            "the server rolled it back") from exc
                    raise
                if set(by_id) != set(ids):
                    # The reply stream is out of step with the request
                    # stream (a reply missing, or an id never sent).
                    # Later exchanges on this socket would pair requests
                    # with the wrong replies, so the connection must die
                    # with the batch.
                    self._drop_locked()
                    missing = sorted(set(ids) - set(by_id))
                    unknown = sorted(set(by_id) - set(ids))
                    raise errors.ProtocolError(
                        f"pipelined reply stream out of step: "
                        f"missing ids {missing}, unknown ids {unknown}")
                results: List[Dict[str, Any]] = []
                error: Optional[Dict[str, Any]] = None
                for request_id in ids:
                    frame = by_id[request_id]
                    if frame.opcode == P.OP_ERROR:
                        error = error or frame.payload
                        results.append({})
                    else:
                        results.append(frame.payload)
                if error is not None:
                    _raise_remote(error)
                for result in results:
                    self._observe_epoch(result.get("epoch"))
                return results

    # -- server push (CDC) --------------------------------------------------------

    def subscribe(self, db: str,
                  clusters: Optional[Sequence[str]] = None,
                  on_event=None,
                  capacity: Optional[int] = None) -> Subscription:
        """Open a push subscription: change events for *db* arrive on
        this connection as unsolicited frames instead of being polled.

        *on_event* (if given) runs on a network thread while the request
        lock is held — it must be fast, must not raise, and must never
        call back into this client; heavier consumers should drain
        :meth:`Subscription.get` from their own thread.

        Subscriptions are session-affine: if the connection drops, the
        subscription is marked lost (a terminal ``lost`` event is
        delivered) and the caller must resubscribe — there is no
        transparent re-subscribe, because the server cannot honor delta
        continuity across sessions.
        """
        payload: Dict[str, Any] = {"db": db}
        if clusters is not None:
            payload["clusters"] = [str(name) for name in clusters]
        if capacity is not None:
            payload["capacity"] = int(capacity)
        reply = self.call(P.OP_CDC_SUBSCRIBE, payload)
        sub_id = int(reply["sub"])
        subscription = Subscription(
            self, sub_id, db, clusters=clusters,
            epoch=int(reply.get("epoch", 0)), on_event=on_event)
        # Register and drain stashed orphans atomically: the server's
        # pump may have pushed events for this sub before the subscribe
        # reply was processed, and a reader may push more the moment the
        # dict entry is visible — draining inside the lock keeps the
        # delivery order epoch-monotonic.
        with self._push_lock:
            self._push_subs[sub_id] = subscription
            orphans = self._orphan_events.pop(sub_id, [])
            for event in orphans:
                subscription.deliver(event)
        self._ensure_pump()
        self._m_subscribes.inc()
        return subscription

    def _unsubscribe(self, subscription: Subscription) -> None:
        """Called by :meth:`Subscription.close`; best-effort server side."""
        with self._push_lock:
            if self._push_subs.get(subscription.sub_id) is subscription:
                del self._push_subs[subscription.sub_id]
        if subscription.lost or not self.connected:
            return  # the server-side subscription died with the session
        try:
            self.call(P.OP_CDC_UNSUBSCRIBE, {"sub": subscription.sub_id})
        except OdeError:
            get_registry().counter("net.teardown_error").inc()

    def _dispatch_push(self, frame: P.Frame) -> None:
        """Route one unsolicited push frame; never blocks, never raises."""
        payload = frame.payload
        summary = summary_from_wire(payload)
        event = ChangeEvent(
            db=str(payload.get("db", "")), epoch=summary.epoch,
            changes=summary.changes, resync=summary.resync)
        self._m_push_events.inc()
        # Push epochs raise the session floor: once a delta at epoch E
        # is seen, a routed read must never be served below E — else a
        # lagging replica could quietly reinstate the purged stale copy.
        self._observe_epoch(summary.epoch)
        sub_id = payload.get("sub")
        with self._push_lock:
            subscription = self._push_subs.get(sub_id)
            if subscription is None:
                # Raced ahead of its own subscribe reply: stash, bounded.
                stash = self._orphan_events.setdefault(sub_id, [])
                stash.append(event)
                if len(stash) > 64:
                    top = max(item.epoch for item in stash)
                    stash[:] = [ChangeEvent(db=event.db, epoch=top,
                                            resync=True)]
                return
        subscription.deliver(event)

    def _ensure_pump(self) -> None:
        """Start the idle-delivery thread if it is not already running."""
        with self._push_lock:
            if self._pump is not None and self._pump.is_alive():
                return
            self._pump_stop.clear()
            self._pump = threading.Thread(
                target=self._pump_loop, name="ode-client-push", daemon=True)
            self._pump.start()

    def _pump_loop(self) -> None:
        """Deliver push frames while no request is in flight.

        Waits on ``select`` *without* the request lock (so callers are
        never blocked by an idle pump), then takes the lock and reads
        with a short timeout: if a concurrent caller consumed the bytes
        first, the read idles out harmlessly at the frame boundary.
        """
        while not self._pump_stop.is_set():
            sock = self._sock  # racy peek; re-verified under the lock
            if sock is None:
                time.sleep(PUSH_POLL_SECONDS)
                continue
            try:
                readable, _, _ = select.select(
                    [sock], [], [], PUSH_POLL_SECONDS)
            except (OSError, ValueError):
                time.sleep(PUSH_POLL_SECONDS)  # socket closed under us
                continue
            if not readable:
                continue
            with self._lock:
                if self._sock is not sock:
                    continue  # the connection churned while we waited
                try:
                    sock.settimeout(PUSH_READ_TIMEOUT)
                    try:
                        frame = P.read_frame(sock, idle_ok=True)
                    finally:
                        if self._sock is sock:
                            sock.settimeout(self.timeout)
                except P.IdleTimeout:
                    continue  # a caller beat us to the bytes; benign
                except (NetworkError, OSError):
                    # OSError: the descriptor died between the select
                    # and the read (close from another thread)
                    self._drop_locked()
                    continue
                self._m_bytes_in.inc(frame.wire_size)
                if frame.opcode in P.PUSH_OPCODES:
                    self._dispatch_push(frame)
                else:
                    # A reply nobody is waiting for: the stream is out
                    # of step and any future exchange would mispair
                    # requests with replies.  The connection must die.
                    self._drop_locked()

    def _count_request(self, opcode: int) -> None:
        counter = self._m_requests.get(opcode)
        if counter is None:
            counter = get_registry().counter(
                f"net.client.requests.{P.opcode_name(opcode)}")
            self._m_requests[opcode] = counter
        counter.inc()
