"""repro.net — the Ode page/object server and its remote-database client.

The paper's architecture is multi-process: OdeView's master and per-class
interactors are *clients* of the Ode database.  This package gives the
reproduction the same shape over a real network boundary:

* :mod:`repro.net.protocol` — a length-prefixed binary wire protocol
  (request id, opcode, CRC) whose payloads are
  :mod:`repro.ode.codec` values;
* :mod:`repro.net.server` / :mod:`repro.net.aserver` — the
  :func:`OdeServer` factory and its two I/O cores: the default
  event-loop :class:`AsyncOdeServer` and the legacy
  :class:`ThreadedOdeServer` baseline (``io_model="threaded"``), both
  hosting one or more databases with concurrent readers and serialized
  writers;
* :mod:`repro.net.session` — the per-connection server session (the
  network analogue of the db-interactor/object-interactor pair, with
  server-side sequencing cursors);
* :mod:`repro.net.client` — :class:`OdeClient`, the connection object:
  timeouts, bounded retry with backoff, request pipelining;
* :mod:`repro.net.remote` — :class:`RemoteDatabase` /
  :class:`RemoteObjectManager`, drop-in replacements for
  :class:`~repro.ode.database.Database` / the object manager, so browsers,
  synchronized browsing, and the display protocol run unchanged over the
  network.
"""

from repro.net.aserver import AsyncOdeServer
from repro.net.client import OdeClient
from repro.net.remote import RemoteDatabase, RemoteObjectManager
from repro.net.server import OdeServer, ThreadedOdeServer

__all__ = [
    "AsyncOdeServer",
    "OdeClient",
    "OdeServer",
    "RemoteDatabase",
    "RemoteObjectManager",
    "ThreadedOdeServer",
]
