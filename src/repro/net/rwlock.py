"""A writer-preferring reader–writer lock for hosted databases.

The server allows any number of concurrent reading sessions per database
but exactly one writer; a session holding the write lock (an open remote
transaction spans several requests) may keep issuing reads and writes
without deadlocking itself, so the lock tracks the writing thread and is
reentrant for it.

Writer preference: once a writer is waiting, new readers queue behind it,
so a stream of browsing clients cannot starve a commit.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional


class ReadWriteLock:
    """Many readers / one reentrant writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: Optional[int] = None   # thread ident of the writer
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The writing thread's own reads proceed under its write lock.
                self._writer_depth += 1
                return True
            ok = self._cond.wait_for(
                lambda: self._writer is None and not self._writers_waiting,
                timeout)
            if not ok:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ------------------------------------------------------------

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return True
            self._writers_waiting += 1
            acquired = False
            try:
                ok = self._cond.wait_for(
                    lambda: self._writer is None and self._readers == 0,
                    timeout)
                if not ok:
                    return False
                self._writer = me
                self._writer_depth = 1
                acquired = True
                return True
            finally:
                self._writers_waiting -= 1
                if not acquired and not self._writers_waiting:
                    # A timed-out (or interrupted) writer leaves no one
                    # to wake the readers that queued behind its
                    # preference; without this they sleep until the
                    # *next* notify, which may never come.
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a non-writing thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @property
    def write_held(self) -> bool:
        return self._writer == threading.get_ident()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def reading(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
