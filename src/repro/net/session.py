"""The server-side session: one connected client's view of the server.

The paper spawns a *db-interactor* per open database and an
*object-interactor* per browsed class (§4.6); over the network those
collapse into one session per connection holding the same state — which
databases the client opened, its sequencing cursors (one per browsed
class, the object-interactor's ``reset``/``next``/``previous`` cursor),
and its open transaction.

Dispatch discipline (MVCC):

* read opcodes take **no database lock**: each request pins a store
  snapshot (one commit epoch) for its duration, so readers never block
  behind a writer and never observe a half-applied transaction.  Every
  read reply reports the ``epoch`` it was served at;
* server-side sequencing cursors own a pinned snapshot for their whole
  lifetime — stepping is lock-free and ``reset`` refreshes the snapshot
  to the newest committed epoch;
* a session reading the database *it has an open transaction on* reads
  through the transaction overlay instead (read-your-writes);
* write opcodes take the *write* lock, which now only serializes
  writer against writer — and only for the cheap part: overlay apply
  and epoch mint (``commit_stage``).  The commit fsync happens on the
  store's shared group-commit barrier **after** the write lock is
  released, so concurrent sessions' commits batch into one
  ``wal.group.sync`` instead of queueing at disk latency.  An explicit
  transaction holds the lock from ``begin`` until ``commit``/``abort``
  stages it;
* no reply is sent (and no cache-visible epoch reported) until
  ``commit_wait`` confirms the staged epoch is durable *and*
  published, so clients never observe an unacknowledged commit;
* a session that disconnects mid-transaction is aborted and its locks
  released, so a crashed client never wedges the database.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Any, Dict, Optional, Tuple

from repro.cdc import CdcSubscriber, SubscriberPump, summary_to_wire
from repro.errors import (
    NetworkError,
    OdeError,
    ReadOnlyReplicaError,
    StorageError,
    TransactionError,
)
from repro.net import protocol as P
from repro.obs import get_registry
from repro.ode.oid import Oid

#: Largest number of buffers one scan batch may carry.
MAX_SCAN_BATCH = 1024


class HostedDatabase:
    """One database the server hosts: the database plus its rw-lock."""

    def __init__(self, database, lock) -> None:
        self.database = database
        self.lock = lock


class ServerSession:
    """Per-connection request dispatcher."""

    def __init__(self, server, session_id: int, channel=None,
                 thread_locks: bool = True):
        self.server = server
        self.session_id = session_id
        self.channel = channel  # serialized writer shared with CDC pumps
        #: Whether writes serialize on the hosted database's thread-affine
        #: rw-lock.  The threaded server says yes; the event-loop server
        #: says no — its write path hops executor threads, which the
        #: thread-affine lock forbids, so it serializes writers with a
        #: per-database asyncio lock instead and the session skips the
        #: rw-lock entirely.
        self.thread_locks = thread_locks
        self._cursors: Dict[int, Tuple[str, Any]] = {}  # id -> (db, cursor)
        self._cursor_ids = itertools.count(1)
        self._tx_database: Optional[str] = None  # db holding our write lock
        # sub id -> (db, subscriber, pump); subscriptions are
        # session-affine and die with the connection.
        self._subscriptions: Dict[int, Tuple[str, Any, Any]] = {}
        self._sub_ids = itertools.count(1)
        self._m_read_lockfree = get_registry().counter("net.read_lockfree")

    # -- helpers ----------------------------------------------------------------

    def _hosted(self, payload: Dict[str, Any]) -> HostedDatabase:
        name = payload.get("db")
        if not isinstance(name, str) or not name:
            raise NetworkError("request names no database")
        return self.server.hosted(name)

    def resolve_hosted(self, payload: Dict[str, Any]) -> HostedDatabase:
        """Public face of :meth:`_hosted` for the dispatch layers."""
        return self._hosted(payload)

    @property
    def tx_database(self) -> Optional[str]:
        """Name of the database this session has a transaction open on."""
        return self._tx_database

    @staticmethod
    def _oid(payload: Dict[str, Any], key: str = "oid") -> Oid:
        value = payload.get(key)
        if isinstance(value, Oid):
            return value
        if isinstance(value, str):
            return Oid.parse(value)
        raise NetworkError(f"request carries no OID under {key!r}")

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Connection gone: drop cursors, subscriptions, open transaction."""
        for db_name, subscriber, pump in list(self._subscriptions.values()):
            subscriber.close()  # unparks the pump so it can exit
            try:
                self.server.router(db_name).unregister(subscriber)
            except OdeError:
                pass  # server shutting down; the router is already gone
            pump.join(timeout=2.0)
        self._subscriptions.clear()
        for _db, cursor in self._cursors.values():
            cursor.close()  # releases the cursor's snapshot pin
        self._cursors.clear()
        if self._tx_database is not None:
            hosted = self.server.hosted(self._tx_database)
            try:
                hosted.database.objects.abort()
            except OdeError:
                # The store already resolved the transaction (e.g. a
                # failed commit rolled back); nothing left to abort.
                get_registry().counter("net.teardown_error").inc()
            finally:
                if self.thread_locks:
                    hosted.lock.release_write()
                self._tx_database = None

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, opcode: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        handler = _HANDLERS.get(opcode)
        if handler is None:
            raise NetworkError(f"unknown opcode {P.opcode_name(opcode)}")
        if opcode in _UNLOCKED_OPCODES:
            return handler(self, payload)
        if opcode in _CURSOR_OPCODES or opcode == P.OP_CURSOR_OPEN:
            # Lock-free: every server-side cursor owns a pinned store
            # snapshot, so stepping needs no coordination with writers
            # or vacuum.  Opening must NOT run inside an ambient pin —
            # the cursor has to own (and outlive the request with) its
            # snapshot.
            self._m_read_lockfree.inc()
            return handler(self, payload)
        if opcode in _REPL_OPCODES or opcode in _CDC_OPCODES:
            # Replication fetches long-poll; they must not hold an
            # ambient snapshot pin (it would wedge MVCC pruning for the
            # whole wait) and set their own epochs.  CDC subscribe
            # likewise manages its own epoch read ordering.
            return handler(self, payload)
        hosted = self._hosted(payload)
        if opcode in P.WRITE_OPCODES:
            return self._dispatch_write(opcode, payload)
        return self._dispatch_read(handler, hosted, payload)

    def _dispatch_read(self, handler, hosted: HostedDatabase,
                       payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve a read from a pinned snapshot; no database lock.

        The snapshot pins one commit epoch for the whole request, so a
        multi-object read (scan batch, get_objects) is internally
        consistent even while another session commits.  The exception is
        a session reading the database it is itself writing: that one
        must see its own uncommitted work, so it reads through the
        transaction overlay (the store routes those through ``get``).
        """
        if self._tx_database == hosted.database.name:
            result = handler(self, payload)
            result.setdefault("epoch", hosted.database.store.epoch)
            return result
        self._m_read_lockfree.inc()
        with hosted.database.objects.pinned() as snapshot:
            result = handler(self, payload)
            result.setdefault("epoch", snapshot.epoch)
        return result

    def _dispatch_write(self, opcode: int,
                        payload: Dict[str, Any]) -> Dict[str, Any]:
        """The threaded write path: prepare under the rw-lock, then wait.

        ``write_prepare`` covers everything up to (and including) commit
        staging; the durability wait runs here, after the rw-lock is
        back down, so concurrent sessions' commits batch on the shared
        group-commit barrier.
        """
        result, staged, hosted = self.write_prepare(opcode, payload)
        if staged is not None:
            # Index maintenance is commit-driven (the store's apply
            # listener), so a failed commit never touched an index and
            # the store's own recovery re-derives them — nothing to
            # clean up here beyond propagating the error.
            hosted.database.objects.commit_wait(staged)
        # Report the epoch after the write so the client's epoch-keyed
        # cache learns about its own commits without an extra round trip.
        result.setdefault("epoch", hosted.database.store.epoch)
        return result

    def _writing(self, hosted: HostedDatabase):
        """The write-serialization guard for ``write_prepare``.

        The event-loop server serializes writers per database with its
        own asyncio lock *around* the executor hop, so under it this is
        a no-op — the thread-affine rw-lock cannot span threads.
        """
        if self.thread_locks:
            return hosted.lock.writing()
        return contextlib.nullcontext()

    def _release_tx(self, hosted: HostedDatabase) -> None:
        self._tx_database = None
        if self.thread_locks:
            hosted.lock.release_write()

    def write_prepare(
            self, opcode: int, payload: Dict[str, Any],
    ) -> Tuple[Dict[str, Any], Optional[int], HostedDatabase]:
        """Run one write opcode up to (and including) commit staging.

        Returns ``(result, staged_epoch, hosted)``.  ``staged_epoch``
        is the epoch ``commit_stage`` minted when the op staged a
        commit (autocommit ops, ``OP_COMMIT``), else None.  The caller
        owns the rest of the pipeline: release whatever serializes
        writers, then ``objects.commit_wait(staged_epoch)`` — in that
        order, so a long fsync never blocks the next session's writes
        and concurrent commits batch into one ``wal.group.sync``.

        This split is exactly what lets the threaded and event-loop
        servers share one write path: the cheap serialized part (overlay
        apply + epoch mint) is here, the blocking part is the caller's.
        """
        hosted = self._hosted(payload)
        if self.server.is_replica:
            primary = self.server.primary_address
            raise ReadOnlyReplicaError(
                f"{hosted.database.name!r} is a read replica"
                + (f"; writes go to the primary at {primary}"
                   if primary else ""))
        handler = _HANDLERS[opcode]
        objects = hosted.database.objects
        name = hosted.database.name
        staged: Optional[int] = None
        if self._tx_database is not None:
            if self._tx_database != name:
                raise TransactionError(
                    f"transaction open on {self._tx_database!r}; cannot "
                    f"write {name!r}")
            if opcode == P.OP_COMMIT:
                # Stage under the held lock, release, wait in the caller:
                # a long fsync blocks only this session's reply.
                try:
                    staged = objects.commit_stage()
                finally:
                    self._release_tx(hosted)
                result = {}
            elif opcode == P.OP_ABORT:
                try:
                    objects.abort()
                finally:
                    self._release_tx(hosted)
                result = {}
            else:
                # Already the writer (reentrant); run under the held lock.
                result = handler(self, payload)
        elif opcode in (P.OP_COMMIT, P.OP_ABORT):
            raise TransactionError("no transaction open on this session")
        elif opcode in _AUTOCOMMIT_OPCODES:
            # Pipelined autocommit: the writer guard covers only overlay
            # apply + epoch mint (handler + commit_stage); the fsync
            # happens on the shared group-commit barrier after the guard
            # is released, so concurrent sessions' commits batch.
            with self._writing(hosted):
                objects.begin()
                try:
                    result = handler(self, payload)
                except BaseException:
                    if hosted.database.store.in_transaction:
                        objects.abort()
                    raise
                try:
                    staged = objects.commit_stage()
                except BaseException:
                    if hosted.database.store.in_transaction:
                        objects.abort()
                    raise
        else:
            with self._writing(hosted):
                result = handler(self, payload)
                if self._tx_database is not None and self.thread_locks:
                    # BEGIN succeeded: keep the write lock until commit/abort.
                    hosted.lock.acquire_write()
        return result, staged, hosted

    # -- handshake / catalog ------------------------------------------------------

    def op_hello(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        version = payload.get("version")
        if version != P.PROTOCOL_VERSION:
            raise NetworkError(
                f"protocol version mismatch: client {version!r}, "
                f"server {P.PROTOCOL_VERSION}")
        # Per-database fenced terms, plus their max as the node's
        # headline term: what failover probes compare and what a client
        # checks against its term floor before trusting a "primary".
        terms = {name: self.server.hosted(name).database.store.term
                 for name in self.server.database_names()}
        return {
            "version": P.PROTOCOL_VERSION,
            "server": "repro.net",
            "role": self.server.role,
            "databases": self.server.database_names(),
            "term": max(terms.values()) if terms else 1,
            "terms": terms,
        }

    def op_ping(self, _payload: Dict[str, Any]) -> Dict[str, Any]:
        return {}

    def op_list_databases(self, _payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"databases": self.server.database_names()}

    def op_open_database(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        database = hosted.database
        return {
            "name": database.name,
            "schema": database.schema.to_dict(),
            "icon": database.icon,
        }

    def op_get_display_modules(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        modules: Dict[str, str] = {}
        display_dir = hosted.database.display_dir
        if display_dir.is_dir():
            for path in sorted(display_dir.glob("*.py")):
                modules[path.name] = path.read_text(encoding="utf-8")
        return {"modules": modules}

    # -- object reads --------------------------------------------------------------

    def op_get_object(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        buffer = hosted.database.objects.get_buffer(self._oid(payload))
        return {"buffer": P.buffer_to_value(buffer)}

    def op_get_objects(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        objects = hosted.database.objects
        buffers = []
        missing = []
        for text in payload.get("oids", []):
            oid = Oid.parse(text) if isinstance(text, str) else text
            if objects.exists(oid):
                buffers.append(P.buffer_to_value(objects.get_buffer(oid)))
            else:
                missing.append(str(oid))
        return {"buffers": buffers, "missing": missing}

    def op_scan_cluster(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One batch of a cluster scan, keyed by OID number.

        ``after`` is the last OID number the client has seen (-1 to start);
        the batch carries up to ``limit`` buffers with larger numbers, in
        sequencing order, so a scan stays correct even if the cluster
        changes between batches.
        """
        hosted = self._hosted(payload)
        database = hosted.database
        class_name = payload.get("class", "")
        after = int(payload.get("after", -1))
        limit = max(1, min(int(payload.get("limit", 64)), MAX_SCAN_BATCH))
        objects = database.objects
        cluster = objects.cluster(class_name)
        if after < 0:
            database.store.prefetch_cluster(class_name)
        numbers = [n for n in cluster.numbers() if n > after][:limit]
        buffers = [
            P.buffer_to_value(objects.get_buffer(cluster.oid(number)))
            for number in numbers
        ]
        done = (not numbers
                or numbers[-1] >= (cluster.numbers() or [-1])[-1])
        return {
            "buffers": buffers,
            "done": done,
            "after": numbers[-1] if numbers else after,
        }

    def op_cluster_numbers(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        class_name = payload.get("class", "")
        hosted.database.schema.get_class(class_name)
        # Through the manager, not the raw store: the manager resolves
        # membership against the request's pinned snapshot.
        cluster = hosted.database.objects.cluster(class_name)
        return {"numbers": cluster.numbers()}

    def op_count(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        return {"count": hosted.database.objects.count(payload.get("class", ""))}

    def op_exists(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        return {"exists": hosted.database.objects.exists(self._oid(payload))}

    def op_version_history(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        history = hosted.database.objects.versions.history(self._oid(payload))
        return {
            "history": [
                {"seq": record.sequence, "state": dict(record.state)}
                for record in history
            ],
        }

    # -- planned selection (pushdown over the wire) --------------------------------

    def _planned(self, hosted: HostedDatabase, payload: Dict[str, Any]):
        """Parse and plan one wire selection; runs inside the request's
        pinned snapshot, so the probe answers at the request's epoch."""
        from repro.core.queryplan import SelectionPlanner
        from repro.ode.opp.parser import parse_expression

        class_name = payload.get("class", "")
        hosted.database.schema.get_class(class_name)
        expr = parse_expression(str(payload.get("condition", "")))
        force = payload.get("force") or None
        if force not in (None, "scan", "index"):
            raise NetworkError(f"bad plan force {force!r}")
        planner = SelectionPlanner(
            hosted.database, privileged=bool(payload.get("privileged")))
        return planner, planner.plan(class_name, expr, force=force)

    def op_select(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Server-side planned selection: the client ships the condition
        string, the server plans (cost model + indexes + statistics) and
        executes, and the reply carries the matching buffers plus the
        EXPLAIN text of the plan that produced them."""
        hosted = self._hosted(payload)
        planner, plan = self._planned(hosted, payload)
        buffers = [P.buffer_to_value(b) for b in planner.execute(plan)]
        return {"buffers": buffers, "access": plan.access,
                "explain": plan.explain()}

    def op_explain(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Plan only — the wire face of EXPLAIN."""
        hosted = self._hosted(payload)
        _planner, plan = self._planned(hosted, payload)
        return {
            "explain": plan.explain(),
            "access": plan.access,
            "index_attribute": plan.index_attribute,
            "estimated_rows": plan.estimated_rows,
            "estimated_cost": plan.estimated_cost,
            "scan_cost": plan.scan_cost,
            "cardinality": plan.cardinality,
        }

    # -- writes ---------------------------------------------------------------------

    def op_new_object(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        oid = payload.get("oid")
        oid = Oid.parse(oid) if isinstance(oid, str) else None
        created = hosted.database.objects.new_object(
            payload.get("class", ""), payload.get("values") or {}, oid=oid)
        return {"oid": str(created)}

    def op_update(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        buffer = hosted.database.objects.update(
            self._oid(payload), payload.get("updates") or {})
        return {"buffer": P.buffer_to_value(buffer)}

    def op_delete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        hosted.database.objects.delete(self._oid(payload))
        return {}

    def op_create_index(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Create (and persist) a server-side index; the build runs under
        the database's write lock so it captures one committed state."""
        hosted = self._hosted(payload)
        hosted.database.create_index(
            payload.get("class", ""), payload.get("attribute", ""))
        return {}

    def op_drop_index(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        hosted.database.drop_index(
            payload.get("class", ""), payload.get("attribute", ""))
        return {}

    # -- transactions -----------------------------------------------------------------

    def op_begin(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        if self._tx_database is not None:
            raise TransactionError(
                f"session already has a transaction on {self._tx_database!r}")
        txid = hosted.database.objects.begin()
        self._tx_database = hosted.database.name
        return {"txid": txid}

    def op_commit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # COMMIT with a transaction open is handled entirely inside
        # write_prepare (stage under the writer guard, wait in the
        # dispatcher); reaching the handler means there was none.
        raise TransactionError("no transaction open on this session")

    def op_abort(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise TransactionError("no transaction open on this session")

    # -- server-side sequencing cursors (the object-interactor's cursor) -----------

    def op_cursor_open(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        cursor = hosted.database.objects.cursor(payload.get("class", ""))
        cursor_id = next(self._cursor_ids)
        self._cursors[cursor_id] = (hosted.database.name, cursor)
        return {"cursor": cursor_id, "epoch": getattr(cursor, "epoch", None)}

    def _cursor_entry(self, payload: Dict[str, Any]) -> Tuple[str, Any]:
        cursor_id = payload.get("cursor")
        entry = self._cursors.get(cursor_id)
        if entry is None:
            raise NetworkError(f"no cursor {cursor_id!r} in this session")
        return entry

    def _cursor(self, payload: Dict[str, Any]):
        return self._cursor_entry(payload)[1]

    def op_cursor_next(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor(payload)
        oid = cursor.next()
        return {"oid": str(oid) if oid else None,
                "epoch": getattr(cursor, "epoch", None)}

    def op_cursor_previous(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor(payload)
        oid = cursor.previous()
        return {"oid": str(oid) if oid else None,
                "epoch": getattr(cursor, "epoch", None)}

    def op_cursor_reset(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor(payload)
        cursor.reset()  # refreshes the cursor's snapshot to the newest epoch
        return {"epoch": getattr(cursor, "epoch", None)}

    def op_cursor_current(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cursor = self._cursor(payload)
        oid = cursor.current()
        return {"oid": str(oid) if oid else None,
                "epoch": getattr(cursor, "epoch", None)}

    def op_cursor_seek(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._cursor(payload).seek(self._oid(payload))
        return {}

    def op_cursor_close(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        entry = self._cursors.pop(payload.get("cursor"), None)
        if entry is not None:
            entry[1].close()  # release the cursor's snapshot pin
        return {}

    # -- replication -------------------------------------------------------------------

    def op_repl_fetch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Stream committed units to a replica (long-poll)."""
        hosted = self._hosted(payload)
        feed = self.server.feed(hosted.database.name)
        after = payload.get("after", 0)
        if not isinstance(after, int) or after < 0:
            raise NetworkError(f"bad replication offset {after!r}")
        return feed.fetch(
            after,
            max_units=int(payload.get("max", 64)),
            wait_seconds=int(payload.get("wait_ms", 0)) / 1000.0,
        )

    def op_repl_snapshot(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Full state for replica bootstrap/resync, at one epoch."""
        hosted = self._hosted(payload)
        database = hosted.database
        with database.objects.pinned() as snapshot:
            objects = [[str(oid), snapshot.get(oid)]
                       for oid in snapshot.oids()]
            epoch = snapshot.epoch
        modules: Dict[str, str] = {}
        display_dir = database.display_dir
        if display_dir.is_dir():
            for path in sorted(display_dir.glob("*.py")):
                modules[path.name] = path.read_text(encoding="utf-8")
        return {
            "epoch": epoch,
            "term": database.store.term,
            "objects": objects,
            "schema": database.schema.to_dict(),
            "icon": database.icon,
            "modules": modules,
            # Index *definitions* ship with the snapshot so the replica
            # builds (and then maintains, via its apply listener) the
            # same indexes the primary serves.
            "indexes": [[class_name, attribute] for class_name, attribute
                        in database.objects.indexes.definitions()],
        }

    # -- change-data-capture -----------------------------------------------------------

    def op_cdc_subscribe(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Open a push subscription on this connection.

        Ordering is the whole soundness story: the subscriber is
        registered with the router *before* the ack epoch is read, so
        every commit after the ack is guaranteed to reach the client.
        A commit that lands in the gap is delivered too — a duplicate
        event at or below the ack epoch is a harmless extra eviction,
        whereas the reverse order would silently lose deltas.
        """
        if self.channel is None:
            raise NetworkError("connection does not support server push")
        hosted = self._hosted(payload)
        database = hosted.database
        clusters = payload.get("clusters")
        if clusters is not None:
            clusters = tuple(str(c) for c in clusters)
            for name in clusters:
                database.schema.get_class(name)  # raises on unknown class
        capacity = payload.get("capacity")
        sub_id = next(self._sub_ids)
        subscriber = CdcSubscriber(sub_id, database.name, clusters=clusters,
                                   **({"capacity": capacity}
                                      if isinstance(capacity, int) else {}))
        router = self.server.router(database.name)
        db_name = database.name
        channel = self.channel

        def send(summary) -> None:
            channel.send_push(P.OP_CDC_EVENT, {
                "db": db_name, "sub": sub_id, **summary_to_wire(summary)})

        def on_failure() -> None:
            # Connection is dead from the push side; the reader thread
            # will notice on its next read and run close() for real.
            router.unregister(subscriber)

        pump = SubscriberPump(
            subscriber, send, on_failure=on_failure,
            flush_seconds=getattr(self.server, "cdc_flush_seconds", None))
        router.register(subscriber)
        epoch = database.store.epoch  # AFTER register: no missed window
        self._subscriptions[sub_id] = (db_name, subscriber, pump)
        pump.start()
        return {"sub": sub_id, "epoch": epoch}

    def op_cdc_unsubscribe(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        sub_id = payload.get("sub")
        entry = self._subscriptions.pop(sub_id, None)
        if entry is None:
            return {"closed": False}
        db_name, subscriber, pump = entry
        subscriber.close()
        try:
            self.server.router(db_name).unregister(subscriber)
        except OdeError:
            pass
        pump.join(timeout=2.0)
        return {"closed": True}

    # -- maintenance -------------------------------------------------------------------

    def op_stats(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        database = hosted.database
        pool = database.store.pool
        clusters = {
            name: database.objects.count(name)
            for name in database.schema.class_names()
        }
        registry = get_registry()
        return {
            "role": self.server.role,
            "term": database.store.term,
            "applied_epoch": database.store.epoch,
            "replication": self.server.replication_stats(database.name),
            "schema_version": database.schema.version,
            "clusters": clusters,
            "indexes": [
                {"class": index.class_name, "attribute": index.attribute,
                 "entries": len(index)}
                for index in database.objects.indexes.indexes()
            ],
            "statistics": [
                [label, value]
                for label, value in database.objects.statistics.describe_rows()
            ],
            "fragmentation": database.store.fragmentation(),
            "pool": {
                "policy": pool.policy_name,
                "hits": pool.stats.hits,
                "misses": pool.stats.misses,
                "evictions": pool.stats.evictions,
                "prefetches": pool.stats.prefetches,
            },
            "epoch": database.store.epoch,
            "group_commit": database.store.group_commit_stats(),
            "mvcc": {
                "versions_live": registry.gauge("mvcc.versions_live").value,
                "snapshots_open": registry.gauge("mvcc.snapshots_open").value,
                "pruned": registry.counter("mvcc.pruned").value,
                "snapshot_reads": registry.counter("mvcc.snapshot_reads").value,
                "read_fallbacks": registry.counter("mvcc.read_fallbacks").value,
                "snapshot_age_p95":
                    registry.histogram("mvcc.snapshot_age").percentile(95),
            },
            "read_lockfree": self._m_read_lockfree.value,
            "cdc": self.server.router(database.name).stats(),
        }

    def op_vacuum(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        hosted = self._hosted(payload)
        if self._tx_database is not None:
            raise StorageError("cannot vacuum with a transaction open")
        return {"reclaimed": hosted.database.vacuum()}

    def op_repl_promote(self, _payload: Dict[str, Any]) -> Dict[str, Any]:
        """Admin: promote this replica server to primary.

        Whole-server, not per-database: a primary serving half its
        databases writable and half read-only following a dead upstream
        is not a topology anyone asked for.  Returns the freshly minted
        per-database terms; they are already fsynced when the reply is
        sent, so a client that sees this ack may rely on the fence.
        """
        return {"role": self.server.role, "terms": self.server.promote()}


#: Opcodes handled without touching a specific database (no lock).
#: CURSOR_CLOSE only pops a session-local dict entry, so it needs none.
_UNLOCKED_OPCODES = frozenset({
    P.OP_HELLO, P.OP_PING, P.OP_LIST_DATABASES, P.OP_CURSOR_CLOSE,
})

#: Single-op writes outside an explicit transaction: dispatched as
#: begin + handler + commit_stage under the write lock, commit_wait on
#: the shared group-commit barrier after it is released.
_AUTOCOMMIT_OPCODES = frozenset({
    P.OP_NEW_OBJECT, P.OP_UPDATE, P.OP_DELETE,
})

#: Cursor steps read through the cursor's own pinned snapshot, so they
#: dispatch lock-free (no "db" payload key, no rw-lock, no ambient pin).
_CURSOR_OPCODES = frozenset({
    P.OP_CURSOR_NEXT, P.OP_CURSOR_PREVIOUS, P.OP_CURSOR_RESET,
    P.OP_CURSOR_CURRENT, P.OP_CURSOR_SEEK,
})

#: Replication ops run lock-free with no ambient snapshot pin: a fetch
#: may long-poll (a held pin would stall MVCC pruning for the wait) and
#: a snapshot pins its own epoch for exactly the copy-out.
_REPL_OPCODES = frozenset({
    P.OP_REPL_FETCH, P.OP_REPL_SNAPSHOT, P.OP_REPL_PROMOTE,
})

#: CDC subscription management: lock-free and session-affine.  These
#: are deliberately not read opcodes — a transparent client retry on a
#: new connection would fake delta continuity the server cannot honor.
_CDC_OPCODES = frozenset({
    P.OP_CDC_SUBSCRIBE, P.OP_CDC_UNSUBSCRIBE,
})

_HANDLERS = {
    P.OP_HELLO: ServerSession.op_hello,
    P.OP_PING: ServerSession.op_ping,
    P.OP_LIST_DATABASES: ServerSession.op_list_databases,
    P.OP_OPEN_DATABASE: ServerSession.op_open_database,
    P.OP_GET_DISPLAY_MODULES: ServerSession.op_get_display_modules,
    P.OP_GET_OBJECT: ServerSession.op_get_object,
    P.OP_GET_OBJECTS: ServerSession.op_get_objects,
    P.OP_SCAN_CLUSTER: ServerSession.op_scan_cluster,
    P.OP_CLUSTER_NUMBERS: ServerSession.op_cluster_numbers,
    P.OP_COUNT: ServerSession.op_count,
    P.OP_EXISTS: ServerSession.op_exists,
    P.OP_VERSION_HISTORY: ServerSession.op_version_history,
    P.OP_SELECT: ServerSession.op_select,
    P.OP_EXPLAIN: ServerSession.op_explain,
    P.OP_NEW_OBJECT: ServerSession.op_new_object,
    P.OP_UPDATE: ServerSession.op_update,
    P.OP_DELETE: ServerSession.op_delete,
    P.OP_CREATE_INDEX: ServerSession.op_create_index,
    P.OP_DROP_INDEX: ServerSession.op_drop_index,
    P.OP_BEGIN: ServerSession.op_begin,
    P.OP_COMMIT: ServerSession.op_commit,
    P.OP_ABORT: ServerSession.op_abort,
    P.OP_CURSOR_OPEN: ServerSession.op_cursor_open,
    P.OP_CURSOR_NEXT: ServerSession.op_cursor_next,
    P.OP_CURSOR_PREVIOUS: ServerSession.op_cursor_previous,
    P.OP_CURSOR_RESET: ServerSession.op_cursor_reset,
    P.OP_CURSOR_CURRENT: ServerSession.op_cursor_current,
    P.OP_CURSOR_SEEK: ServerSession.op_cursor_seek,
    P.OP_CURSOR_CLOSE: ServerSession.op_cursor_close,
    P.OP_STATS: ServerSession.op_stats,
    P.OP_VACUUM: ServerSession.op_vacuum,
    P.OP_REPL_FETCH: ServerSession.op_repl_fetch,
    P.OP_REPL_SNAPSHOT: ServerSession.op_repl_snapshot,
    P.OP_REPL_PROMOTE: ServerSession.op_repl_promote,
    P.OP_CDC_SUBSCRIBE: ServerSession.op_cdc_subscribe,
    P.OP_CDC_UNSUBSCRIBE: ServerSession.op_cdc_unsubscribe,
}
