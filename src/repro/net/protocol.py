"""The Ode wire protocol: length-prefixed binary frames over a stream.

Every message — request or reply — is one frame::

    length   u32   size of the payload that follows the header
    reqid    u32   request id; a reply echoes its request's id
    opcode   u8    what is being asked (or OP_REPLY / OP_ERROR)
    crc32    u32   CRC-32 of the payload bytes

and the payload is one self-describing :mod:`repro.ode.codec` value
(always a dict at the top level).  Reusing the object codec means the
wire carries exactly the types the database itself stores — ints,
strings, dates, OIDs, lists, structs, and (since the codec grew a native
bytes tag) raw byte strings — with no second serialization format to
maintain.

The CRC is per-frame, like the WAL's per-record CRC: a torn or corrupt
frame is detected at the boundary and surfaces as
:class:`~repro.errors.ProtocolError` rather than as garbage decoded
into a request.

Replies use ``OP_REPLY`` with the result dict, or ``OP_ERROR`` with
``{"kind": <exception class name>, "message": str}``; the client
re-raises the matching :mod:`repro.errors` class so remote failures are
indistinguishable from local ones to calling code.
"""

from __future__ import annotations

import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import NetworkError, ProtocolError
from repro.ode.codec import decode_value, encode_value

#: Protocol version exchanged in HELLO; bumped on incompatible changes.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's payload; a header asking for more is
#: treated as corruption, not an allocation request.
MAX_PAYLOAD = 64 * 1024 * 1024

_HEADER = struct.Struct(">IIBI")

#: Bytes in a frame header — exposed so tools that slice raw wire
#: traffic (the faultsim proxy's frame-aware splitting, tests) need not
#: reach into the private struct.
HEADER_SIZE = _HEADER.size

# -- opcodes -------------------------------------------------------------------

OP_HELLO = 0x01
OP_LIST_DATABASES = 0x02
OP_OPEN_DATABASE = 0x03
OP_GET_DISPLAY_MODULES = 0x04
OP_PING = 0x05

OP_GET_OBJECT = 0x10
OP_GET_OBJECTS = 0x11
OP_SCAN_CLUSTER = 0x12
OP_CLUSTER_NUMBERS = 0x13
OP_COUNT = 0x14
OP_EXISTS = 0x15
OP_VERSION_HISTORY = 0x16
OP_SELECT = 0x17
OP_EXPLAIN = 0x18

OP_NEW_OBJECT = 0x20
OP_UPDATE = 0x21
OP_DELETE = 0x22
OP_CREATE_INDEX = 0x23
OP_DROP_INDEX = 0x24

OP_BEGIN = 0x30
OP_COMMIT = 0x31
OP_ABORT = 0x32

OP_CURSOR_OPEN = 0x40
OP_CURSOR_NEXT = 0x41
OP_CURSOR_PREVIOUS = 0x42
OP_CURSOR_RESET = 0x43
OP_CURSOR_CURRENT = 0x44
OP_CURSOR_SEEK = 0x45
OP_CURSOR_CLOSE = 0x46

OP_STATS = 0x50
OP_VACUUM = 0x51

OP_REPL_FETCH = 0x60
OP_REPL_SNAPSHOT = 0x61
#: Admin: promote this (replica) server to primary — stop its appliers
#: and durably mint the next fenced primary term in every database's
#: WAL.  Deliberately in neither READ_OPCODES (not idempotent: each call
#: mints a term) nor WRITE_OPCODES (no database write lock; it must cut
#: in even while writers are blocked on a dead upstream).
OP_REPL_PROMOTE = 0x62

OP_CDC_SUBSCRIBE = 0x70
OP_CDC_UNSUBSCRIBE = 0x71
#: Unsolicited server push: a change-data-capture event.  Always sent
#: with request id 0 (no request to echo); interleaves freely with
#: replies on the same connection, and the client demultiplexes by
#: opcode before matching request ids.
OP_CDC_EVENT = 0x72

OP_REPLY = 0x7E
OP_ERROR = 0x7F

OPCODE_NAMES: Dict[int, str] = {
    OP_HELLO: "hello",
    OP_LIST_DATABASES: "list_databases",
    OP_OPEN_DATABASE: "open_database",
    OP_GET_DISPLAY_MODULES: "get_display_modules",
    OP_PING: "ping",
    OP_GET_OBJECT: "get_object",
    OP_GET_OBJECTS: "get_objects",
    OP_SCAN_CLUSTER: "scan_cluster",
    OP_CLUSTER_NUMBERS: "cluster_numbers",
    OP_COUNT: "count",
    OP_EXISTS: "exists",
    OP_VERSION_HISTORY: "version_history",
    OP_SELECT: "select",
    OP_EXPLAIN: "explain",
    OP_NEW_OBJECT: "new_object",
    OP_UPDATE: "update",
    OP_DELETE: "delete",
    OP_CREATE_INDEX: "create_index",
    OP_DROP_INDEX: "drop_index",
    OP_BEGIN: "begin",
    OP_COMMIT: "commit",
    OP_ABORT: "abort",
    OP_CURSOR_OPEN: "cursor_open",
    OP_CURSOR_NEXT: "cursor_next",
    OP_CURSOR_PREVIOUS: "cursor_previous",
    OP_CURSOR_RESET: "cursor_reset",
    OP_CURSOR_CURRENT: "cursor_current",
    OP_CURSOR_SEEK: "cursor_seek",
    OP_CURSOR_CLOSE: "cursor_close",
    OP_STATS: "stats",
    OP_VACUUM: "vacuum",
    OP_REPL_FETCH: "repl_fetch",
    OP_REPL_SNAPSHOT: "repl_snapshot",
    OP_REPL_PROMOTE: "repl_promote",
    OP_CDC_SUBSCRIBE: "cdc_subscribe",
    OP_CDC_UNSUBSCRIBE: "cdc_unsubscribe",
    OP_CDC_EVENT: "cdc_event",
    OP_REPLY: "reply",
    OP_ERROR: "error",
}

#: Opcodes that never change server state: safe to retry after a
#: connection failure (at-most-once semantics are preserved).
READ_OPCODES = frozenset({
    OP_HELLO, OP_LIST_DATABASES, OP_OPEN_DATABASE, OP_GET_DISPLAY_MODULES,
    OP_PING, OP_GET_OBJECT, OP_GET_OBJECTS, OP_SCAN_CLUSTER,
    OP_CLUSTER_NUMBERS, OP_COUNT, OP_EXISTS, OP_VERSION_HISTORY, OP_SELECT,
    OP_EXPLAIN, OP_STATS, OP_REPL_FETCH, OP_REPL_SNAPSHOT,
})

#: Opcodes that mutate a database: the server takes the database's write
#: lock for these (and holds it across an open transaction).
WRITE_OPCODES = frozenset({
    OP_NEW_OBJECT, OP_UPDATE, OP_DELETE, OP_CREATE_INDEX, OP_DROP_INDEX,
    OP_BEGIN, OP_COMMIT, OP_ABORT, OP_VACUUM,
})

#: Unsolicited server-push opcodes: never a reply to anything, so the
#: client's reply readers dispatch these out of band and keep reading.
#: (CDC subscribe/unsubscribe are deliberately NOT read opcodes — a
#: subscription is session-affine state, and transparently retrying it
#: on a fresh session would fake a continuity the delta stream lost.)
PUSH_OPCODES = frozenset({OP_CDC_EVENT})


def opcode_name(opcode: int) -> str:
    return OPCODE_NAMES.get(opcode, f"op_{opcode:#04x}")


@dataclass(frozen=True)
class Frame:
    """One decoded wire message."""

    request_id: int
    opcode: int
    payload: Dict[str, Any]
    #: Bytes the frame occupied on the wire (header + payload); 0 when
    #: the frame was built locally rather than read from a socket.
    wire_size: int = 0


def encode_frame(request_id: int, opcode: int,
                 payload: Optional[Dict[str, Any]] = None) -> bytes:
    """Pack one frame: header + codec-encoded payload dict."""
    body = encode_value(payload or {})
    if len(body) > MAX_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds {MAX_PAYLOAD}")
    header = _HEADER.pack(len(body), request_id & 0xFFFFFFFF, opcode,
                          zlib.crc32(body))
    return header + body


def decode_frame(data: bytes) -> Tuple[Frame, int]:
    """Decode one frame at the front of *data*; returns (frame, consumed)."""
    if len(data) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    length, request_id, opcode, crc = _HEADER.unpack_from(data)
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame claims {length} payload bytes")
    end = _HEADER.size + length
    if len(data) < end:
        raise ProtocolError("truncated frame payload")
    body = data[_HEADER.size:end]
    if zlib.crc32(body) != crc:
        raise ProtocolError("frame CRC mismatch")
    payload, consumed = decode_value(body, 0)
    if consumed != length or not isinstance(payload, dict):
        raise ProtocolError("frame payload is not a single codec dict")
    return Frame(request_id, opcode, payload), end


class FrameReassembler:
    """Incremental frame decoder for non-blocking readers.

    The event-loop server reads whatever the socket has and feeds it
    here; ``next_frame`` yields complete frames as they form, holding
    partial bytes across feeds.  Unlike :func:`read_frame` there is no
    blocking and no timeout policy — pacing belongs to the reader.

    Corruption policy matches the blocking path: an oversized length
    prefix is rejected the moment the header is visible (a 2 GiB claim
    is treated as corruption, never as an allocation request), and a
    CRC mismatch raises :class:`~repro.errors.ProtocolError`.  After
    any error the stream is desynced and the connection must be
    dropped; the reassembler makes no attempt to resynchronize.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def _check_header(self) -> Optional[int]:
        """Claimed payload length once the header is complete, else None."""
        if len(self._buffer) < HEADER_SIZE:
            return None
        length = _HEADER.unpack_from(self._buffer)[0]
        if length > MAX_PAYLOAD:
            raise ProtocolError(f"frame claims {length} payload bytes")
        return length

    def feed(self, data: bytes) -> None:
        """Buffer raw stream bytes; validates the length prefix eagerly."""
        self._buffer.extend(data)
        self._check_header()

    def next_frame(self) -> Optional[Frame]:
        """Pop one complete frame, or None if more bytes are needed."""
        length = self._check_header()
        if length is None:
            return None
        end = HEADER_SIZE + length
        if len(self._buffer) < end:
            return None
        _length, request_id, opcode, crc = _HEADER.unpack_from(self._buffer)
        body = bytes(self._buffer[HEADER_SIZE:end])
        del self._buffer[:end]
        if zlib.crc32(body) != crc:
            raise ProtocolError("frame CRC mismatch")
        payload, consumed = decode_value(body, 0) if length else ({}, 0)
        if consumed != length or not isinstance(payload, dict):
            raise ProtocolError("frame payload is not a single codec dict")
        return Frame(request_id, opcode, payload, wire_size=end)


# -- object-buffer marshalling --------------------------------------------------

def buffer_to_value(buffer) -> Dict[str, Any]:
    """The codec-dict form of an :class:`~repro.ode.objectmanager.ObjectBuffer`.

    Computed attributes travel pre-evaluated: behaviours and display
    methods run on the server, next to the data, exactly as the paper's
    object manager evaluates computed attributes for OdeView (§5.1).
    """
    return {
        "oid": str(buffer.oid),
        "class": buffer.class_name,
        "values": dict(buffer.values),
        "public": list(buffer.public_names),
        "computed": dict(buffer.computed),
    }


def buffer_from_value(value: Dict[str, Any]):
    """Inverse of :func:`buffer_to_value`."""
    from repro.ode.objectmanager import ObjectBuffer
    from repro.ode.oid import Oid

    return ObjectBuffer(
        oid=Oid.parse(value["oid"]),
        class_name=value["class"],
        values=value["values"],
        public_names=tuple(value["public"]),
        computed=value.get("computed", {}),
    )


# -- stream I/O ----------------------------------------------------------------

#: Consecutive no-progress recv timeouts tolerated once a frame has
#: started arriving, before the peer is declared stalled.  A large frame
#: trickling in keeps resetting the count; a wedged peer is dropped
#: after at most this many timeout intervals.
_MAX_STALLED_POLLS = 2


def _recv_exact(sock: socket.socket, count: int, idle_ok: bool = False,
                mid_frame: bool = False) -> bytes:
    """Read exactly *count* bytes; '' mid-message is a protocol error.

    A timeout before the first byte raises :class:`IdleTimeout` when
    *idle_ok* is set (the caller is polling between frames and no data
    was consumed — it is safe to retry).  Once any bytes have been read
    — or when *mid_frame* says earlier bytes of the same frame were —
    a timeout can no longer be treated as idle: returning to a fresh
    ``read_frame`` would parse mid-frame bytes as a header and desync
    the stream.  Slow-but-live peers are tolerated as long as bytes
    keep arriving; a stalled peer raises :class:`NetworkError`.
    """
    chunks = []
    remaining = count
    stalled = 0
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            if not mid_frame and remaining == count:
                if idle_ok:
                    raise IdleTimeout(
                        "no frame arrived within the poll interval") from exc
                raise NetworkError("timed out waiting for a frame") from exc
            stalled += 1
            if stalled >= _MAX_STALLED_POLLS:
                raise NetworkError("peer stalled mid-frame") from exc
            continue
        except OSError as exc:
            raise NetworkError(f"connection lost: {exc}") from exc
        if not chunk:
            if not mid_frame and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError("connection closed mid-frame")
        stalled = 0
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ConnectionClosed(NetworkError):
    """The peer closed the connection cleanly between frames."""


class IdleTimeout(NetworkError):
    """A polling read timed out with zero bytes of a frame consumed.

    The one timeout that is safe to swallow and retry: the stream is
    still at a frame boundary.
    """


def read_frame(sock: socket.socket, idle_ok: bool = False) -> Frame:
    """Read one complete frame from a socket (blocking, honours timeout).

    With *idle_ok*, a timeout with no bytes read raises
    :class:`IdleTimeout`; once the header starts arriving the rest of
    the frame must follow (trickling is fine, stalling is an error).
    """
    header = _recv_exact(sock, _HEADER.size, idle_ok=idle_ok)
    length, request_id, opcode, crc = _HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame claims {length} payload bytes")
    body = _recv_exact(sock, length, mid_frame=True) if length else b""
    if zlib.crc32(body) != crc:
        raise ProtocolError("frame CRC mismatch")
    payload, consumed = decode_value(body, 0) if length else ({}, 0)
    if consumed != length or not isinstance(payload, dict):
        raise ProtocolError("frame payload is not a single codec dict")
    return Frame(request_id, opcode, payload, wire_size=_HEADER.size + length)


def write_frame(sock: socket.socket, request_id: int, opcode: int,
                payload: Optional[Dict[str, Any]] = None) -> int:
    """Send one frame; returns the number of bytes written."""
    data = encode_frame(request_id, opcode, payload)
    try:
        sock.sendall(data)
    except OSError as exc:
        raise NetworkError(f"connection lost while sending: {exc}") from exc
    return len(data)
