"""repro-odeview: a reproduction of "OdeView: The Graphical Interface to Ode"
(Agrawal, Gehani & Srinivasan, SIGMOD 1990).

Layers (bottom-up):

* :mod:`repro.ode` — the Ode substrate: O++ data model, schema, slotted-page
  object store with buffer pool and WAL, object manager, versions.
* :mod:`repro.ode.opp` — the O++ language front end (class definitions and
  selection predicates).
* :mod:`repro.dagplace` — layered DAG placement for the schema window.
* :mod:`repro.windowing` — generic window types, a headless text backend,
  and a structural null backend.
* :mod:`repro.dynlink` — run-time loading of per-class display functions
  and the OdeView<->display-function protocol.
* :mod:`repro.procmodel` — the master / db-interactor / object-interactor
  process structure with crash isolation.
* :mod:`repro.core` — OdeView: schema browsing, object browsing,
  synchronized browsing, projection, selection, join views.
* :mod:`repro.net` — the Ode server and remote-database client: many
  OdeView front ends browsing one database over TCP.
* :mod:`repro.data` — the paper's lab (ATT) database and other demo data.

Quickstart::

    from repro import OdeView, make_lab_database
    make_lab_database("/tmp/odeview-demo").close()
    app = OdeView("/tmp/odeview-demo")
    session = app.open_database("lab")
    browser = session.open_object_set("employee")
    browser.next()
    browser.toggle_format("text")
    print(app.render())
"""

from repro.core.app import DbSession, OdeView
from repro.core.session import UserSession
from repro.data.labdb import make_lab_database, open_lab_database
from repro.errors import OdeError
from repro.net import OdeClient, OdeServer, RemoteDatabase
from repro.ode.database import Database, discover_databases

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DbSession",
    "OdeClient",
    "OdeError",
    "OdeServer",
    "OdeView",
    "RemoteDatabase",
    "UserSession",
    "__version__",
    "discover_databases",
    "make_lab_database",
    "open_lab_database",
]
